"""Template catalog: the registry of known SQL templates.

The aggregation pipeline registers every template it sees; downstream
modules look up statement kind and touched tables by ``SQL_ID``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.sqltemplate.fingerprint import Fingerprint, StatementKind, fingerprint

__all__ = ["TemplateInfo", "TemplateCatalog"]


@dataclass
class TemplateInfo:
    """Metadata held for one SQL template."""

    sql_id: str
    template: str
    kind: StatementKind
    tables: tuple[str, ...]
    first_seen: int | None = None
    query_count: int = 0
    #: First raw statement observed for this template.  Literals matter to
    #: static analysis (implicit conversions, IN-list sizes) and templating
    #: erases them, so the catalog keeps one exemplar when available.
    exemplar: str = ""

    @classmethod
    def from_fingerprint(cls, fp: Fingerprint, first_seen: int | None = None) -> "TemplateInfo":
        return cls(
            sql_id=fp.sql_id,
            template=fp.template,
            kind=fp.kind,
            tables=fp.tables,
            first_seen=first_seen,
        )


class TemplateCatalog:
    """A registry mapping ``SQL_ID`` to :class:`TemplateInfo`.

    The catalog is append-mostly: templates are registered the first time
    a matching query is observed and their counters updated afterwards.
    """

    def __init__(self) -> None:
        self._templates: dict[str, TemplateInfo] = {}

    def __len__(self) -> int:
        return len(self._templates)

    def __contains__(self, sql_id: str) -> bool:
        return sql_id in self._templates

    def __iter__(self) -> Iterator[TemplateInfo]:
        return iter(self._templates.values())

    def get(self, sql_id: str) -> TemplateInfo | None:
        return self._templates.get(sql_id)

    def __getitem__(self, sql_id: str) -> TemplateInfo:
        return self._templates[sql_id]

    @property
    def sql_ids(self) -> list[str]:
        return list(self._templates)

    def register_statement(self, sql: str, timestamp: int | None = None) -> TemplateInfo:
        """Fingerprint a raw statement and register (or update) its template."""
        fp = fingerprint(sql)
        info = self.register_fingerprint(fp, timestamp)
        if not info.exemplar:
            info.exemplar = sql
        return info

    def register_fingerprint(
        self, fp: Fingerprint, timestamp: int | None = None
    ) -> TemplateInfo:
        info = self._templates.get(fp.sql_id)
        if info is None:
            info = TemplateInfo.from_fingerprint(fp, first_seen=timestamp)
            self._templates[fp.sql_id] = info
        info.query_count += 1
        if timestamp is not None and (info.first_seen is None or timestamp < info.first_seen):
            info.first_seen = timestamp
        return info

    def register_template(
        self,
        sql_id: str,
        template: str,
        kind: StatementKind,
        tables: tuple[str, ...],
        first_seen: int | None = None,
        exemplar: str = "",
    ) -> TemplateInfo:
        """Directly register a pre-fingerprinted template (simulator path)."""
        info = self._templates.get(sql_id)
        if info is None:
            info = TemplateInfo(sql_id, template, kind, tables, first_seen, exemplar=exemplar)
            self._templates[sql_id] = info
        elif exemplar and not info.exemplar:
            info.exemplar = exemplar
        return info

    def templates_on_table(self, table: str) -> list[TemplateInfo]:
        """All templates that touch ``table``."""
        return [info for info in self._templates.values() if table in info.tables]
