"""SQL template (digest) substrate (paper Definition II.3).

Provides a small SQL lexer, literal normalization into ``?`` placeholders,
a stable ``SQL_ID`` fingerprint, and a template catalog that tracks the
statement kind and the tables each template touches — the metadata the
lock simulator and the repairing module rely on.
"""

from repro.sqltemplate.tokenizer import Token, TokenKind, tokenize
from repro.sqltemplate.fingerprint import (
    normalize_statement,
    sql_id,
    fingerprint,
    Fingerprint,
    StatementKind,
    classify_statement,
    extract_tables,
)
from repro.sqltemplate.catalog import TemplateCatalog, TemplateInfo

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "normalize_statement",
    "sql_id",
    "fingerprint",
    "Fingerprint",
    "StatementKind",
    "classify_statement",
    "extract_tables",
    "TemplateCatalog",
    "TemplateInfo",
]
