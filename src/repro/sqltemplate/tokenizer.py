"""A minimal SQL lexer sufficient for template fingerprinting.

The goal is not a full SQL grammar but a faithful reproduction of what
statement-digest systems (MySQL Performance Schema digests, Oracle
workload intelligence) do: split a statement into keywords, identifiers,
literals, operators and punctuation so literals can be replaced by
placeholders.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["TokenKind", "Token", "tokenize"]


class TokenKind(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    PLACEHOLDER = "placeholder"


#: Keywords recognised for classification/normalization purposes.  This is
#: intentionally the working set used by real digest implementations, not
#: the full reserved-word list.
KEYWORDS = frozenset(
    """
    select insert update delete replace set from where and or not in is null
    like between join inner left right outer on group by having order limit
    offset values into as distinct union all exists case when then else end
    create alter drop table index view truncate rename add column primary key
    unique foreign references begin commit rollback show status desc asc
    count sum avg min max if ifnull coalesce for share lock mode nowait
    """.split()
)

_OPERATOR_CHARS = set("=<>!+-*/%&|^~")
_PUNCT_CHARS = set("(),.;")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL statement.

    Handles single/double-quoted strings with backslash and doubled-quote
    escapes, numeric literals (including decimals, exponents, ``0x``/``0b``
    and ``x'..'``/``b'..'`` hex/binary forms), backquoted identifiers, line
    (``--`` and ``#``) and block (``/* */``) comments, and ``?``
    placeholders already present in the input.
    """
    tokens: list[Token] = []
    i, n = 0, len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        # Comments -----------------------------------------------------
        if (ch == "-" and sql.startswith("--", i)) or ch == "#":
            j = sql.find("\n", i)
            i = n if j == -1 else j + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            j = sql.find("*/", i + 2)
            i = n if j == -1 else j + 2
            continue
        # String literals ----------------------------------------------
        if ch in ("'", '"'):
            quote = ch
            j = i + 1
            buf = [quote]
            while j < n:
                c = sql[j]
                buf.append(c)
                if c == "\\" and j + 1 < n:
                    buf.append(sql[j + 1])
                    j += 2
                    continue
                if c == quote:
                    if j + 1 < n and sql[j + 1] == quote:  # doubled quote escape
                        buf.append(quote)
                        j += 2
                        continue
                    j += 1
                    break
                j += 1
            tokens.append(Token(TokenKind.STRING, "".join(buf)))
            i = j
            continue
        # Backquoted identifiers ---------------------------------------
        if ch == "`":
            j = sql.find("`", i + 1)
            j = n if j == -1 else j + 1
            text = sql[i:j].strip("`")
            if text:  # an unterminated/empty backquote yields no token
                tokens.append(Token(TokenKind.IDENTIFIER, text))
            i = j
            continue
        # Numbers (including a leading sign handled as operator) --------
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            # Hex (0xFF) and binary (0b01) literals are one token; a bare
            # "0x"/"0b" with no digits falls through to the decimal scan.
            if ch == "0" and i + 1 < n and sql[i + 1] in "xX":
                j = i + 2
                while j < n and sql[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j > i + 2:
                    tokens.append(Token(TokenKind.NUMBER, sql[i:j]))
                    i = j
                    continue
            if ch == "0" and i + 1 < n and sql[i + 1] in "bB":
                j = i + 2
                while j < n and sql[j] in "01":
                    j += 1
                if j > i + 2:
                    tokens.append(Token(TokenKind.NUMBER, sql[i:j]))
                    i = j
                    continue
            j = i
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit() or c == ".":
                    j += 1
                elif c in "eE" and not seen_exp and j + 1 < n and (
                    sql[j + 1].isdigit() or sql[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2
                else:
                    break
            tokens.append(Token(TokenKind.NUMBER, sql[i:j]))
            i = j
            continue
        # String-style hex/binary literals: x'1F', b'1010' --------------
        if ch in "xXbB" and i + 1 < n and sql[i + 1] == "'":
            j = sql.find("'", i + 2)
            j = n if j == -1 else j + 1
            tokens.append(Token(TokenKind.NUMBER, sql[i:j]))
            i = j
            continue
        # Placeholder ----------------------------------------------------
        if ch == "?":
            tokens.append(Token(TokenKind.PLACEHOLDER, "?"))
            i += 1
            continue
        # Words ----------------------------------------------------------
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] in "_$"):
                j += 1
            word = sql[i:j]
            kind = (
                TokenKind.KEYWORD
                if word.lower() in KEYWORDS
                else TokenKind.IDENTIFIER
            )
            tokens.append(Token(kind, word))
            i = j
            continue
        # Operators and punctuation --------------------------------------
        if ch in _OPERATOR_CHARS:
            j = i
            while j < n and sql[j] in _OPERATOR_CHARS:
                j += 1
            tokens.append(Token(TokenKind.OPERATOR, sql[i:j]))
            i = j
            continue
        if ch in _PUNCT_CHARS:
            tokens.append(Token(TokenKind.PUNCT, ch))
            i += 1
            continue
        # Anything else: treat as punctuation so we never loop forever.
        tokens.append(Token(TokenKind.PUNCT, ch))
        i += 1
    return tokens
