"""Anomaly scenario injection (the paper's three R-SQL categories).

Each injector mutates a :class:`Population` so that, when the population
is simulated, the instance exhibits the corresponding performance
anomaly — and returns an :class:`InjectedAnomaly` that records the
ground-truth root-cause templates.  The causal chain to the H-SQLs then
emerges inside the simulator (locks block co-table queries, CPU
saturation slows everything), mirroring how anomalies propagate in
production rather than being painted onto the metric series.

Category mapping (paper Section II):

* ``BUSINESS_SPIKE`` — a business's demand multiplies (Double-11 style);
  the spiking templates are both R-SQLs and H-SQLs.
* ``POOR_SQL``       — a newly rolled-out template examines millions of
  rows, saturating CPU; piled-up slow queries raise the active session.
* ``MDL_LOCK``       — a migration issues a series of ALTERs; each holds
  an exclusive metadata lock that blocks the business's traffic.
* ``ROW_LOCK``       — a batch UPDATE job holds row locks that delay
  co-table readers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.dbsim.spec import TemplateSpec
from repro.sqltemplate import StatementKind, fingerprint
from repro.workload.catalog import Population, make_statement
from repro.workload.microservice import Api, BusinessService
from repro.workload.trends import ramp_profile, spike_profile

__all__ = [
    "AnomalyCategory",
    "InjectedAnomaly",
    "PlantedAntiPattern",
    "inject_business_spike",
    "inject_poor_sql",
    "inject_slow_creep",
    "inject_mdl_lock",
    "inject_row_lock",
    "inject_composite",
    "inject_anomaly",
    "hot_tables",
    "plant_antipatterns",
]


class AnomalyCategory(enum.Enum):
    BUSINESS_SPIKE = "business_spike"
    POOR_SQL = "poor_sql"
    MDL_LOCK = "mdl_lock"
    ROW_LOCK = "row_lock"
    #: Two independent root causes in overlapping windows — the paper's
    #: motivation for the cumulative-threshold cluster selection
    #: ("the instance session anomaly may be caused by multiple H-SQLs
    #: with different trends ... affected by different R-SQLs").
    COMPOSITE = "composite"


@dataclass
class InjectedAnomaly:
    """Ground truth of one injected anomaly."""

    category: AnomalyCategory
    r_sql_ids: list[str]
    anomaly_start: int
    anomaly_end: int
    business: str
    table: str | None = None
    #: Templates created by the injection (they have no history — they
    #: are "new SQLs" in the paper's sense).
    new_sql_ids: list[str] = field(default_factory=list)


def _business_volumes(population: Population) -> np.ndarray:
    """Mean response volume (Σ rate × service time) per business."""
    volumes = []
    for business in population.businesses:
        volume = 0.0
        mean_latent = float(business.latent.mean())
        for sql_id in business.sql_ids:
            spec = population.specs.get(sql_id)
            if spec is None:
                continue
            rate = mean_latent * business.template_multiplier(sql_id)
            volume += rate * spec.service_time_ms
        volumes.append(volume)
    return np.asarray(volumes, dtype=np.float64)


def _pick_business(
    population: Population,
    rng: np.random.Generator,
    band: tuple[float, float] = (0.0, 1 / 3),
) -> BusinessService:
    """Pick a business from a response-volume rank band.

    Response volume decides how visible a business is in the active
    session.  Lock and poor-SQL anomalies are injected into heavy
    businesses (band ``(0, 1/3)``) so the propagation chain is clear;
    business spikes hit mid-size businesses — in production the business
    that suddenly multiplies is rarely already the instance's dominant
    traffic source.
    """
    weights = _business_volumes(population)
    order = np.argsort(weights)[::-1]
    lo = int(band[0] * len(order))
    hi = max(lo + 1, int(np.ceil(band[1] * len(order))))
    return population.businesses[int(rng.choice(order[lo:hi]))]


def _busiest_business(population: Population, rng: np.random.Generator) -> BusinessService:
    """Pick a business among the heaviest third by response volume."""
    return _pick_business(population, rng, band=(0.0, 1 / 3))


def _busiest_table(population: Population, business: BusinessService) -> str:
    """The business table carrying the most query traffic."""
    traffic: dict[str, float] = {}
    for sql_id in business.sql_ids:
        spec = population.specs.get(sql_id)
        if spec is None or spec.table is None:
            continue
        rate = business.template_multiplier(sql_id)
        traffic[spec.table] = traffic.get(spec.table, 0.0) + rate
    if not traffic:
        raise ValueError(f"business {business.name} touches no tables")
    return max(traffic, key=traffic.get)


def _business_shape(business: BusinessService) -> np.ndarray:
    """The business latent trend normalised to mean 1 (traffic shape)."""
    mean = float(business.latent.mean())
    if mean <= 0:
        return np.ones_like(business.latent)
    return business.latent / mean


def inject_business_spike(
    population: Population,
    rng: np.random.Generator,
    anomaly_start: int,
    anomaly_end: int,
    volume_lift: tuple[float, float] = (1.8, 3.5),
    max_factor: float = 30.0,
    business: BusinessService | None = None,
) -> InjectedAnomaly:
    """Category 1: a business's demand multiplies during the window.

    The spike magnitude adapts to the business's size: the factor is
    chosen so the *instance-level* response volume rises by a
    ``volume_lift`` multiple — a mid-size business must spike much harder
    than a dominant one to cause the same incident, exactly as in
    production (a niche feature going viral can 20× its backend traffic).
    An explicit ``business`` overrides the rank-band pick (used by
    :func:`inject_composite` to stack causes on one target).
    """
    if business is None:
        business = _pick_business(population, rng, band=(0.25, 0.8))
    volumes = _business_volumes(population)
    idx = population.businesses.index(business)
    total = float(volumes.sum())
    biz = max(float(volumes[idx]), 1e-9)
    lift = float(rng.uniform(*volume_lift))
    factor = float(np.clip(1.0 + (lift - 1.0) * total / biz, 3.0, max_factor))
    profile = spike_profile(
        population.duration, anomaly_start, anomaly_end, factor, ramp=30
    )
    business.scale_latent(profile)
    # R-SQLs: the business's materially trafficked templates (DBAs label
    # every template whose QPS visibly spiked).
    multipliers = {
        sql_id: business.template_multiplier(sql_id) for sql_id in business.sql_ids
    }
    peak = max(multipliers.values()) if multipliers else 0.0
    r_sqls = [sid for sid, m in multipliers.items() if m >= 0.25 * peak]
    return InjectedAnomaly(
        category=AnomalyCategory.BUSINESS_SPIKE,
        r_sql_ids=r_sqls,
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
        business=business.name,
    )


def inject_poor_sql(
    population: Population,
    rng: np.random.Generator,
    anomaly_start: int,
    anomaly_end: int,
    target_rate: tuple[float, float] = (6.0, 18.0),
    examined_rows: tuple[float, float] = (4e5, 2e6),
    capacity_hint_ms: float | None = None,
    business: BusinessService | None = None,
) -> InjectedAnomaly:
    """Category 2: roll out a new CPU-hungry template in one business.

    ``capacity_hint_ms`` — the instance's CPU capacity (CPU-ms/s), when
    known: the rollout rate is then sized to oversubscribe CPU by a
    1.3–2.2× factor, which is what makes a poor SQL an incident instead
    of a curiosity.  An explicit ``business`` overrides the busiest-band
    pick.
    """
    if business is None:
        business = _busiest_business(population, rng)
    table = _busiest_table(population, business)
    # The rollout carries the anti-patterns that *make* it a poor SQL —
    # SELECT * plus a function-wrapped filter column — so static analysis
    # can explain the scan instead of just observing its row counts.
    v = int(rng.integers(10_000, 99_999))
    statement = (
        f"SELECT * FROM {table} "
        f"WHERE LOWER(c{v % 7}) = 'scan{v}' ORDER BY c{(v + 1) % 7}"
    )
    fp = fingerprint(statement)
    spec = TemplateSpec(
        sql_id=fp.sql_id,
        template=fp.template,
        kind=fp.kind,
        tables=fp.tables if fp.tables else (table,),
        base_response_ms=float(rng.uniform(20.0, 80.0)),
        examined_rows_mean=float(rng.uniform(*examined_rows)),
        response_cv=0.3,
        exemplar=statement,
    )
    if capacity_hint_ms is not None:
        oversubscribe = float(rng.uniform(1.3, 2.2))
        rate = float(
            np.clip(oversubscribe * capacity_hint_ms / spec.cpu_ms_per_query, 4.0, 40.0)
        )
    else:
        rate = float(rng.uniform(*target_rate))
    # The rollout ramps up at the anomaly start and follows the business
    # traffic shape, so its #execution clusters with its business.
    profile = ramp_profile(population.duration, anomaly_start, ramp=60)
    population.rate_overrides[spec.sql_id] = (
        rate * profile * _business_shape(business)
    )
    api = Api(name=f"{business.name}_rollout", calls_per_request=1.0)
    population.add_template(business, api, spec)
    return InjectedAnomaly(
        category=AnomalyCategory.POOR_SQL,
        r_sql_ids=[spec.sql_id],
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
        business=business.name,
        table=table,
        new_sql_ids=[spec.sql_id],
    )


def inject_slow_creep(
    population: Population,
    rng: np.random.Generator,
    creep_start: int,
    anomaly_start: int,
    anomaly_end: int,
    start_rows: tuple[float, float] = (1_500.0, 4_000.0),
    examined_rows: tuple[float, float] = (4e5, 2e6),
    capacity_hint_ms: float | None = None,
    target_rate: tuple[float, float] = (6.0, 18.0),
) -> InjectedAnomaly:
    """A poor SQL that creeps for minutes before it becomes an incident.

    Unlike :func:`inject_poor_sql` (a rollout that is expensive from its
    first execution), the creep starts *benign*: the new template rolls
    out at ``creep_start`` at a steady rate with a modest scan
    (``start_rows``), and its examined-rows count then grows
    geometrically across ``[creep_start, anomaly_start)`` — unbounded
    data growth under a non-sargable filter, the classic missed-index
    rollout that degrades as the table fills.  Per-template response
    time and rows/execution rise steadily (the signals a proactive sweep
    watches) while the instance-level CPU footprint stays far below the
    anomaly threshold; only near ``anomaly_start`` does the cost reach
    CPU oversubscription and the detector fire.  This is the labelled
    scenario the lead-time harness replays: a sweep should flag the
    creep well before the incident.
    """
    if not 0 <= creep_start < anomaly_start:
        raise ValueError("creep_start must precede anomaly_start")
    business = _busiest_business(population, rng)
    table = _busiest_table(population, business)
    v = int(rng.integers(10_000, 99_999))
    statement = (
        f"SELECT * FROM {table} "
        f"WHERE LOWER(c{v % 7}) = 'creep{v}' ORDER BY c{(v + 1) % 7}"
    )
    fp = fingerprint(statement)
    rows0 = float(rng.uniform(*start_rows))
    rows_final = float(rng.uniform(*examined_rows))
    # A small base response so the scan cost dominates the rt trend.
    spec = TemplateSpec(
        sql_id=fp.sql_id,
        template=fp.template,
        kind=fp.kind,
        tables=fp.tables if fp.tables else (table,),
        base_response_ms=float(rng.uniform(4.0, 10.0)),
        examined_rows_mean=rows0,
        response_cv=0.3,
        exemplar=statement,
    )
    # Steady rollout rate, sized so the *final* degraded cost
    # oversubscribes CPU (at the initial cost it is invisible).
    final_cost_ms = (
        spec.base_response_ms * 0.3 + rows_final / 1000.0 * spec.cpu_per_krow
    )
    if capacity_hint_ms is not None:
        oversubscribe = float(rng.uniform(1.4, 2.0))
        rate = float(
            np.clip(oversubscribe * capacity_hint_ms / final_cost_ms, 4.0, 40.0)
        )
    else:
        rate = float(rng.uniform(*target_rate))
    profile = ramp_profile(population.duration, creep_start, ramp=60)
    population.rate_overrides[spec.sql_id] = (
        rate * profile * _business_shape(business)
    )
    # Geometric examined-rows growth over the creep stretch, held at the
    # degraded level afterwards.
    t = np.arange(population.duration, dtype=np.float64)
    fraction = np.clip(
        (t - creep_start) / max(anomaly_start - creep_start, 1), 0.0, 1.0
    )
    population.rows_profiles[spec.sql_id] = rows0 * (rows_final / rows0) ** fraction
    api = Api(name=f"{business.name}_creep", calls_per_request=1.0)
    population.add_template(business, api, spec)
    return InjectedAnomaly(
        category=AnomalyCategory.POOR_SQL,
        r_sql_ids=[spec.sql_id],
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
        business=business.name,
        table=table,
        new_sql_ids=[spec.sql_id],
    )


def inject_mdl_lock(
    population: Population,
    rng: np.random.Generator,
    anomaly_start: int,
    anomaly_end: int,
    ddl_duration_ms: tuple[float, float] = (8_000.0, 20_000.0),
    ddl_interval_s: tuple[int, int] = (25, 50),
    copy_rate: tuple[float, float] = (3.0, 9.0),
    activity_bump: tuple[float, float] = (1.15, 1.4),
    business: BusinessService | None = None,
) -> InjectedAnomaly:
    """Category 3(i): a schema migration holds repeated exclusive MDLs.

    Real migrations (pt-online-schema-change style) are *jobs*, not lone
    ALTERs: a series of DDL steps across the maintenance window plus
    chunked copy/progress queries running throughout it.  The copy
    queries give the migration a coherent #execution trend — the business
    signature the clustering module keys on — and, being co-table with
    the locked traffic, they are themselves blocked during each DDL step.
    The deploy activity also bumps the business's own traffic mildly.
    An explicit ``business`` overrides the busiest-band pick.
    """
    if business is None:
        business = _busiest_business(population, rng)
    table = _busiest_table(population, business)
    statement = make_statement(StatementKind.DDL, table, int(rng.integers(100, 999)))
    fp = fingerprint(statement)
    spec = TemplateSpec(
        sql_id=fp.sql_id,
        template=fp.template,
        kind=fp.kind,
        tables=fp.tables if fp.tables else (table,),
        base_response_ms=10.0,
        examined_rows_mean=0.0,
        ddl_duration_ms=float(rng.uniform(*ddl_duration_ms)),
        exemplar=statement,
    )
    schedule: dict[int, int] = {}
    t = anomaly_start
    while t < anomaly_end:
        schedule[int(t)] = 1
        t += int(rng.integers(ddl_interval_s[0], ddl_interval_s[1] + 1))
    population.exact_counts[spec.sql_id] = schedule
    api = Api(name=f"{business.name}_migration", calls_per_request=1.0)
    population.add_template(business, api, spec)
    # The migration's DDL steps run only on their explicit schedule — the
    # API attachment is business bookkeeping, not a traffic source.
    population.rate_overrides[spec.sql_id] = np.zeros(population.duration)

    # Chunked copy queries of the migration job, live through the window.
    window = spike_profile(
        population.duration, anomaly_start, anomaly_end, float(rng.uniform(*copy_rate)), ramp=20
    )
    window = np.where(window > 1.0, window, 0.0)
    new_ids = [spec.sql_id]
    copy_statement = (
        f"SELECT c0, c1, c2 FROM {table} WHERE id BETWEEN {int(rng.integers(1, 9))} AND ?"
    )
    copy_fp = fingerprint(copy_statement)
    copy_spec = TemplateSpec(
        sql_id=copy_fp.sql_id,
        template=copy_fp.template,
        kind=copy_fp.kind,
        tables=copy_fp.tables if copy_fp.tables else (table,),
        base_response_ms=float(rng.uniform(8.0, 25.0)),
        examined_rows_mean=float(rng.uniform(2_000.0, 10_000.0)),
        exemplar=copy_statement,
    )
    population.rate_overrides[copy_spec.sql_id] = window * _business_shape(business)
    population.add_template(business, api, copy_spec)
    new_ids.append(copy_spec.sql_id)

    # Deploy-time activity bump on the business itself.
    bump = float(rng.uniform(*activity_bump))
    business.scale_latent(
        spike_profile(population.duration, anomaly_start, anomaly_end, bump, ramp=30)
    )
    return InjectedAnomaly(
        category=AnomalyCategory.MDL_LOCK,
        # The whole migration job is the root cause: stopping it (DDL
        # steps and copy queries alike) resolves the anomaly, which is
        # how DBAs label such cases.
        r_sql_ids=list(new_ids),
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
        business=business.name,
        table=table,
        new_sql_ids=list(new_ids),
    )


def inject_row_lock(
    population: Population,
    rng: np.random.Generator,
    anomaly_start: int,
    anomaly_end: int,
    target_rate: tuple[float, float] = (6.0, 16.0),
    lock_hold_ms: tuple[float, float] = (250.0, 450.0),
    activity_bump: tuple[float, float] = (1.15, 1.4),
    business: BusinessService | None = None,
) -> InjectedAnomaly:
    """Category 3(ii): a batch UPDATE job holds row locks on a hot table.

    As with migrations, batch jobs run alongside elevated business
    activity (they are usually triggered by it), so the business's own
    traffic bumps mildly during the window — the co-trend that lets the
    clustering module place the job with its business.  An explicit
    ``business`` overrides the busiest-band pick.
    """
    if business is None:
        business = _busiest_business(population, rng)
    table = _busiest_table(population, business)
    statement = make_statement(StatementKind.UPDATE, table, int(rng.integers(10_000, 99_999)))
    fp = fingerprint(statement)
    hold = float(rng.uniform(*lock_hold_ms))
    spec = TemplateSpec(
        sql_id=fp.sql_id,
        template=fp.template,
        kind=fp.kind,
        tables=fp.tables if fp.tables else (table,),
        # A chunked batch UPDATE holds its row locks for about as long
        # as the statement runs — which also makes the hold duration
        # recoverable from query logs (counterfactual replay needs that).
        base_response_ms=hold * float(rng.uniform(0.8, 1.0)),
        examined_rows_mean=float(rng.uniform(500.0, 5_000.0)),
        lock_hold_ms=hold,
        exemplar=statement,
    )
    rate = float(rng.uniform(*target_rate))
    profile = spike_profile(population.duration, anomaly_start, anomaly_end, rate, ramp=30)
    # The job runs only inside the window: zero traffic elsewhere.
    profile = np.where(profile > 1.0, profile, 0.0)
    population.rate_overrides[spec.sql_id] = profile * _business_shape(business)
    api = Api(name=f"{business.name}_batchjob", calls_per_request=1.0)
    population.add_template(business, api, spec)
    bump = float(rng.uniform(*activity_bump))
    business.scale_latent(
        spike_profile(population.duration, anomaly_start, anomaly_end, bump, ramp=30)
    )
    return InjectedAnomaly(
        category=AnomalyCategory.ROW_LOCK,
        r_sql_ids=[spec.sql_id],
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
        business=business.name,
        table=table,
        new_sql_ids=[spec.sql_id],
    )


def inject_composite(
    population: Population,
    rng: np.random.Generator,
    anomaly_start: int,
    anomaly_end: int,
    categories: tuple[AnomalyCategory, AnomalyCategory] | None = None,
    allow_same_target: bool = False,
    **kwargs,
) -> InjectedAnomaly:
    """Two independent root causes with overlapping windows.

    Draws two distinct single-cause categories (by default one lock-type
    plus one of the others), injects the first over the full window and
    the second over a sub-window shifted into it, and returns the union
    of the ground truths.  Multi-cause incidents are what the cumulative
    threshold (paper Section VI) exists for: the top cluster's sessions
    alone cannot explain the whole session anomaly, so the selection must
    keep extending.

    ``allow_same_target`` lifts the default restriction that the two
    causes hit distinct categories (and, usually, distinct businesses):
    the category draw may repeat, and the second injection is steered
    onto the *first* cause's business — so both root causes share one
    business/table pair.  Attribution expectation: the H-SQL sets of the
    two causes then overlap heavily, and the cumulative-threshold
    selection must keep *both* R-SQL groups — ranked hits may interleave
    across the causes, so accuracy is scored against the union of the
    ground truths, not per-cause.
    """
    if categories is None:
        lock = (AnomalyCategory.MDL_LOCK, AnomalyCategory.ROW_LOCK)
        other = (AnomalyCategory.BUSINESS_SPIKE, AnomalyCategory.POOR_SQL,
                 AnomalyCategory.ROW_LOCK)
        first = lock[int(rng.integers(0, len(lock)))]
        if allow_same_target:
            second = other[int(rng.integers(0, len(other)))]
        else:
            second = first
            while second is first:
                second = other[int(rng.integers(0, len(other)))]
        categories = (first, second)
    if AnomalyCategory.COMPOSITE in categories:
        raise ValueError("composite scenarios cannot nest")
    length = anomaly_end - anomaly_start
    # The second cause starts partway into the window.
    offset = int(rng.integers(length // 4, max(length // 2, length // 4 + 1)))
    # Sub-injectors get no extra kwargs: category-specific parameters do
    # not transfer across categories.
    first_truth = _INJECTORS[categories[0]](
        population, rng, anomaly_start, anomaly_end
    )
    second_kwargs: dict = {}
    if allow_same_target:
        target = next(
            (b for b in population.businesses if b.name == first_truth.business),
            None,
        )
        if target is not None:
            second_kwargs["business"] = target
    second_truth = _INJECTORS[categories[1]](
        population, rng, anomaly_start + offset, anomaly_end, **second_kwargs
    )
    return InjectedAnomaly(
        category=AnomalyCategory.COMPOSITE,
        r_sql_ids=list(dict.fromkeys(first_truth.r_sql_ids + second_truth.r_sql_ids)),
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
        business=f"{first_truth.business}+{second_truth.business}",
        table=first_truth.table or second_truth.table,
        new_sql_ids=first_truth.new_sql_ids + second_truth.new_sql_ids,
    )


_INJECTORS = {
    AnomalyCategory.BUSINESS_SPIKE: inject_business_spike,
    AnomalyCategory.POOR_SQL: inject_poor_sql,
    AnomalyCategory.MDL_LOCK: inject_mdl_lock,
    AnomalyCategory.ROW_LOCK: inject_row_lock,
}
_INJECTORS[AnomalyCategory.COMPOSITE] = inject_composite


def inject_anomaly(
    population: Population,
    rng: np.random.Generator,
    category: AnomalyCategory,
    anomaly_start: int,
    anomaly_end: int,
    **kwargs,
) -> InjectedAnomaly:
    """Inject an anomaly of the given category into the population."""
    if not 0 <= anomaly_start < anomaly_end <= population.duration:
        raise ValueError("anomaly window must lie within the population duration")
    injector = _INJECTORS[category]
    return injector(population, rng, anomaly_start, anomaly_end, **kwargs)


# ----------------------------------------------------------------------
# Planted anti-patterns: labelled ground truth for the static analyzer,
# the same way ADAC labels ground-truth R-SQLs for the ranking modules.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlantedAntiPattern:
    """Ground-truth label for one planted template."""

    sql_id: str
    rules: tuple[str, ...]
    statement: str
    table: str


def hot_tables(population: Population, top_n: int = 3) -> frozenset[str]:
    """The ``top_n`` tables by expected query traffic (rate-weighted)."""
    traffic: dict[str, float] = {}
    for business in population.businesses:
        mean_latent = float(business.latent.mean())
        for sql_id in business.sql_ids:
            spec = population.specs.get(sql_id)
            if spec is None or spec.table is None:
                continue
            rate = mean_latent * business.template_multiplier(sql_id)
            traffic[spec.table] = traffic.get(spec.table, 0.0) + rate
    ranked = sorted(traffic, key=lambda t: traffic[t], reverse=True)
    return frozenset(ranked[:top_n])


def plant_antipatterns(
    population: Population,
    rng: np.random.Generator,
    queries_per_call: float = 0.02,
) -> list[PlantedAntiPattern]:
    """Plant one labelled template per anti-pattern category.

    Each planted statement exhibits exactly the rules in its label (guard
    predicates sit on indexed ``k*`` columns so no other rule fires),
    letting the evaluation harness measure analyzer precision/recall
    against exact ``(sql_id, rule)`` pairs.  Traffic is negligible
    (``queries_per_call``) so planting does not perturb simulations.
    """
    tables = sorted(population.schema, key=lambda t: t.row_count, reverse=True)
    if not tables:
        raise ValueError("population has no tables to plant on")
    big = tables[0].name
    other = tables[1].name if len(tables) > 1 else big
    business = _busiest_business(population, rng)
    hot = _busiest_table(population, business)
    v = int(rng.integers(100, 999))

    in_list = ", ".join(str(v + i) for i in range(24))
    or_chain = " OR ".join(f"k0 = {v + i}" for i in range(12))
    seeds: list[tuple[str, tuple[str, ...], str]] = [
        (f"SELECT * FROM {big} WHERE k0 = {v}",
         ("select-star",), big),
        (f"SELECT c0, c1 FROM {big} WHERE DATE(c2) = '2024-06-11' AND k1 = {v}",
         ("non-sargable-function",), big),
        (f"SELECT c0 FROM {big} WHERE c1 LIKE '%needle{v}%' AND k2 = {v}",
         ("leading-wildcard-like",), big),
        (f"SELECT c0, c2 FROM {big} WHERE k3 = '{v}'",
         ("implicit-conversion",), big),
        (f"SELECT c0, c1 FROM {big} WHERE c3 = {v} AND c4 = {v + 1}",
         ("missing-index",), big),
        (f"SELECT c0, c1, c2 FROM {big} ORDER BY c0",
         ("unbounded-scan",), big),
        (f"SELECT a.c0, b.c1 FROM {big} a, {other} b WHERE a.k0 = {v}",
         ("cartesian-join",), big),
        (f"SELECT c0 FROM {big} WHERE k4 IN ({in_list})",
         ("large-in-list",), big),
        (f"SELECT c1 FROM {big} WHERE {or_chain}",
         ("long-or-chain",), big),
        (f"SELECT c0 FROM {hot} WHERE k1 = {v} FOR UPDATE",
         ("lock-footprint",), hot),
        (f"DELETE FROM {big}",
         ("unbounded-scan", "lock-footprint"), big),
    ]
    api = Api(name=f"{business.name}_lintbait", calls_per_request=0.05)
    planted: list[PlantedAntiPattern] = []
    for statement, rules, table in seeds:
        fp = fingerprint(statement)
        spec = TemplateSpec(
            sql_id=fp.sql_id,
            template=fp.template,
            kind=fp.kind,
            tables=fp.tables if fp.tables else (table,),
            exemplar=statement,
        )
        population.add_template(business, api, spec, queries_per_call=queries_per_call)
        planted.append(
            PlantedAntiPattern(
                sql_id=fp.sql_id, rules=rules, statement=statement, table=table
            )
        )
    return planted


# ----------------------------------------------------------------------
# Planted advisory baits: labelled ground truth for the workload-level
# analyzer (cross-statement passes), mirroring ``plant_antipatterns``.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlantedAdvisoryBait:
    """Ground-truth label for one planted workload-advisory template."""

    sql_id: str
    advisors: tuple[str, ...]
    statement: str
    table: str


def plant_advisory_baits(
    population: Population,
    rng: np.random.Generator,
    queries_per_call: float = 0.5,
) -> list[PlantedAdvisoryBait]:
    """Plant labelled templates that trip each workload-advisory pass.

    Unlike single-statement lint baits, these work in *pairs*: a lock
    cycle needs two opposite-order locking statements, a write-write
    hotspot needs two broad writers on one hot table, and the index
    advisor's prefix dedup needs overlapping sargable predicate sets.
    Labels are exact ``(advisor, sql_id)`` pairs, scored by
    :func:`repro.evaluation.advisories.evaluate_advisor`.

    Bait predicates are engineered not to cross passes: write baits
    filter through ``LOWER``/``UPPER`` (non-sargable, so the index
    advisor stays silent and the footprint reads as broad), while scan
    baits filter on unindexed ``c*`` columns with heavy per-call row
    counts so only the index advisor fires.  Traffic is real
    (``queries_per_call`` on the busiest business) because the passes
    are traffic-weighted — a silent bait would be a recall bug, not
    realism.
    """
    tables = sorted(population.schema, key=lambda t: t.row_count, reverse=True)
    if not tables:
        raise ValueError("population has no tables to plant on")
    big = tables[0].name
    other = tables[1].name if len(tables) > 1 else big
    business = _busiest_business(population, rng)
    hot = _busiest_table(population, business)
    v = int(rng.integers(100, 999))

    # statement, advisors, table, examined_rows_mean
    seeds: list[tuple[str, tuple[str, ...], str, float]] = [
        # Lock-order cycle: same two tables locked in opposite orders.
        (f"SELECT a.c0 FROM {big} a JOIN {other} b ON a.id = b.fk "
         f"WHERE a.k0 = {v} FOR UPDATE",
         ("lock-conflict",), big, 200.0),
        (f"SELECT b.c0 FROM {other} b JOIN {big} a ON b.fk = a.id "
         f"WHERE b.k0 = {v + 1} FOR UPDATE",
         ("lock-conflict",), other, 200.0),
        # Write-write hotspot: two broad writers on the hot table whose
        # function-wrapped predicates defeat every index.
        (f"UPDATE {hot} SET c0 = c0 + 1 WHERE LOWER(c8) = 'm{v}'",
         ("lock-conflict",), hot, 500.0),
        (f"UPDATE {hot} SET c1 = {v} WHERE UPPER(c9) = 'N{v}'",
         ("lock-conflict",), hot, 500.0),
        # Missing composite index, plus a prefix the dedup must fold in.
        (f"SELECT c0, c3 FROM {big} WHERE c5 = {v} AND c6 = {v + 2}",
         ("index-advisor",), big, 300_000.0),
        (f"SELECT c1 FROM {big} WHERE c5 = {v + 3}",
         ("index-advisor",), big, 300_000.0),
        # Comma join with no cross-table equality: cartesian-prone.
        (f"SELECT a.c0, b.c1 FROM {big} a, {other} b WHERE a.c7 = {v}",
         ("join-fanout",), big, 5_000.0),
        # Unbounded fan-out on the hot table (no WHERE, no LIMIT).
        (f"SELECT c0, c1 FROM {hot}",
         ("join-fanout",), hot, 50_000.0),
    ]
    api = Api(name=f"{business.name}_advisebait", calls_per_request=1.0)
    planted: list[PlantedAdvisoryBait] = []
    for statement, advisors, table, examined in seeds:
        fp = fingerprint(statement)
        spec = TemplateSpec(
            sql_id=fp.sql_id,
            template=fp.template,
            kind=fp.kind,
            tables=fp.tables if fp.tables else (table,),
            examined_rows_mean=examined,
            exemplar=statement,
        )
        population.add_template(business, api, spec, queries_per_call=queries_per_call)
        planted.append(
            PlantedAdvisoryBait(
                sql_id=fp.sql_id,
                advisors=advisors,
                statement=statement,
                table=table,
            )
        )
    return planted
