"""Trend primitives for arrival-rate time series.

All primitives return a non-negative float array with one value per
second.  Business demand is modelled as a smooth diurnal baseline times
a slowly-varying AR(1) fluctuation — enough temporal structure that
templates sharing a latent trend correlate strongly (the property the
clustering module needs) while independent businesses do not.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "diurnal_trend",
    "ar1_trend",
    "business_latent_trend",
    "spike_profile",
    "ramp_profile",
]


def diurnal_trend(
    duration: int,
    period: float = 86_400.0,
    phase: float = 0.0,
    depth: float = 0.3,
) -> np.ndarray:
    """Multiplicative diurnal factor around 1.0 with the given ``depth``."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    t = np.arange(duration, dtype=np.float64)
    return 1.0 + depth * np.sin(2.0 * np.pi * (t + phase) / period)


def ar1_trend(
    duration: int,
    rng: np.random.Generator,
    rho: float = 0.999,
    sigma: float = 0.25,
    smooth: int = 120,
) -> np.ndarray:
    """Slowly-varying multiplicative AR(1) fluctuation around 1.0.

    The innovation scale is chosen so the stationary standard deviation is
    ``sigma``; the result is additionally moving-average smoothed over
    ``smooth`` seconds so per-second jitter does not leak into the trend.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not 0.0 <= rho < 1.0:
        raise ValueError("rho must lie in [0, 1)")
    innovation = sigma * np.sqrt(1.0 - rho**2)
    noise = rng.normal(0.0, innovation, size=duration)
    x = np.empty(duration, dtype=np.float64)
    acc = rng.normal(0.0, sigma)
    for i in range(duration):
        acc = rho * acc + noise[i]
        x[i] = acc
    smooth = min(smooth, duration)
    if smooth > 1:
        kernel = np.ones(smooth) / smooth
        x = np.convolve(x, kernel, mode="same")
    return np.clip(1.0 + x, 0.05, None)


def business_latent_trend(
    duration: int,
    rng: np.random.Generator,
    base_level: float = 1.0,
    diurnal_depth: float = 0.25,
    fluctuation: float = 0.25,
) -> np.ndarray:
    """Latent demand of one business: diurnal × AR(1), scaled by level."""
    phase = rng.uniform(0.0, 86_400.0)
    trend = (
        base_level
        * diurnal_trend(duration, phase=phase, depth=diurnal_depth)
        * ar1_trend(duration, rng, sigma=fluctuation)
    )
    return np.clip(trend, 0.0, None)


def spike_profile(
    duration: int, start: int, end: int, magnitude: float, ramp: int = 30
) -> np.ndarray:
    """Multiplicative spike factor: 1 outside [start, end), ``magnitude``
    inside, with linear ramps of ``ramp`` seconds at both edges."""
    if not 0 <= start <= end <= duration:
        raise ValueError("spike window must lie within [0, duration]")
    if magnitude < 0:
        raise ValueError("magnitude must be non-negative")
    profile = np.ones(duration, dtype=np.float64)
    if end == start:
        return profile
    profile[start:end] = magnitude
    ramp = max(0, min(ramp, (end - start) // 2))
    if ramp > 0:
        profile[start : start + ramp] = np.linspace(1.0, magnitude, ramp, endpoint=False)
        profile[end - ramp : end] = np.linspace(magnitude, 1.0, ramp, endpoint=False)
    return profile


def ramp_profile(duration: int, start: int, ramp: int = 60) -> np.ndarray:
    """0 before ``start``, linear 0→1 over ``ramp`` seconds, 1 afterwards.

    Models a new template's rollout: absent before deployment, ramping to
    full traffic.
    """
    if not 0 <= start <= duration:
        raise ValueError("start must lie within [0, duration]")
    profile = np.zeros(duration, dtype=np.float64)
    ramp = max(1, ramp)
    ramp_end = min(duration, start + ramp)
    profile[start:ramp_end] = np.linspace(0.0, 1.0, ramp_end - start, endpoint=False)
    profile[ramp_end:] = 1.0
    return profile
