"""Microservice business model (paper Fig. 4).

A :class:`BusinessService` is one back-end business: a DAG of APIs
driven by a shared latent demand.  Each API multiplies the latent
request rate by its fan-in factor (how many times it is called per user
request) and issues SQL templates at a per-call rate.  Consequently all
templates of one business share the latent trend — the regularity the
R-SQL clustering module exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Api", "BusinessService"]


@dataclass
class Api:
    """One API node of a business DAG.

    ``calls_per_request`` is the expected number of invocations per user
    request (the product of branch factors along the DAG paths leading to
    this API).  ``template_calls`` maps ``sql_id → queries per call``.
    """

    name: str
    calls_per_request: float = 1.0
    template_calls: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.calls_per_request < 0:
            raise ValueError("calls_per_request must be non-negative")

    def add_template(self, sql_id: str, queries_per_call: float = 1.0) -> None:
        if queries_per_call <= 0:
            raise ValueError("queries_per_call must be positive")
        self.template_calls[sql_id] = (
            self.template_calls.get(sql_id, 0.0) + queries_per_call
        )


@dataclass
class BusinessService:
    """One business: a latent demand trend and the APIs it drives."""

    name: str
    latent: np.ndarray                       # requests/second, per second
    apis: list[Api] = field(default_factory=list)
    #: Mean request level the latent trend was built around; kept so that
    #: statistically-equivalent *history* trends can be regenerated.
    base_level: float = 1.0

    def __post_init__(self) -> None:
        self.latent = np.asarray(self.latent, dtype=np.float64)
        if (self.latent < 0).any():
            raise ValueError("latent demand must be non-negative")

    @property
    def duration(self) -> int:
        return len(self.latent)

    @property
    def sql_ids(self) -> list[str]:
        seen: list[str] = []
        for api in self.apis:
            for sql_id in api.template_calls:
                if sql_id not in seen:
                    seen.append(sql_id)
        return seen

    def template_multiplier(self, sql_id: str) -> float:
        """Queries of ``sql_id`` issued per user request, over all APIs."""
        total = 0.0
        for api in self.apis:
            per_call = api.template_calls.get(sql_id)
            if per_call:
                total += api.calls_per_request * per_call
        return total

    def template_rate(self, sql_id: str) -> np.ndarray:
        """Arrival rate (queries/second) of one template, per second."""
        return self.latent * self.template_multiplier(sql_id)

    def scale_latent(self, profile: np.ndarray) -> None:
        """Multiply the latent demand by a per-second profile (injections)."""
        profile = np.asarray(profile, dtype=np.float64)
        if len(profile) != len(self.latent):
            raise ValueError("profile length must match the latent trend")
        self.latent = self.latent * profile
