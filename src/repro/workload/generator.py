"""WorkloadGenerator: the RateProvider fed to the simulation engine.

Precomputes every template's expected per-second arrival rate from the
population (business latent trends × API multipliers, plus explicit
overrides) and serves them second by second.  Exact one-shot schedules
(injected DDLs) are exposed through ``counts_at``.
"""

from __future__ import annotations

import numpy as np

from repro.dbsim.spec import TemplateSpec
from repro.workload.catalog import Population

__all__ = ["WorkloadGenerator"]


class WorkloadGenerator:
    """Turns a :class:`Population` into an engine rate provider."""

    def __init__(self, population: Population) -> None:
        self.population = population
        self.duration = population.duration
        self._rates: dict[str, np.ndarray] = {}
        for sql_id in population.specs:
            rate = population.expected_rate(sql_id)
            if rate.max() > 0:
                self._rates[sql_id] = rate

    @property
    def specs(self) -> dict[str, TemplateSpec]:
        return self.population.specs

    def rates_at(self, t: int) -> dict[str, float]:
        """Per-template arrival rates at second ``t`` (zero rates omitted).

        Seconds beyond the population duration repeat the final second,
        so open-ended runs (the repair case study) stay well-defined.
        """
        idx = min(max(int(t), 0), self.duration - 1)
        out: dict[str, float] = {}
        for sql_id, rate in self._rates.items():
            r = float(rate[idx])
            if r > 0.0:
                out[sql_id] = r
        return out

    def counts_at(self, t: int) -> dict[str, int]:
        """Exact one-shot arrival counts scheduled for second ``t``."""
        out: dict[str, int] = {}
        for sql_id, schedule in self.population.exact_counts.items():
            n = schedule.get(int(t))
            if n:
                out[sql_id] = int(n)
        return out

    def rows_at(self, t: int) -> dict[str, float]:
        """Per-template ``examined_rows_mean`` overrides at second ``t``.

        Serves the population's ``rows_profiles`` — templates whose scan
        cost drifts over the run (data growth, creeping plan
        regressions).  Templates without a profile keep their spec mean.
        """
        out: dict[str, float] = {}
        for sql_id, profile in self.population.rows_profiles.items():
            idx = min(max(int(t), 0), len(profile) - 1)
            out[sql_id] = float(profile[idx])
        return out

    def expected_rate(self, sql_id: str) -> np.ndarray:
        """Expected rate series of one template (zeros if unknown)."""
        rate = self._rates.get(sql_id)
        if rate is None:
            return np.zeros(self.duration, dtype=np.float64)
        return rate
