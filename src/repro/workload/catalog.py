"""Template population builder.

``build_population`` creates a synthetic-but-structured workload: a set
of microservice businesses, each with its own tables, APIs and SQL
templates, plus the instance schema.  Statement texts are generated and
run through the real fingerprinting pipeline, so SQL ids, statement
kinds and table attributions are produced exactly the way the
collection layer would produce them from raw query logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dbsim.spec import TemplateSpec
from repro.dbsim.tables import Schema
from repro.sqltemplate import StatementKind, fingerprint
from repro.workload.microservice import Api, BusinessService
from repro.workload.trends import business_latent_trend

__all__ = [
    "DEFAULT_INDEXED_COLUMNS",
    "Population",
    "build_population",
    "make_statement",
]


def make_statement(kind: StatementKind, table: str, variant: int) -> str:
    """Generate a plausible SQL statement of the given kind on ``table``.

    ``variant`` differentiates templates of the same kind on the same
    table (different column sets → different digests).
    """
    cols = ", ".join(f"c{(variant + i) % 7}" for i in range(1 + variant % 3))
    if kind is StatementKind.SELECT:
        return f"SELECT {cols} FROM {table} WHERE k{variant % 5} = {variant} AND s = 'x'"
    if kind is StatementKind.UPDATE:
        return f"UPDATE {table} SET c{variant % 7} = {variant} WHERE k{variant % 5} = {variant + 1}"
    if kind is StatementKind.INSERT:
        return f"INSERT INTO {table} (k{variant % 5}, c{variant % 7}) VALUES ({variant}, 'v')"
    if kind is StatementKind.DELETE:
        return f"DELETE FROM {table} WHERE k{variant % 5} = {variant}"
    if kind is StatementKind.DDL:
        return f"ALTER TABLE {table} ADD COLUMN extra_{variant} INT"
    return f"SET SESSION sort_buffer_size = {262144 + variant}"


@dataclass
class Population:
    """A complete workload population for one simulated instance."""

    specs: dict[str, TemplateSpec]
    businesses: list[BusinessService]
    schema: Schema
    duration: int
    #: Exact arrival schedules (sql_id → {second: count}) for one-shot
    #: statements such as injected DDLs.
    exact_counts: dict[str, dict[int, int]] = field(default_factory=dict)
    #: Per-template explicit rate series overriding the business-derived
    #: rate (sql_id → per-second rates); used by anomaly injections whose
    #: traffic follows a bespoke profile (ramped rollouts, batch jobs).
    rate_overrides: dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-template time-varying ``examined_rows_mean`` series (sql_id →
    #: per-second means).  Models data growth / creeping plan
    #: regressions: the template's per-query cost changes over the run
    #: while its spec stays fixed (see ``WorkloadGenerator.rows_at``).
    rows_profiles: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def sql_ids(self) -> list[str]:
        return list(self.specs)

    def business_of(self, sql_id: str) -> BusinessService | None:
        """The business that issues ``sql_id`` (None for orphans)."""
        for business in self.businesses:
            if sql_id in business.sql_ids:
                return business
        return None

    def expected_rate(self, sql_id: str) -> np.ndarray:
        """Expected per-second arrival rate of a template over all businesses."""
        override = self.rate_overrides.get(sql_id)
        if override is not None:
            return np.asarray(override, dtype=np.float64)
        rate = np.zeros(self.duration, dtype=np.float64)
        for business in self.businesses:
            multiplier = business.template_multiplier(sql_id)
            if multiplier > 0:
                rate += business.latent * multiplier
        return rate

    def add_template(
        self,
        business: BusinessService,
        api: Api,
        spec: TemplateSpec,
        queries_per_call: float = 1.0,
    ) -> None:
        """Attach a (possibly injected) template to a business API."""
        self.specs[spec.sql_id] = spec
        api.add_template(spec.sql_id, queries_per_call)
        if api not in business.apis:
            business.apis.append(api)


#: Columns every business table is indexed on.  ``make_statement`` filters
#: on ``k0..k4`` and the migration copy query ranges on ``id``, so with
#: these indexes the ordinary templates are genuinely index-backed — which
#: is what makes a missing-index finding on ``c*`` columns meaningful.
DEFAULT_INDEXED_COLUMNS = frozenset({"id", "k0", "k1", "k2", "k3", "k4"})

#: Statement-kind mix of ordinary business templates.
_KIND_MIX = (
    (StatementKind.SELECT, 0.65),
    (StatementKind.UPDATE, 0.15),
    (StatementKind.INSERT, 0.12),
    (StatementKind.DELETE, 0.05),
    (StatementKind.OTHER, 0.03),
)


def _draw_kind(rng: np.random.Generator) -> StatementKind:
    r = rng.random()
    acc = 0.0
    for kind, p in _KIND_MIX:
        acc += p
        if r < acc:
            return kind
    return StatementKind.SELECT


def build_population(
    duration: int,
    rng: np.random.Generator,
    n_businesses: int = 10,
    templates_per_business: tuple[int, int] = (5, 18),
    table_share_prob: float = 0.15,
    base_level_range: tuple[float, float] = (0.5, 8.0),
) -> Population:
    """Build a random population of businesses and templates.

    Parameters
    ----------
    duration:
        Length of the simulated window in seconds (trends span it).
    rng:
        Source of all randomness (determinism per case seed).
    n_businesses:
        Number of microservice businesses.
    templates_per_business:
        Inclusive range for the per-business template count.
    table_share_prob:
        Probability that a business reuses a table of an earlier business
        (creates realistic cross-business lock interference).
    base_level_range:
        Log-uniform range of business request rates (requests/second).
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if n_businesses <= 0:
        raise ValueError("n_businesses must be positive")
    schema = Schema()
    specs: dict[str, TemplateSpec] = {}
    businesses: list[BusinessService] = []
    variant = 0

    for b in range(n_businesses):
        level = float(np.exp(rng.uniform(*np.log(base_level_range))))
        latent = business_latent_trend(duration, rng, base_level=level)
        business = BusinessService(name=f"biz{b:02d}", latent=latent, base_level=level)

        # Tables: mostly dedicated, occasionally shared with earlier ones.
        n_tables = int(rng.integers(1, 4))
        tables: list[str] = []
        for i in range(n_tables):
            if businesses and rng.random() < table_share_prob:
                donor = businesses[int(rng.integers(0, len(businesses)))]
                donor_tables = [
                    t for api in donor.apis for sid in api.template_calls
                    if (spec := specs.get(sid)) is not None
                    for t in spec.tables
                ]
                if donor_tables:
                    tables.append(donor_tables[int(rng.integers(0, len(donor_tables)))])
                    continue
            name = f"t_{b:02d}_{i}"
            table_obj = schema.ensure_table(
                name, row_count=int(rng.integers(100_000, 10_000_000))
            )
            table_obj.indexes.update(DEFAULT_INDEXED_COLUMNS)
            tables.append(name)

        # APIs: small DAG summarised by per-API call multipliers.
        n_apis = int(rng.integers(2, 6))
        apis = [
            Api(name=f"biz{b:02d}_api{a}", calls_per_request=float(rng.uniform(0.5, 3.0)))
            for a in range(n_apis)
        ]
        business.apis = apis

        n_templates = int(rng.integers(templates_per_business[0], templates_per_business[1] + 1))
        for _ in range(n_templates):
            kind = _draw_kind(rng)
            table = tables[int(rng.integers(0, len(tables)))]
            statement = make_statement(kind, table, variant)
            variant += 1
            fp = fingerprint(statement)
            draw = rng.random()
            queries_per_call = float(rng.uniform(0.3, 2.0))
            cpu_per_krow = 0.8
            if kind is StatementKind.SELECT and draw < 0.04:
                # Healthy ETL/range scans: huge examined-rows counts but a
                # far cheaper per-row cost (tight sequential access).
                # These top the Top-ER page without being a CPU problem —
                # the baseline's documented blind spot.
                base_response = float(np.exp(rng.uniform(np.log(200.0), np.log(900.0))))
                examined = float(np.exp(rng.uniform(np.log(1e6), np.log(6e6))))
                cpu_per_krow = float(rng.uniform(0.04, 0.12))
                queries_per_call = float(rng.uniform(0.004, 0.04))
            elif kind is StatementKind.SELECT and draw < 0.10:
                # Heavy stable reporting queries: they dominate the Top-RT
                # and Top-ER pages even when perfectly healthy — the very
                # reason Top-SQL pages mislead DBAs (paper Challenge III).
                base_response = float(np.exp(rng.uniform(np.log(80.0), np.log(400.0))))
                examined = float(np.exp(rng.uniform(np.log(100_000.0), np.log(900_000.0))))
                cpu_per_krow = float(rng.uniform(0.1, 0.3))
                # Reports run at dashboard cadence, not per user request.
                queries_per_call = float(rng.uniform(0.01, 0.08))
            elif kind is StatementKind.SELECT and draw < 0.20:
                # Moderately slow queries.
                base_response = float(np.exp(rng.uniform(np.log(30.0), np.log(250.0))))
                examined = float(np.exp(rng.uniform(np.log(5_000.0), np.log(80_000.0))))
            else:
                base_response = float(np.exp(rng.uniform(np.log(0.8), np.log(12.0))))
                examined = float(np.exp(rng.uniform(np.log(20.0), np.log(3_000.0))))
            spec = TemplateSpec(
                sql_id=fp.sql_id,
                template=fp.template,
                kind=fp.kind,
                tables=fp.tables if fp.tables else (table,),
                base_response_ms=base_response,
                examined_rows_mean=examined,
                response_cv=float(rng.uniform(0.15, 0.5)),
                lock_hold_ms=float(rng.uniform(5.0, 60.0)),
                cpu_per_krow=cpu_per_krow,
                exemplar=statement,
            )
            specs[spec.sql_id] = spec
            api = apis[int(rng.integers(0, n_apis))]
            api.add_template(spec.sql_id, queries_per_call=queries_per_call)
        businesses.append(business)

    return Population(specs=specs, businesses=businesses, schema=schema, duration=duration)
