"""Workload generation: microservice businesses, templates, anomalies.

The paper's clustering module exploits a production regularity (its
Fig. 4): templates issued by the APIs of one microservice DAG share an
``#execution`` trend, while different businesses are near-independent.
This package builds synthetic populations with exactly that structure —
per-business latent demand trends driving per-template arrival rates —
and injects the paper's three R-SQL categories as labelled scenarios.
"""

from repro.workload.trends import (
    diurnal_trend,
    ar1_trend,
    business_latent_trend,
    spike_profile,
    ramp_profile,
)
from repro.workload.microservice import Api, BusinessService
from repro.workload.catalog import (
    DEFAULT_INDEXED_COLUMNS,
    Population,
    build_population,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.scenarios import (
    AnomalyCategory,
    InjectedAnomaly,
    PlantedAdvisoryBait,
    PlantedAntiPattern,
    inject_business_spike,
    inject_poor_sql,
    inject_slow_creep,
    inject_mdl_lock,
    inject_row_lock,
    inject_composite,
    inject_anomaly,
    hot_tables,
    plant_advisory_baits,
    plant_antipatterns,
)
from repro.workload.replay import (
    ReplayWorkload,
    infer_spec,
    inflation_series,
    estimate_cpu_cores,
    replay_case,
)

__all__ = [
    "diurnal_trend",
    "ar1_trend",
    "business_latent_trend",
    "spike_profile",
    "ramp_profile",
    "Api",
    "BusinessService",
    "DEFAULT_INDEXED_COLUMNS",
    "Population",
    "build_population",
    "WorkloadGenerator",
    "AnomalyCategory",
    "InjectedAnomaly",
    "PlantedAdvisoryBait",
    "PlantedAntiPattern",
    "inject_business_spike",
    "inject_poor_sql",
    "inject_slow_creep",
    "inject_mdl_lock",
    "inject_row_lock",
    "inject_composite",
    "inject_anomaly",
    "hot_tables",
    "plant_advisory_baits",
    "plant_antipatterns",
    "ReplayWorkload",
    "infer_spec",
    "inflation_series",
    "estimate_cpu_cores",
    "replay_case",
]
