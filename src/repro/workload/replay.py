"""Counterfactual replay: rebuild a workload from an observed case.

Given an :class:`~repro.core.case.AnomalyCase` — which holds only what
production observes (query logs, aggregated series, the catalog) — this
module reconstructs an executable workload: per-template arrival rates
from the observed execution counts, and execution profiles inferred
from the observed per-query metrics.  Replaying the workload on a fresh
simulated instance, with or without repair actions applied, answers
"what would the instance look like if we executed this plan?" before
anything touches production.
"""

from __future__ import annotations


import numpy as np

from repro.core.case import AnomalyCase
from repro.dbsim.instance import DatabaseInstance, SimulationResult
from repro.dbsim.spec import TemplateSpec
from repro.sqltemplate import StatementKind

__all__ = [
    "inflation_series",
    "infer_spec",
    "ReplayWorkload",
    "estimate_cpu_cores",
    "replay_case",
]


def inflation_series(case: AnomalyCase, min_baseline_queries: int = 50) -> np.ndarray:
    """Per-second response-inflation factor during the case window.

    During a resource-driven anomaly *every* query's response is
    multiplied by (roughly) the same contention factor.  Established
    templates reveal it: their per-second average response divided by
    their own pre-anomaly median.  The cohort median over such reference
    templates, floored at 1, estimates the instance-wide inflation —
    which lets service times be inferred even for templates that only
    ever ran inside the anomaly (a rolled-out poor SQL, say).
    """
    n = case.duration
    lo, _ = case.anomaly_indices()
    ratios: list[np.ndarray] = []
    for sql_id in case.sql_ids:
        execs = case.templates.executions(sql_id).values
        if execs[:lo].sum() < min_baseline_queries:
            continue
        avg = case.templates.get(sql_id, "avg_tres").values
        baseline = avg[:lo][execs[:lo] > 0]
        if len(baseline) == 0:
            continue
        base = float(np.median(baseline))
        if base <= 0:
            continue
        ratio = np.where(execs > 0, avg / base, np.nan)
        ratios.append(ratio)
    if not ratios:
        return np.ones(n)
    with np.errstate(invalid="ignore"):
        cohort = np.nanmedian(np.vstack(ratios), axis=0)
    cohort = np.nan_to_num(cohort, nan=1.0)
    return np.maximum(cohort, 1.0)


def infer_spec(
    case: AnomalyCase, sql_id: str, inflation: np.ndarray | None = None
) -> TemplateSpec:
    """Infer a template's execution profile from its observed queries.

    The uncontended service time is a low percentile of the *deflated*
    response times (observed responses divided by the instance-wide
    inflation factor at their arrival second), and the examined-rows
    mean comes from the full window.  Lock behaviour falls back to
    kind-based defaults; a DDL's hold duration is its observed response
    time.
    """
    info = case.catalog.get(sql_id)
    kind = info.kind if info is not None else StatementKind.OTHER
    tables = info.tables if info is not None else ()
    template = info.template if info is not None else sql_id

    tq = case.logs.queries_in_window(sql_id, case.ts, case.te)
    response_ms = tq.response_ms
    if inflation is not None and len(tq):
        seconds = np.clip(
            (tq.arrive_ms // 1000).astype(np.int64) - case.ts, 0, len(inflation) - 1
        )
        response_ms = response_ms / inflation[seconds]
    baseline_mask = tq.arrive_ms < case.anomaly_start * 1000
    responses = response_ms[baseline_mask]
    if len(responses) < 10:  # new template: use whatever (deflated) exists
        responses = response_ms
    base_response = float(np.percentile(responses, 10)) if len(responses) else 2.0
    examined = float(tq.examined_rows.mean()) if len(tq) else 100.0
    # Scan cost is already part of the observed response; subtract it so
    # the replayed service time is not double-counted.
    scan_ms = examined / 1000.0 * 0.8
    base_response = max(0.5, base_response - scan_ms)
    ddl_duration = float(response_ms.max()) if kind.takes_mdl_exclusive and len(tq) else 20_000.0
    # A write statement holds its row locks for roughly its own duration;
    # the low quartile of its (deflated) responses estimates the
    # uncontended run time (higher quantiles are inflated by waits it
    # *suffered*).
    if kind.takes_row_locks and len(tq):
        lock_hold = max(20.0, float(np.percentile(response_ms, 25)))
    else:
        lock_hold = 20.0
    return TemplateSpec(
        sql_id=sql_id,
        template=template,
        kind=kind,
        tables=tables,
        base_response_ms=base_response,
        examined_rows_mean=max(examined, 0.0),
        lock_hold_ms=lock_hold,
        ddl_duration_ms=ddl_duration,
    )


class ReplayWorkload:
    """A RateProvider that re-issues a case's observed traffic."""

    def __init__(self, case: AnomalyCase) -> None:
        self.case = case
        self.inflation = inflation_series(case)
        self._specs = {
            sid: infer_spec(case, sid, inflation=self.inflation)
            for sid in case.sql_ids
        }
        self._rates = {
            sid: case.templates.executions(sid).values for sid in case.sql_ids
        }
        self.duration = case.duration

    @property
    def specs(self) -> dict[str, TemplateSpec]:
        return self._specs

    def rates_at(self, t: int) -> dict[str, float]:
        idx = min(max(int(t) - self.case.ts, 0), self.duration - 1)
        out: dict[str, float] = {}
        for sql_id, rates in self._rates.items():
            r = float(rates[idx])
            if r > 0:
                out[sql_id] = r
        return out


def estimate_cpu_cores(case: AnomalyCase, workload: ReplayWorkload) -> int:
    """Estimate the instance's core count from observed CPU usage.

    Capacity ≈ inferred baseline CPU demand / observed baseline usage.
    """
    if "cpu_usage" not in case.metrics:
        return 16
    lo, _ = case.anomaly_indices()
    usage = case.metrics.cpu_usage.values[:lo]
    if len(usage) == 0 or usage.mean() <= 0.5:
        return 16
    demand = 0.0
    for sql_id, spec in workload.specs.items():
        rate = case.templates.executions(sql_id).values[:lo].mean()
        demand += rate * spec.cpu_ms_per_query
    capacity_ms = demand / (usage.mean() / 100.0)
    return int(np.clip(round(capacity_ms / 1000.0), 2, 64))


def replay_case(
    case: AnomalyCase,
    actions=None,
    seed: int = 0,
    cpu_cores: int | None = None,
) -> SimulationResult:
    """Replay the case's traffic, optionally with repair actions applied.

    ``actions`` are applied at the replay's start — the counterfactual
    question is "what if the fix had been in place?".
    """
    workload = ReplayWorkload(case)
    if cpu_cores is None:
        cpu_cores = estimate_cpu_cores(case, workload)
    instance = DatabaseInstance(cpu_cores=cpu_cores, seed=seed)
    engine = instance.start(workload, start_time=case.ts)
    for action in actions or []:
        action.execute(instance, now_s=case.ts)
    engine.run(case.duration)
    return instance.finish()
