"""Anomaly-case construction: merging, duration filtering.

Implements the paper's policies: phenomena of the same type occurring
close in time (within a configurable gap) merge into one longer
anomaly; anomalies shorter than a configurable minimum duration are
ignored; the anomaly case spans from the first detected timestamp to
the recovery (or the current timestamp for ongoing anomalies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.detection.phenomenon import AnomalyPhenomenon

__all__ = ["DetectedAnomaly", "CaseBuilder"]


@dataclass(frozen=True)
class DetectedAnomaly:
    """One detected anomaly: its window and the phenomenon types inside."""

    start: int
    end: int
    types: tuple[str, ...]
    phenomena: tuple[AnomalyPhenomenon, ...] = field(default=())

    @property
    def duration(self) -> int:
        return self.end - self.start


class CaseBuilder:
    """Merges phenomena into anomalies and applies duration filtering."""

    def __init__(self, merge_gap_s: int = 120, min_duration_s: int = 30) -> None:
        if merge_gap_s < 0 or min_duration_s < 0:
            raise ValueError("merge_gap_s and min_duration_s must be non-negative")
        self.merge_gap_s = int(merge_gap_s)
        self.min_duration_s = int(min_duration_s)

    def build(self, phenomena: list[AnomalyPhenomenon]) -> list[DetectedAnomaly]:
        """Group phenomena into anomalies.

        Phenomena of the *same type* merge when their windows are within
        ``merge_gap_s`` of each other; overlapping anomalies of different
        types then merge into one case (a single root cause usually
        manifests on several metrics at once).
        """
        if not phenomena:
            return []
        # Step 1: merge same-type phenomena that are close in time.
        by_type: dict[str, list[AnomalyPhenomenon]] = {}
        for p in phenomena:
            by_type.setdefault(p.rule, []).append(p)
        merged: list[AnomalyPhenomenon] = []
        for rule, group in by_type.items():
            group.sort(key=lambda p: p.start)
            current = group[0]
            for p in group[1:]:
                if p.start <= current.end + self.merge_gap_s:
                    current = AnomalyPhenomenon(
                        rule=rule,
                        start=current.start,
                        end=max(current.end, p.end),
                        features=current.features + p.features,
                    )
                else:
                    merged.append(current)
                    current = p
            merged.append(current)
        # Step 2: overlapping windows of different types become one case.
        merged.sort(key=lambda p: p.start)
        anomalies: list[DetectedAnomaly] = []
        bucket: list[AnomalyPhenomenon] = [merged[0]]
        for p in merged[1:]:
            if p.start <= max(x.end for x in bucket):
                bucket.append(p)
            else:
                anomalies.append(self._anomaly(bucket))
                bucket = [p]
        anomalies.append(self._anomaly(bucket))
        # Step 3: duration filter.
        return [a for a in anomalies if a.duration >= self.min_duration_s]

    @staticmethod
    def _anomaly(bucket: list[AnomalyPhenomenon]) -> DetectedAnomaly:
        types = tuple(sorted({p.rule for p in bucket}))
        return DetectedAnomaly(
            start=min(p.start for p in bucket),
            end=max(p.end for p in bucket),
            types=types,
            phenomena=tuple(bucket),
        )
