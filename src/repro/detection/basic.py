"""Basic Perception layer: per-metric anomalous features."""

from __future__ import annotations

from repro.dbsim.monitor import InstanceMetrics
from repro.timeseries import (
    AnomalousFeature,
    LevelShiftDetector,
    SpikeDetector,
    TimeSeries,
    detect_anomalous_features,
)

__all__ = ["BasicPerception", "DEFAULT_MIN_DEVIATIONS"]

#: Per-metric minimum absolute deviations.  Pure robust z-scores flag
#: operationally meaningless blips on near-idle metrics (a CPU burst from
#: 5 % to 25 % is not an incident); production monitoring always combines
#: a relative test with an absolute floor.
DEFAULT_MIN_DEVIATIONS: dict[str, float] = {
    "cpu_usage": 25.0,             # percentage points
    "iops_usage": 25.0,
    "mem_usage": 20.0,
    "active_session": 8.0,         # sessions
    "qps": 0.0,                    # handled relatively; qps scale varies
    "innodb_row_lock_waits": 20.0,
    "innodb_row_lock_time": 2_000.0,
}


class BasicPerception:
    """Detects anomalous features on every monitored metric series.

    Parameters
    ----------
    spike_threshold, level_shift_threshold:
        Robust z-score thresholds of the underlying detectors.
    min_spike_length:
        Spikes shorter than this many samples are treated as noise.
    min_deviations:
        Per-metric absolute floors merged over
        :data:`DEFAULT_MIN_DEVIATIONS`; metrics not listed use 0.
    """

    def __init__(
        self,
        spike_threshold: float = 3.5,
        level_shift_threshold: float = 3.5,
        min_spike_length: int = 3,
        min_deviations: dict[str, float] | None = None,
    ) -> None:
        self.spike_threshold = spike_threshold
        self.level_shift_threshold = level_shift_threshold
        self.min_spike_length = min_spike_length
        self.min_deviations = dict(DEFAULT_MIN_DEVIATIONS)
        if min_deviations:
            self.min_deviations.update(min_deviations)

    def _detectors(self, metric: str) -> tuple[SpikeDetector, LevelShiftDetector]:
        floor = self.min_deviations.get(metric, 0.0)
        spike = SpikeDetector(
            threshold=self.spike_threshold,
            min_length=self.min_spike_length,
            min_deviation=floor,
        )
        level_shift = LevelShiftDetector(
            threshold=self.level_shift_threshold, min_deviation=floor
        )
        return spike, level_shift

    def perceive_series(self, name: str, series: TimeSeries) -> list[AnomalousFeature]:
        """Features of one metric series."""
        spike, level_shift = self._detectors(name)
        return detect_anomalous_features(
            name, series, spike_detector=spike, level_shift_detector=level_shift
        )

    def perceive(self, metrics: InstanceMetrics) -> list[AnomalousFeature]:
        """Features across all metrics, ordered by start time."""
        features: list[AnomalousFeature] = []
        for name, series in metrics.series.items():
            features.extend(self.perceive_series(name, series))
        features.sort(key=lambda f: (f.start, f.metric))
        return features
