"""Anomaly Detection module (paper Section IV-B).

Two layers mirror the paper's design: the **Basic Perception** layer
turns each performance-metric series into anomalous features (spike
up/down, level shift up/down), and the **Phenomenon Perception** layer
combines features across metrics through configurable rules into typed
anomaly phenomena.  The case builder then merges nearby phenomena and
applies minimum-duration filtering to produce the anomaly windows that
trigger root-cause analysis.
"""

from repro.detection.basic import BasicPerception, DEFAULT_MIN_DEVIATIONS
from repro.detection.phenomenon import (
    PhenomenonRule,
    AnomalyPhenomenon,
    PhenomenonPerception,
    DEFAULT_RULES,
)
from repro.detection.case_builder import DetectedAnomaly, CaseBuilder
from repro.detection.realtime import AnomalyEvent, RealtimeAnomalyDetector
from repro.detection.typing import CategoryVerdict, classify_case

__all__ = [
    "CategoryVerdict",
    "classify_case",
    "AnomalyEvent",
    "RealtimeAnomalyDetector",
    "DEFAULT_MIN_DEVIATIONS",
    "BasicPerception",
    "PhenomenonRule",
    "AnomalyPhenomenon",
    "PhenomenonPerception",
    "DEFAULT_RULES",
    "DetectedAnomaly",
    "CaseBuilder",
]
