"""Phenomenon Perception layer: typed anomaly phenomena from feature rules.

A :class:`PhenomenonRule` is a named combination of ``metric.feature``
patterns (the paper's Fig. 5 configuration style, e.g.
``[active_session.spike]`` or ``[cpu_usage.spike, iops_usage.spike]``).
A rule fires when, for *each* of its patterns, some detected feature
matches and the matched features overlap in time.  The paper's default
configuration watches the active session, CPU usage and IOPS usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timeseries import AnomalousFeature

__all__ = [
    "PhenomenonRule",
    "AnomalyPhenomenon",
    "PhenomenonPerception",
    "DEFAULT_RULES",
]


@dataclass(frozen=True)
class PhenomenonRule:
    """A configurable anomaly-phenomenon rule."""

    name: str
    patterns: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValueError("a rule needs at least one pattern")


@dataclass(frozen=True)
class AnomalyPhenomenon:
    """One recognised phenomenon: the rule that fired and its window."""

    rule: str
    start: int
    end: int
    features: tuple[AnomalousFeature, ...] = field(default=())

    @property
    def duration(self) -> int:
        return self.end - self.start


#: Default configuration (paper Section IV-B): anomalies on the active
#: session, CPU usage and IOPS usage metrics.
DEFAULT_RULES = (
    PhenomenonRule("active_session_anomaly", ("active_session.spike_up", "active_session.level_shift_up")),
    PhenomenonRule("cpu_anomaly", ("cpu_usage.spike_up", "cpu_usage.level_shift_up")),
    PhenomenonRule("iops_anomaly", ("iops_usage.spike_up", "iops_usage.level_shift_up")),
)


class PhenomenonPerception:
    """Matches detected features against configured phenomenon rules.

    Rule semantics: the rule's patterns are *alternatives* describing the
    anomalous shapes of one concern (spike or level shift of a metric);
    every feature matching any pattern contributes, and each contiguous
    group of contributing features becomes one phenomenon.  Conjunction
    across metrics is expressed by configuring one rule per metric and
    combining downstream — which is how the production system composes
    them (users pick the metric problems they care about).
    """

    def __init__(self, rules: tuple[PhenomenonRule, ...] = DEFAULT_RULES) -> None:
        if not rules:
            raise ValueError("at least one rule is required")
        self.rules = tuple(rules)

    def recognise(self, features: list[AnomalousFeature]) -> list[AnomalyPhenomenon]:
        """Phenomena recognised from the feature list, ordered by start."""
        phenomena: list[AnomalyPhenomenon] = []
        for rule in self.rules:
            matching = [
                f for f in features if any(f.matches(p) for p in rule.patterns)
            ]
            if not matching:
                continue
            matching.sort(key=lambda f: f.start)
            group: list[AnomalousFeature] = [matching[0]]
            for feature in matching[1:]:
                if feature.start <= max(g.end for g in group):
                    group.append(feature)
                else:
                    phenomena.append(self._phenomenon(rule, group))
                    group = [feature]
            phenomena.append(self._phenomenon(rule, group))
        phenomena.sort(key=lambda p: (p.start, p.rule))
        return phenomena

    @staticmethod
    def _phenomenon(rule: PhenomenonRule, group: list[AnomalousFeature]) -> AnomalyPhenomenon:
        return AnomalyPhenomenon(
            rule=rule.name,
            start=min(f.start for f in group),
            end=max(f.end for f in group),
            features=tuple(group),
        )
