"""Anomaly-category typing from metric signatures.

The paper's Phenomenon Perception layer uses iSQUAD to decide the *type*
of a detected anomaly, and the repairing module routes actions by type
(Fig. 5: query optimization for CPU/IO phenomena, throttling for session
pile-ups, autoscale for intended traffic growth).  This module provides
that typing as a transparent rule-based classifier over the case's
metric behaviour during the anomaly window:

* ``BUSINESS_SPIKE`` — QPS rose substantially with the session;
* ``POOR_SQL``       — CPU (or IO) saturated while QPS stayed flat;
* ``ROW_LOCK``       — row-lock wait counters surged;
* ``MDL_LOCK``       — sessions piled up with neither resource
  saturation, QPS growth, nor row-lock evidence (the metadata lock is
  invisible to all three, which is itself the signature).
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.case import AnomalyCase
from repro.workload.scenarios import AnomalyCategory

__all__ = ["CategoryVerdict", "classify_case"]


@dataclass(frozen=True)
class CategoryVerdict:
    """A typed anomaly with the evidence behind the decision."""

    category: AnomalyCategory
    qps_ratio: float
    cpu_during: float
    io_during: float
    rowlock_ratio: float

    @property
    def evidence(self) -> str:
        return (
            f"qps×{self.qps_ratio:.1f}, cpu {self.cpu_during:.0f}%, "
            f"io {self.io_during:.0f}%, rowlock×{self.rowlock_ratio:.1f}"
        )


def _window_stats(case: AnomalyCase, name: str) -> tuple[float, float]:
    """(baseline mean, anomaly-window mean) of one metric; zeros if absent."""
    if name not in case.metrics:
        return 0.0, 0.0
    values = case.metrics[name].values
    lo, hi = case.anomaly_indices()
    baseline = float(values[:lo].mean()) if lo > 0 else 0.0
    during = float(values[lo:hi].mean()) if hi > lo else 0.0
    return baseline, during


def classify_case(
    case: AnomalyCase,
    qps_spike_ratio: float = 2.0,
    saturation_pct: float = 85.0,
    rowlock_spike_ratio: float = 2.0,
) -> CategoryVerdict:
    """Type the anomaly from its metric signature.

    Rule order matters: a business spike saturates CPU too, so the QPS
    test runs first; row locks are checked before the resource test
    because lock storms can also push CPU up via piled-up sessions.
    """
    qps_base, qps_during = _window_stats(case, "qps")
    _, cpu_during = _window_stats(case, "cpu_usage")
    _, io_during = _window_stats(case, "iops_usage")
    lock_base, lock_during = _window_stats(case, "innodb_row_lock_waits")

    qps_ratio = qps_during / max(qps_base, 1e-9) if qps_base > 0 else 1.0
    rowlock_ratio = lock_during / max(lock_base, 1.0)

    if qps_ratio >= qps_spike_ratio:
        category = AnomalyCategory.BUSINESS_SPIKE
    elif rowlock_ratio >= rowlock_spike_ratio and lock_during > 3.0:
        category = AnomalyCategory.ROW_LOCK
    elif max(cpu_during, io_during) >= saturation_pct:
        category = AnomalyCategory.POOR_SQL
    else:
        category = AnomalyCategory.MDL_LOCK
    return CategoryVerdict(
        category=category,
        qps_ratio=qps_ratio,
        cpu_during=cpu_during,
        io_during=io_during,
        rowlock_ratio=rowlock_ratio,
    )
