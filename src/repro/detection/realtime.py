"""Real-time anomaly detection over the metric stream.

The paper's Data Collection And Anomaly Detection module runs
"round-the-clock", consuming the collected metric stream and evoking the
root-cause modules the moment an anomaly is recognised.  This module is
that loop: a :class:`RealtimeAnomalyDetector` polls the broker's metric
topic, maintains a sliding window per metric, periodically re-runs the
two perception layers, and emits each anomaly exactly once (with
follow-up events when an ongoing anomaly grows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterator, Mapping

import numpy as np

from repro.collection.quarantine import quarantine, validate_metric_record
from repro.collection.stream import Consumer
from repro.detection.basic import BasicPerception
from repro.detection.case_builder import CaseBuilder, DetectedAnomaly
from repro.detection.phenomenon import PhenomenonPerception
from repro.telemetry import MetricsRegistry, get_registry
from repro.timeseries import TimeSeries

__all__ = ["AnomalyEvent", "RealtimeAnomalyDetector", "snapshot_samples"]


def snapshot_samples(
    samples: Mapping[int, float], ts: int, te: int
) -> list[tuple[int, float]]:
    """Raw ``(timestamp, value)`` points with ``ts <= t < te``, sorted.

    This is the *triggering* evidence shape the incident flight
    recorder persists: the actual samples a detector buffer (or the
    service's retention-bounded mirror of one) held, with gaps left as
    gaps — unlike the forward-filled series the pipeline consumes.
    """
    return sorted((t, v) for t, v in samples.items() if ts <= t < te)


@dataclass(frozen=True)
class AnomalyEvent:
    """One emission of the real-time detector."""

    anomaly: DetectedAnomaly
    detected_at: int          # stream time (max metric timestamp seen)
    is_update: bool = False   # True when extending a previously emitted anomaly
    instance_id: str = ""     # the monitored instance this anomaly belongs to


@dataclass
class _MetricBuffer:
    """Sliding per-metric sample buffer keyed by timestamp."""

    window_s: int
    samples: dict[int, float] = field(default_factory=dict)

    def add(self, timestamp: int, value: float) -> None:
        self.samples[timestamp] = value

    def trim(self, now: int) -> None:
        cutoff = now - self.window_s
        if len(self.samples) > 2 * self.window_s:
            self.samples = {t: v for t, v in self.samples.items() if t >= cutoff}

    def series(self, now: int) -> TimeSeries | None:
        """Contiguous series over the window ending at ``now`` (inclusive).

        Missing samples are forward-filled; leading gaps shrink the
        window.  Returns None when fewer than a handful of samples exist.
        """
        cutoff = now - self.window_s
        timestamps = sorted(t for t in self.samples if cutoff < t <= now)
        if len(timestamps) < 8:
            return None
        start = timestamps[0]
        values = np.empty(now - start + 1, dtype=np.float64)
        last = self.samples[timestamps[0]]
        idx = 0
        for t in range(start, now + 1):
            if t in self.samples:
                last = self.samples[t]
            values[idx] = last
            idx += 1
        return TimeSeries(values, start=start)


class RealtimeAnomalyDetector:
    """Streaming wrapper around the two perception layers.

    Parameters
    ----------
    consumer:
        Broker consumer positioned on the performance-metric topic
        (messages as produced by
        :class:`~repro.collection.collector.MetricsCollector`).
    window_s:
        Sliding analysis window length.
    evaluation_interval_s:
        How often (in stream time) the window is re-analysed.
    instance_id:
        Optional id of the monitored instance.  Detector state (buffers,
        stream time, emitted-anomaly dedup) is *always* private to one
        detector object — fleet deployments run one detector per
        instance — and the id stamps emitted events and labels the
        detector's own telemetry.
    """

    def __init__(
        self,
        consumer: Consumer,
        window_s: int = 1800,
        evaluation_interval_s: int = 60,
        basic: BasicPerception | None = None,
        phenomenon: PhenomenonPerception | None = None,
        case_builder: CaseBuilder | None = None,
        registry: MetricsRegistry | None = None,
        instance_id: str = "",
    ) -> None:
        if window_s <= 0 or evaluation_interval_s <= 0:
            raise ValueError("window_s and evaluation_interval_s must be positive")
        self.consumer = consumer
        self.window_s = int(window_s)
        self.evaluation_interval_s = int(evaluation_interval_s)
        self.instance_id = instance_id
        self._basic = basic or BasicPerception()
        self._phenomenon = phenomenon or PhenomenonPerception()
        self._builder = case_builder or CaseBuilder()
        self._buffers: dict[str, _MetricBuffer] = {}
        self._stream_time: int | None = None
        self._last_evaluation: int | None = None
        #: start → end of anomalies already emitted (for dedup/updates).
        self._emitted: dict[tuple[str, int], int] = {}
        registry = registry or get_registry()
        labels = {"instance": instance_id} if instance_id else {}
        self._m_points = registry.counter(
            "detector_points_consumed_total",
            help="Metric points consumed.",
            **labels,
        )
        self._m_evaluations = registry.counter(
            "detector_evaluations_total",
            help="Sliding-window re-analyses run.",
            **labels,
        )
        self._m_events_new = registry.counter(
            "detector_events_total",
            help="Anomaly events emitted.",
            kind="new",
            **labels,
        )
        self._m_events_update = registry.counter(
            "detector_events_total",
            help="Anomaly events emitted.",
            kind="update",
            **labels,
        )

    @property
    def stream_time(self) -> int | None:
        """Largest metric timestamp observed so far."""
        return self._stream_time

    @property
    def metric_names(self) -> list[str]:
        """Names of the metrics buffered so far."""
        return list(self._buffers)

    def iter_buffer_samples(self) -> Iterator[tuple[str, Mapping[int, float]]]:
        """Read-only views of the per-metric raw sample buffers.

        Yields ``(metric_name, {timestamp: value})`` pairs; the mappings
        are live read-only proxies (no copy), valid until the next
        :meth:`poll`.  This is the supported way for the service layer to
        mirror detector state — the buffers themselves stay private.
        """
        for name, buffer in self._buffers.items():
            yield name, MappingProxyType(buffer.samples)

    def window_snapshot(self, ts: int, te: int) -> dict[str, list[tuple[int, float]]]:
        """Per-metric raw samples within ``[ts, te)`` (metrics with none
        are omitted).  Evidence capture for the incident recorder."""
        out: dict[str, list[tuple[int, float]]] = {}
        for name, buffer in self._buffers.items():
            points = snapshot_samples(buffer.samples, ts, te)
            if points:
                out[name] = points
        return out

    def poll(self, max_messages: int = 10_000) -> list[AnomalyEvent]:
        """Consume available metric points; return newly detected anomalies.

        Messages may carry legacy per-sample records or columnar
        :class:`~repro.collection.blocks.MetricBlock` payloads (one
        block = many samples); malformed payloads of either shape are
        quarantined, never raised.
        """
        from repro.collection.blocks import MetricBlock, validate_metric_block

        messages = self.consumer.poll(max_messages)
        points = 0
        for message in messages:
            record = message.value
            if isinstance(record, MetricBlock):
                reason = validate_metric_block(record)
                if reason is not None:
                    quarantine(
                        self.consumer.broker, self.consumer.topic, record, reason
                    )
                    continue
                if (
                    self.instance_id
                    and record.instance
                    and record.instance != self.instance_id
                ):
                    continue
                for name, ts_arr, values in record.iter_metric_series():
                    buffer = self._buffers.get(name)
                    if buffer is None:
                        buffer = _MetricBuffer(self.window_s)
                        self._buffers[name] = buffer
                    buffer.samples.update(
                        zip(ts_arr.tolist(), values.tolist())
                    )
                block_max = int(record.data["timestamp"].max())
                if self._stream_time is None or block_max > self._stream_time:
                    self._stream_time = block_max
                points += len(record)
                continue
            points += 1
            reason = validate_metric_record(record)
            if reason is not None:
                # Malformed payloads must not crash the poll loop: park
                # them on the dead-letter topic and keep consuming.
                quarantine(self.consumer.broker, self.consumer.topic, record, reason)
                continue
            if self.instance_id and record.get("instance", self.instance_id) != self.instance_id:
                continue
            name = record["metric"]
            timestamp = int(record["timestamp"])
            buffer = self._buffers.get(name)
            if buffer is None:
                buffer = _MetricBuffer(self.window_s)
                self._buffers[name] = buffer
            buffer.add(timestamp, float(record["value"]))
            if self._stream_time is None or timestamp > self._stream_time:
                self._stream_time = timestamp
        if points:
            self._m_points.inc(points)
        if self._stream_time is None:
            return []
        due = (
            self._last_evaluation is None
            or self._stream_time - self._last_evaluation >= self.evaluation_interval_s
        )
        if not due:
            return []
        self._last_evaluation = self._stream_time
        return self._evaluate(self._stream_time)

    def run_until_drained(self) -> list[AnomalyEvent]:
        """Poll until the topic is exhausted; collect every event.

        Guards against a consumer that cannot make progress (stranded
        behind a pruned log head, or stalled by backpressure): a stuck
        offset is resynced, and persistent zero-progress polls break the
        loop instead of spinning forever.
        """
        events: list[AnomalyEvent] = []
        idle = 0
        while self.consumer.lag > 0 and idle <= 100:
            offset_before = self.consumer.offset
            events.extend(self.poll())
            if self.consumer.offset == offset_before:
                if not self.consumer.resync_to_base():
                    idle += 1
            else:
                idle = 0
        # One final evaluation at the end of the stream.
        if self._stream_time is not None:
            self._last_evaluation = self._stream_time
            events.extend(self._evaluate(self._stream_time))
        return events

    # ------------------------------------------------------------------
    def _evaluate(self, now: int) -> list[AnomalyEvent]:
        self._m_evaluations.inc()
        features = []
        for name, buffer in self._buffers.items():
            buffer.trim(now)
            series = buffer.series(now)
            if series is not None:
                features.extend(self._basic.perceive_series(name, series))
        if not features:
            return []
        phenomena = self._phenomenon.recognise(features)
        anomalies = self._builder.build(phenomena)
        events: list[AnomalyEvent] = []
        for anomaly in anomalies:
            key = self._key_for(anomaly)
            previous_end = self._emitted.get(key)
            if previous_end is None:
                self._emitted[key] = anomaly.end
                events.append(
                    AnomalyEvent(anomaly, detected_at=now, instance_id=self.instance_id)
                )
                self._m_events_new.inc()
            elif anomaly.end > previous_end + self.evaluation_interval_s:
                self._emitted[key] = anomaly.end
                events.append(
                    AnomalyEvent(
                        anomaly,
                        detected_at=now,
                        is_update=True,
                        instance_id=self.instance_id,
                    )
                )
                self._m_events_update.inc()
        return events

    def _key_for(self, anomaly: DetectedAnomaly) -> tuple[str, int]:
        """Dedup key: anomaly type set + coarse start bucket.

        The detected start can wobble by a few samples between
        evaluations; bucketing by the evaluation interval absorbs that.
        """
        bucket = anomaly.start // max(self.evaluation_interval_s, 1)
        return ("|".join(anomaly.types), int(bucket))
