"""Time-series substrate for PinSQL.

This package provides the fixed-interval :class:`TimeSeries` container
(paper Definition II.1), correlation measures including the sigmoid-weighted
Pearson coefficient used by the H-SQL trend-level score (paper Section V),
and the anomaly detectors (spike, level shift, Tukey's rule) that back both
the Basic Perception layer and the history-trend verification step.
"""

from repro.timeseries.series import TimeSeries
from repro.timeseries.correlation import (
    pearson,
    weighted_pearson,
    sigmoid_anomaly_weights,
)
from repro.timeseries.detectors import (
    Detection,
    SpikeDetector,
    LevelShiftDetector,
    TukeyDetector,
    detect_anomalous_features,
)
from repro.timeseries.features import AnomalousFeature, FeatureKind

__all__ = [
    "TimeSeries",
    "pearson",
    "weighted_pearson",
    "sigmoid_anomaly_weights",
    "Detection",
    "SpikeDetector",
    "LevelShiftDetector",
    "TukeyDetector",
    "detect_anomalous_features",
    "AnomalousFeature",
    "FeatureKind",
]
