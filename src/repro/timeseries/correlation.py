"""Correlation measures used throughout PinSQL.

Implements the plain Pearson coefficient, the *weighted* Pearson
coefficient with a Sigmoid-based anomaly-window weight (paper Section V,
Eq. (1)), and small numerical guards: a correlation involving a
(near-)constant series is defined as 0.0 rather than NaN, because a flat
template trivially carries no trend information about the anomaly.
"""

from __future__ import annotations

import numpy as np

from repro.timeseries.series import TimeSeries

__all__ = ["pearson", "weighted_pearson", "sigmoid_anomaly_weights"]

#: Variance floor below which a series is treated as constant.
_EPS = 1e-12


def _as_array(x) -> np.ndarray:
    if isinstance(x, TimeSeries):
        return x.values
    return np.asarray(x, dtype=np.float64)


def pearson(x, y) -> float:
    """Pearson correlation coefficient of two equal-length series.

    Returns 0.0 when either input is (near-)constant or shorter than two
    samples, so callers never have to special-case NaN.
    """
    xa, ya = _as_array(x), _as_array(y)
    if len(xa) != len(ya):
        raise ValueError(f"length mismatch: {len(xa)} vs {len(ya)}")
    if len(xa) < 2:
        return 0.0
    xc = xa - xa.mean()
    yc = ya - ya.mean()
    vx = float(np.dot(xc, xc))
    vy = float(np.dot(yc, yc))
    if vx < _EPS or vy < _EPS:
        return 0.0
    r = float(np.dot(xc, yc)) / np.sqrt(vx * vy)
    return float(np.clip(r, -1.0, 1.0))


def weighted_pearson(x, y, weights) -> float:
    """Weighted Pearson correlation (paper Section V, trend-level score).

    ``cov(X, Y; W) = Σᵢ wᵢ·(xᵢ−m(X;W))(yᵢ−m(Y;W)) / Σᵢ wᵢ`` with the
    weighted means ``m(·;W)``.  Degenerate inputs yield 0.0.
    """
    xa, ya = _as_array(x), _as_array(y)
    w = np.asarray(weights, dtype=np.float64)
    if not (len(xa) == len(ya) == len(w)):
        raise ValueError("x, y and weights must share a length")
    if len(xa) < 2:
        return 0.0
    wsum = float(w.sum())
    if wsum < _EPS:
        return 0.0
    mx = float(np.dot(w, xa)) / wsum
    my = float(np.dot(w, ya)) / wsum
    xc = xa - mx
    yc = ya - my
    cov = float(np.dot(w, xc * yc)) / wsum
    vx = float(np.dot(w, xc * xc)) / wsum
    vy = float(np.dot(w, yc * yc)) / wsum
    if vx < _EPS or vy < _EPS:
        return 0.0
    r = cov / np.sqrt(vx * vy)
    return float(np.clip(r, -1.0, 1.0))


def sigmoid_anomaly_weights(
    ts: int, te: int, anomaly_start: int, anomaly_end: int, smooth_factor: float
) -> np.ndarray:
    """Sigmoid-based weight highlighting the anomaly period (paper Eq. (1)).

    ``Wₜ = σ((t−as)/ks) + σ((ae−t)/ks) − 1`` for ``t ∈ [ts, te)``.  As
    ``ks → 0`` the weight becomes the anomaly-window indicator; as
    ``ks → ∞`` it tends to the all-ones weight (plain Pearson).

    Parameters
    ----------
    ts, te:
        Bounds of the analysed window ``[ts, te)`` (1-second steps).
    anomaly_start, anomaly_end:
        The detected anomaly period ``[as, ae)``.
    smooth_factor:
        ``ks > 0``; the paper's default is 30.
    """
    if smooth_factor <= 0:
        raise ValueError("smooth_factor must be positive")
    if te <= ts:
        raise ValueError("empty window: te must exceed ts")
    t = np.arange(ts, te, dtype=np.float64)
    ks = float(smooth_factor)

    def _sigmoid(z: np.ndarray) -> np.ndarray:
        # Numerically stable logistic function.
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out[~pos] = ez / (1.0 + ez)
        return out

    w = _sigmoid((t - anomaly_start) / ks) + _sigmoid((anomaly_end - t) / ks) - 1.0
    # The analytic form can dip infinitesimally below zero far from the
    # window; clamp so downstream weighted sums stay well-defined.
    return np.clip(w, 0.0, 1.0)
