"""Anomalous-feature vocabulary shared by detectors and perception layers.

The paper's Basic Perception layer emits *anomalous features* — spike
up/down and level-shift up/down observed on a performance metric — which
the Phenomenon Perception layer then combines into typed anomaly
phenomena (e.g. ``[active_session.spike]``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["FeatureKind", "AnomalousFeature"]


class FeatureKind(enum.Enum):
    """The anomalous feature kinds recognised by the Basic Perception layer."""

    SPIKE_UP = "spike_up"
    SPIKE_DOWN = "spike_down"
    LEVEL_SHIFT_UP = "level_shift_up"
    LEVEL_SHIFT_DOWN = "level_shift_down"

    @property
    def is_spike(self) -> bool:
        return self in (FeatureKind.SPIKE_UP, FeatureKind.SPIKE_DOWN)

    @property
    def is_level_shift(self) -> bool:
        return self in (FeatureKind.LEVEL_SHIFT_UP, FeatureKind.LEVEL_SHIFT_DOWN)

    @property
    def is_upward(self) -> bool:
        return self in (FeatureKind.SPIKE_UP, FeatureKind.LEVEL_SHIFT_UP)


@dataclass(frozen=True)
class AnomalousFeature:
    """One anomalous feature detected on a metric.

    Attributes
    ----------
    metric:
        Name of the performance metric (e.g. ``"active_session"``).
    kind:
        The feature kind.
    start, end:
        Timestamps bounding the feature period ``[start, end)``.
    severity:
        Detector-specific strength score (robust z-score magnitude).
    """

    metric: str
    kind: FeatureKind
    start: int
    end: int
    severity: float

    @property
    def duration(self) -> int:
        return self.end - self.start

    def matches(self, pattern: str) -> bool:
        """Check a ``metric.feature`` rule pattern (paper Fig. 5 DSL).

        ``"active_session.spike"`` matches either spike direction,
        ``"cpu_usage.spike_up"`` matches only upward spikes, and
        ``"active_session.*"`` (or bare ``"active_session"``) matches any
        feature on that metric.
        """
        if "." in pattern:
            metric, feature = pattern.split(".", 1)
        else:
            metric, feature = pattern, "*"
        if metric != self.metric:
            return False
        if feature in ("*", ""):
            return True
        if feature == "spike":
            return self.kind.is_spike
        if feature == "level_shift":
            return self.kind.is_level_shift
        return feature == self.kind.value
