"""Fixed-interval time series (paper Definition II.1).

A :class:`TimeSeries` is a sequence of observations sampled at a fixed
interval starting at an integer epoch timestamp.  Following the paper's
convention, elements can be addressed interchangeably by index or by
timestamp: ``X[t1]`` and ``X[1]`` denote the same observation when ``t1``
is the timestamp one interval after the series start.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TimeSeries"]


@dataclass
class TimeSeries:
    """A fixed-interval sequence of float observations.

    Parameters
    ----------
    values:
        Observation values; stored as a float64 numpy array.
    start:
        Timestamp (seconds since an arbitrary epoch) of the first sample.
    interval:
        Sampling interval in seconds (the paper uses 1 s and 1 min).
    name:
        Optional label, e.g. ``"active_session"`` or a SQL template id.
    """

    values: np.ndarray
    start: int = 0
    interval: int = 1
    name: str = ""

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError("TimeSeries values must be one-dimensional")
        if self.interval <= 0:
            raise ValueError("interval must be positive")

    # ------------------------------------------------------------------
    # Basic shape / time accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def end(self) -> int:
        """Timestamp one interval past the last sample (exclusive bound)."""
        return self.start + len(self.values) * self.interval

    @property
    def timestamps(self) -> np.ndarray:
        """Timestamps of every sample as an integer array."""
        return self.start + np.arange(len(self.values), dtype=np.int64) * self.interval

    def to_index(self, timestamp: int) -> int:
        """Convert a timestamp to the index of its containing sample."""
        idx = (int(timestamp) - self.start) // self.interval
        if idx < 0 or idx >= len(self.values):
            raise IndexError(
                f"timestamp {timestamp} outside series range "
                f"[{self.start}, {self.end})"
            )
        return int(idx)

    def at_index(self, index: int) -> float:
        """Element by positional index (negative counts from the end)."""
        index = int(index)
        n = len(self.values)
        if not -n <= index < n:
            raise IndexError(
                f"index {index} out of range for series of length {n}"
            )
        return self.values[index]

    def at_timestamp(self, timestamp: int) -> float:
        """Element by timestamp (must fall within ``[start, end)``)."""
        return self.values[self.to_index(timestamp)]

    def __getitem__(self, key):
        """Index-or-timestamp element access (paper's dual addressing).

        The decision is explicit, in priority order:

        1. slices are always index-based;
        2. when ``start == 0`` the two addressings coincide — plain
           index (negative counts from the end);
        3. a key within ``[start, end)`` is a timestamp;
        4. a key within ``[0, len)`` is a plain index;
        5. anything else raises :class:`IndexError` naming both valid
           ranges (instead of falling through to numpy with a key that
           was silently treated as an index).

        Use :meth:`at_index` / :meth:`at_timestamp` to bypass the
        heuristic entirely.
        """
        if isinstance(key, slice):
            return self.values[key]
        key = int(key)
        if self.start == 0:
            return self.at_index(key)
        if self.start <= key < self.end:
            return self.at_timestamp(key)
        if 0 <= key < len(self.values):
            return self.values[key]
        raise IndexError(
            f"key {key} is neither a valid index (0 <= i < {len(self.values)}) "
            f"nor a timestamp in [{self.start}, {self.end}); "
            f"use at_index()/at_timestamp() for explicit addressing"
        )

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def window(self, t0: int, t1: int) -> "TimeSeries":
        """Return the sub-series covering ``[t0, t1)`` (timestamps).

        The window is clipped to the series bounds.
        """
        i0 = max(0, (int(t0) - self.start) // self.interval)
        i1 = min(len(self.values), (int(t1) - self.start) // self.interval)
        i1 = max(i0, i1)
        return TimeSeries(
            self.values[i0:i1],
            start=self.start + i0 * self.interval,
            interval=self.interval,
            name=self.name,
        )

    def resample(self, factor: int, how: str = "sum") -> "TimeSeries":
        """Downsample by an integer factor (e.g. 1 s → 1 min with factor 60).

        Trailing samples that do not fill a complete bucket are dropped,
        mirroring how stream aggregation only emits closed windows.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        if factor == 1:
            return TimeSeries(self.values.copy(), self.start, self.interval, self.name)
        n = (len(self.values) // factor) * factor
        buckets = self.values[:n].reshape(-1, factor)
        if how == "sum":
            agg = buckets.sum(axis=1)
        elif how == "mean":
            agg = buckets.mean(axis=1)
        elif how == "max":
            agg = buckets.max(axis=1)
        else:
            raise ValueError(f"unknown aggregation {how!r}")
        return TimeSeries(agg, self.start, self.interval * factor, self.name)

    # ------------------------------------------------------------------
    # Arithmetic helpers (used by score computations)
    # ------------------------------------------------------------------
    def _check_aligned(self, other: "TimeSeries") -> None:
        if (
            self.start != other.start
            or self.interval != other.interval
            or len(self) != len(other)
        ):
            raise ValueError("series are not aligned (start/interval/length differ)")

    def __add__(self, other):
        if isinstance(other, TimeSeries):
            self._check_aligned(other)
            return TimeSeries(
                self.values + other.values, self.start, self.interval, self.name
            )
        return TimeSeries(self.values + other, self.start, self.interval, self.name)

    def __truediv__(self, other):
        if isinstance(other, TimeSeries):
            self._check_aligned(other)
            denom = np.where(other.values == 0.0, np.nan, other.values)
            out = self.values / denom
            return TimeSeries(
                np.nan_to_num(out, nan=0.0), self.start, self.interval, self.name
            )
        return TimeSeries(self.values / other, self.start, self.interval, self.name)

    def total(self) -> float:
        """Sum of all observations."""
        return float(self.values.sum())

    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 for empty series)."""
        if len(self.values) == 0:
            return 0.0
        return float(self.values.mean())

    def copy(self) -> "TimeSeries":
        return TimeSeries(self.values.copy(), self.start, self.interval, self.name)

    @classmethod
    def zeros(cls, length: int, start: int = 0, interval: int = 1, name: str = "") -> "TimeSeries":
        """A series of ``length`` zero observations."""
        return cls(np.zeros(length, dtype=np.float64), start, interval, name)

    @classmethod
    def aligned_like(cls, template: "TimeSeries", values: np.ndarray, name: str = "") -> "TimeSeries":
        """Build a series sharing ``template``'s time axis."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) != len(template):
            raise ValueError("values length does not match the template series")
        return cls(values, template.start, template.interval, name)
