"""Anomaly detectors for performance-metric time series.

Three detectors back PinSQL:

* :class:`SpikeDetector` — robust (median/MAD) z-score spikes that recover;
* :class:`LevelShiftDetector` — sustained mean shifts that do not recover;
* :class:`TukeyDetector` — Tukey's rule (Q1/Q3 ± k·IQR), used by the
  history-trend verification step of the R-SQL module (paper Section VI).

All detectors are streaming-free: they analyse a finished window, which is
how PinSQL's asynchronous root-cause analysis consumes them.  The
real-time layer simply applies them on a sliding window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.timeseries.features import AnomalousFeature, FeatureKind
from repro.timeseries.series import TimeSeries

__all__ = [
    "Detection",
    "SpikeDetector",
    "LevelShiftDetector",
    "TukeyDetector",
    "detect_anomalous_features",
]


@dataclass(frozen=True)
class Detection:
    """A contiguous anomalous region found by a detector."""

    kind: FeatureKind
    start_index: int
    end_index: int  # exclusive
    severity: float

    @property
    def length(self) -> int:
        return self.end_index - self.start_index


def _robust_center_scale(values: np.ndarray) -> tuple[float, float]:
    """Median and MAD-based scale with a floor to avoid zero division."""
    center = float(np.median(values))
    mad = float(np.median(np.abs(values - center)))
    scale = 1.4826 * mad
    if scale < 1e-9:
        std = float(values.std())
        scale = max(std, 1e-9)
    return center, scale


def _mask_to_regions(mask: np.ndarray) -> list[tuple[int, int]]:
    """Convert a boolean mask into a list of [start, end) index regions."""
    regions: list[tuple[int, int]] = []
    idx = np.flatnonzero(mask)
    if len(idx) == 0:
        return regions
    run_start = int(idx[0])
    prev = int(idx[0])
    for i in idx[1:]:
        i = int(i)
        if i != prev + 1:
            regions.append((run_start, prev + 1))
            run_start = i
        prev = i
    regions.append((run_start, prev + 1))
    return regions


class SpikeDetector:
    """Detect spike up/down: sudden deviation followed by recovery.

    A point is spiky when its robust z-score against the window baseline
    exceeds ``threshold``.  A contiguous spiky region qualifies as a spike
    (rather than a level shift) when it recovers, i.e. it ends before the
    final ``recovery_margin`` fraction of the window.
    """

    def __init__(self, threshold: float = 3.5, recovery_margin: float = 0.05,
                 min_length: int = 1, min_deviation: float = 0.0) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_deviation < 0:
            raise ValueError("min_deviation must be non-negative")
        self.threshold = threshold
        self.recovery_margin = recovery_margin
        self.min_length = max(1, int(min_length))
        #: Absolute floor: a sample must also deviate from the baseline by
        #: at least this much.  On near-idle metrics the robust scale is
        #: tiny and pure z-scores flag operationally meaningless blips.
        self.min_deviation = float(min_deviation)

    def detect(self, series: TimeSeries | np.ndarray) -> list[Detection]:
        values = series.values if isinstance(series, TimeSeries) else np.asarray(series, float)
        n = len(values)
        if n < 4:
            return []
        center, scale = _robust_center_scale(values)
        z = (values - center) / scale
        deviation_ok = np.abs(values - center) >= self.min_deviation
        detections: list[Detection] = []
        recover_bound = n - max(1, int(round(n * self.recovery_margin)))
        for direction, mask in (
            (FeatureKind.SPIKE_UP, (z > self.threshold) & deviation_ok),
            (FeatureKind.SPIKE_DOWN, (z < -self.threshold) & deviation_ok),
        ):
            for start, end in _mask_to_regions(mask):
                if end - start < self.min_length:
                    continue
                if end > recover_bound:
                    continue  # does not recover inside the window: not a spike
                severity = float(np.abs(z[start:end]).max())
                detections.append(Detection(direction, start, end, severity))
        detections.sort(key=lambda d: d.start_index)
        return detections


class LevelShiftDetector:
    """Detect sustained level shifts via a full-split mean comparison.

    For every candidate change point ``cp`` the detector compares the mean
    of *all* samples before and after ``cp``, normalised by a robust noise
    scale estimated from first differences (differencing removes the level
    shift itself, and isolated spikes contribute only two diff samples, so
    the scale is a faithful noise estimate either way).  Full-half means
    dilute the contribution of a transient spike, so spikes do not
    masquerade as shifts — the failure mode a local two-window comparison
    suffers from.
    """

    def __init__(self, threshold: float = 3.5, window: int = 30,
                 min_deviation: float = 0.0) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_deviation < 0:
            raise ValueError("min_deviation must be non-negative")
        self.threshold = threshold
        self.window = max(2, int(window))
        self.min_deviation = float(min_deviation)

    def detect(self, series: TimeSeries | np.ndarray) -> list[Detection]:
        values = series.values if isinstance(series, TimeSeries) else np.asarray(series, float)
        n = len(values)
        w = max(2, min(self.window, n // 4))
        if n < 3 * w:
            return []
        diffs = np.diff(values)
        med_d = float(np.median(diffs))
        mad_d = float(np.median(np.abs(diffs - med_d)))
        scale = 1.4826 * mad_d / np.sqrt(2.0)
        if scale < 1e-9:
            std_d = float(diffs.std()) / np.sqrt(2.0)
            scale = max(std_d, 1e-9)
        csum = np.concatenate([[0.0], np.cumsum(values)])
        idx = np.arange(w, n - w + 1)
        before = csum[idx] / idx
        after = (csum[n] - csum[idx]) / (n - idx)
        shift = (after - before) / scale
        order = int(np.argmax(np.abs(shift)))
        best = float(shift[order])
        if abs(best) < self.threshold:
            return []
        cp = int(idx[order])
        # Robust confirmation: the shift must also show in the medians,
        # which a transient spike cannot move.
        pre_med = float(np.median(values[:cp]))
        post_med = float(np.median(values[cp:]))
        if abs(post_med - pre_med) / scale < self.threshold:
            return []
        if abs(post_med - pre_med) < self.min_deviation:
            return []
        midpoint = (pre_med + post_med) / 2.0
        tail = values[cp:]
        if post_med > pre_med:
            persists = float(np.mean(tail > midpoint)) > 0.7
            kind = FeatureKind.LEVEL_SHIFT_UP
        else:
            persists = float(np.mean(tail < midpoint)) > 0.7
            kind = FeatureKind.LEVEL_SHIFT_DOWN
        if not persists:
            return []
        return [Detection(kind, cp, n, abs(best))]


class TukeyDetector:
    """Tukey's rule outlier detection (paper Section VI, history verification).

    A sample is anomalous when it falls outside ``[Q1 − k·IQR, Q3 + k·IQR]``.
    ``k = 3.0`` is the classical "far out" labeling the paper's reference
    (Hoaglin, Iglewicz & Tukey 1986) recommends for resistant rules.
    """

    def __init__(self, k: float = 3.0) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k

    def mask(self, series: TimeSeries | np.ndarray) -> np.ndarray:
        """Boolean anomaly mask over the samples."""
        values = series.values if isinstance(series, TimeSeries) else np.asarray(series, float)
        if len(values) == 0:
            return np.zeros(0, dtype=bool)
        q1, q3 = np.percentile(values, [25, 75])
        iqr = q3 - q1
        if iqr < 1e-9:
            # Degenerate distribution: flag points that deviate from the
            # (constant) bulk by any noticeable amount.
            center = float(np.median(values))
            tol = max(1e-9, abs(center) * 1e-6)
            return np.abs(values - center) > tol + self.k * 1e-9
        lo = q1 - self.k * iqr
        hi = q3 + self.k * iqr
        return (values < lo) | (values > hi)

    def has_anomaly(
        self,
        series: TimeSeries | np.ndarray,
        window: tuple[int, int] | None = None,
        upward_only: bool = True,
    ) -> bool:
        """Whether an anomaly occurs, optionally restricted to an index window.

        ``upward_only`` restricts to values above the upper fence, matching
        the R-SQL verification rule that root-cause execution counts must
        *increase* suddenly.
        """
        values = series.values if isinstance(series, TimeSeries) else np.asarray(series, float)
        if len(values) == 0:
            return False
        q1, q3 = np.percentile(values, [25, 75])
        iqr = q3 - q1
        if iqr < 1e-9:
            anomaly = self.mask(values)
        else:
            hi = q3 + self.k * iqr
            lo = q1 - self.k * iqr
            anomaly = values > hi if upward_only else (values > hi) | (values < lo)
        if window is not None:
            lo_i, hi_i = window
            lo_i = max(0, lo_i)
            hi_i = min(len(values), hi_i)
            if hi_i <= lo_i:
                return False
            anomaly = anomaly[lo_i:hi_i]
        return bool(anomaly.any())

    def has_anomaly_vs_baseline(
        self, series: TimeSeries | np.ndarray, window: tuple[int, int]
    ) -> bool:
        """Whether values inside ``window`` exceed fences fit on the data
        *before* the window.

        Fitting fences on the pre-window baseline avoids the
        contamination problem: when the anomaly occupies a sizeable
        fraction of the series, quartiles computed over the whole series
        absorb the anomalous values and the rule goes blind.  Used by the
        R-SQL history-trend verification, whose anomaly windows routinely
        cover a third of the collected data.
        """
        values = series.values if isinstance(series, TimeSeries) else np.asarray(series, float)
        lo_i, hi_i = window
        lo_i = max(0, lo_i)
        hi_i = min(len(values), hi_i)
        if hi_i <= lo_i:
            return False
        baseline = values[:lo_i]
        target = values[lo_i:hi_i]
        if len(baseline) < 4:
            # No usable baseline: fall back to whole-series fences.
            return self.has_anomaly(values, window=(lo_i, hi_i))
        q1, q3 = np.percentile(baseline, [25, 75])
        iqr = q3 - q1
        if iqr < 1e-9:
            center = float(np.median(baseline))
            tol = max(1e-9, abs(center) * 1e-6)
            return bool((target > center + tol).any())
        return bool((target > q3 + self.k * iqr).any())


def detect_anomalous_features(
    metric_name: str,
    series: TimeSeries,
    spike_detector: SpikeDetector | None = None,
    level_shift_detector: LevelShiftDetector | None = None,
) -> list[AnomalousFeature]:
    """Run the Basic Perception detectors over one metric series.

    Returns the anomalous features found, with detection indices converted
    to timestamps on the series' time axis.
    """
    spike_detector = spike_detector or SpikeDetector()
    level_shift_detector = level_shift_detector or LevelShiftDetector()
    features: list[AnomalousFeature] = []
    detections: Sequence[Detection] = [
        *spike_detector.detect(series),
        *level_shift_detector.detect(series),
    ]
    for det in detections:
        features.append(
            AnomalousFeature(
                metric=metric_name,
                kind=det.kind,
                start=series.start + det.start_index * series.interval,
                end=series.start + det.end_index * series.interval,
                severity=det.severity,
            )
        )
    features.sort(key=lambda f: f.start)
    return features
