"""Payload validation and dead-letter quarantine.

A malformed record must never crash the poll loop: one collector bug or
one corrupted message would take the whole diagnosis pipeline down with
it.  Both the publishing side (collectors) and the consuming side
(detector, diagnosis engine) validate records against the schemas below
and route rejects to a per-source dead-letter topic
(``dead_letter.<source_topic>``), keeping the evidence and counting
``collector_quarantined_total`` instead of raising.

Dead-letter topics have no registered consumers, so the broker's
retention pruning leaves them untouched — they are archival, read ad
hoc by operators via :meth:`Broker.read`.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.collection.stream import Broker
from repro.telemetry import MetricsRegistry, get_logger

__all__ = [
    "DEAD_LETTER_PREFIX",
    "dead_letter_topic",
    "quarantine",
    "validate_metric_record",
    "validate_query_record",
]

_log = get_logger("collection")

#: Prefix of every dead-letter topic (the chaos injector exempts it).
DEAD_LETTER_PREFIX = "dead_letter"

_QUERY_ARRAY_KEYS = ("arrive_ms", "response_ms", "examined_rows")


def dead_letter_topic(source_topic: str) -> str:
    """The dead-letter topic that quarantines ``source_topic`` rejects."""
    return f"{DEAD_LETTER_PREFIX}.{source_topic}"


def _is_int(value: Any) -> bool:
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, bool
    )


def validate_query_record(record: Any) -> str | None:
    """Reject reason for a query-log batch record, or ``None`` if valid."""
    if not isinstance(record, Mapping):
        return "not_a_mapping"
    for key in ("second", "sql_id", *_QUERY_ARRAY_KEYS):
        if key not in record:
            return f"missing_key:{key}"
    if not _is_int(record["second"]) or int(record["second"]) < 0:
        return "bad_type:second"
    sql_id = record["sql_id"]
    if not isinstance(sql_id, str) or not sql_id:
        return "bad_type:sql_id"
    sizes = set()
    for key in _QUERY_ARRAY_KEYS:
        try:
            arr = np.asarray(record[key], dtype=np.float64)
        except (TypeError, ValueError):
            return f"bad_type:{key}"
        if arr.ndim != 1 or arr.size == 0:
            return f"bad_shape:{key}"
        if not np.isfinite(arr).all():
            return f"non_finite:{key}"
        sizes.add(arr.size)
    if len(sizes) != 1:
        return "length_mismatch"
    instance = record.get("instance")
    if instance is not None and not isinstance(instance, str):
        return "bad_type:instance"
    return None


def validate_metric_record(record: Any) -> str | None:
    """Reject reason for a performance-metric record, or ``None`` if valid."""
    if not isinstance(record, Mapping):
        return "not_a_mapping"
    for key in ("metric", "timestamp", "value"):
        if key not in record:
            return f"missing_key:{key}"
    metric = record["metric"]
    if not isinstance(metric, str) or not metric:
        return "bad_type:metric"
    timestamp = record["timestamp"]
    if not _is_number(timestamp) or not np.isfinite(timestamp) or timestamp < 0:
        return "bad_type:timestamp"
    value = record["value"]
    if not _is_number(value) or not np.isfinite(value):
        return "non_finite:value"
    instance = record.get("instance")
    if instance is not None and not isinstance(instance, str):
        return "bad_type:instance"
    return None


def quarantine(
    broker: Broker,
    source_topic: str,
    record: Any,
    reason: str,
    registry: MetricsRegistry | None = None,
) -> None:
    """Route a rejected record to the source topic's dead-letter topic.

    Never raises: if even the dead-letter publish fails, the reject is
    logged and dropped — quarantine must not become a new crash path.
    """
    registry = registry if registry is not None else broker.registry
    registry.counter(
        "collector_quarantined_total",
        help="Records rejected by payload validation, by source topic.",
        topic=source_topic,
        reason=reason,
    ).inc()
    try:
        broker.publish(
            dead_letter_topic(source_topic),
            key=reason,
            value={"source_topic": source_topic, "reason": reason, "record": record},
        )
    except Exception:  # pragma: no cover - defensive
        _log.warning(
            "dead-letter publish failed; record dropped",
            extra={"topic": source_topic, "reason": reason},
        )
