"""Retention-bounded raw-log store (LogStore stand-in).

Holds the per-query records PinSQL's root-cause analysis needs for the
anomaly window (the active-session estimator works on raw arrivals and
response times), and expires data older than the retention period —
the paper keeps three days by default.

Fleet support: a :class:`LogStore` built with an ``instance_id`` labels
its telemetry with the instance; :class:`PartitionedLogStore` manages
one such partition per instance behind a single retention policy and
shared accounting (total resident bytes, one expiry sweep).
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.dbsim.query import QueryLog, SecondBatch, TemplateQueries
from repro.telemetry import MetricsRegistry, get_registry

__all__ = ["LogStore", "PartitionedLogStore"]

#: Default retention, in seconds (the paper's three days).
DEFAULT_RETENTION_S = 3 * 24 * 3600


class _SecondAggregate:
    """Per-second roll-up of one template, appended batch-by-batch.

    Keeps (second, #execution, total response ms, total examined rows)
    tuples in columnar lists so window aggregation reads pre-summed
    scalars instead of re-touching every raw arrival — the scheduled
    health sweeps aggregate the same window every interval, and raw
    concatenation made each sweep O(retention) instead of O(window).
    """

    __slots__ = ("_sec", "_count", "_tres", "_rows", "_n")

    def __init__(self) -> None:
        self._n = 0
        self._sec = np.empty(16, dtype=np.int64)
        self._count = np.empty(16, dtype=np.float64)
        self._tres = np.empty(16, dtype=np.float64)
        self._rows = np.empty(16, dtype=np.float64)

    def _grow(self, extra: int) -> None:
        need = self._n + extra
        if need <= len(self._sec):
            return
        cap = max(need, 2 * len(self._sec))
        for name in self.__slots__[:4]:
            old = getattr(self, name)
            new = np.empty(cap, dtype=old.dtype)
            new[: self._n] = old[: self._n]
            setattr(self, name, new)

    def add_batch(self, batch: SecondBatch) -> None:
        seconds = batch.arrive_ms // 1000
        base = int(seconds[0])
        idx = seconds - base
        counts = np.bincount(idx)
        tres = np.bincount(idx, weights=batch.response_ms)
        rows = np.bincount(idx, weights=batch.examined_rows)
        nz = np.nonzero(counts)[0]
        self._grow(len(nz))
        dest = slice(self._n, self._n + len(nz))
        self._sec[dest] = base + nz
        self._count[dest] = counts[nz]
        self._tres[dest] = tres[nz]
        self._rows[dest] = rows[nz]
        self._n += len(nz)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = self._n
        return self._sec[:n], self._count[:n], self._tres[:n], self._rows[:n]


class LogStore:
    """Stores raw query records with time-based expiry."""

    def __init__(
        self,
        retention_s: int = DEFAULT_RETENTION_S,
        registry: MetricsRegistry | None = None,
        instance_id: str = "",
    ) -> None:
        if retention_s <= 0:
            raise ValueError("retention_s must be positive")
        self.retention_s = int(retention_s)
        self.instance_id = instance_id
        self._batches: dict[str, list[SecondBatch]] = {}
        #: Per-template batch time index: first/last arrival of each
        #: batch, parallel to ``_batches[sql_id]``.  Streamed batches
        #: arrive in time order, so window reads bisect to the touched
        #: slice instead of masking the whole retention horizon — the
        #: difference between O(window) and O(retention) per read, which
        #: the scheduled health sweeps hit every interval.
        self._starts: dict[str, list[int]] = {}
        self._ends: dict[str, list[int]] = {}
        #: Whether a template's batches are chronological and
        #: non-overlapping (the streaming invariant); out-of-order
        #: ingestion clears it and reads fall back to the full scan.
        self._chronological: dict[str, bool] = {}
        #: Per-template per-second roll-ups feeding window aggregation.
        self._aggregates: dict[str, _SecondAggregate] = {}
        registry = registry or get_registry()
        labels = {"instance": instance_id} if instance_id else {}
        self._m_batches = registry.counter(
            "logstore_batches_ingested_total",
            help="Second-batches absorbed.",
            **labels,
        )
        self._m_queries = registry.counter(
            "logstore_queries_ingested_total",
            help="Raw query records absorbed.",
            **labels,
        )
        self._m_evicted = registry.counter(
            "logstore_evicted_queries_total",
            help="Query records dropped by retention expiry.",
            **labels,
        )
        self._g_bytes = registry.gauge(
            "logstore_resident_bytes",
            help="Approximate bytes of stored arrays.",
            **labels,
        )
        self._g_templates = registry.gauge(
            "logstore_templates",
            help="Distinct SQL templates resident.",
            **labels,
        )
        #: Silent de-vectorization alarm: window reads that could not
        #: use the chronological batch index (out-of-order ingestion)
        #: and fell back to scanning the whole retention horizon.
        self._m_fullscans = registry.counter(
            "logstore_fullscan_reads_total",
            help="Window reads that fell back to a full scan because a "
            "template's batches were ingested out of order.",
            **labels,
        )
        self._resident_bytes = 0

    def _account(self, batch: SecondBatch, sign: int) -> None:
        nbytes = (
            batch.arrive_ms.nbytes
            + batch.response_ms.nbytes
            + batch.examined_rows.nbytes
        )
        self._resident_bytes += sign * nbytes
        self._g_bytes.set(self._resident_bytes)
        self._g_templates.set(len(self._batches))

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _index_batch(self, sql_id: str, batch: SecondBatch) -> None:
        start, end = int(batch.arrive_ms[0]), int(batch.arrive_ms[-1])
        ends = self._ends.setdefault(sql_id, [])
        if ends and start < ends[-1]:
            self._chronological[sql_id] = False
        self._starts.setdefault(sql_id, []).append(start)
        ends.append(end)
        self._aggregates.setdefault(sql_id, _SecondAggregate()).add_batch(batch)

    def _reindex(self, sql_id: str) -> None:
        """Rebuild a template's batch index from its current batches."""
        self._drop_index(sql_id)
        for batch in self._batches.get(sql_id, []):
            self._index_batch(sql_id, batch)

    def _drop_index(self, sql_id: str) -> None:
        self._starts.pop(sql_id, None)
        self._ends.pop(sql_id, None)
        self._chronological.pop(sql_id, None)
        self._aggregates.pop(sql_id, None)

    def ingest_query_log(self, query_log: QueryLog) -> int:
        """Absorb a whole simulated query log; returns queries stored."""
        stored = 0
        for tq in query_log.iter_templates():
            if len(tq) == 0:
                continue
            batch = SecondBatch(
                sql_id=tq.sql_id,
                arrive_ms=tq.arrive_ms,
                response_ms=tq.response_ms,
                examined_rows=tq.examined_rows,
            )
            self._batches.setdefault(tq.sql_id, []).append(batch)
            self._index_batch(tq.sql_id, batch)
            self._m_batches.inc()
            self._m_queries.inc(len(batch))
            self._account(batch, +1)
            stored += len(batch)
        return stored

    def ingest_batch(self, batch: SecondBatch) -> None:
        if len(batch) == 0:
            return
        self._batches.setdefault(batch.sql_id, []).append(batch)
        self._index_batch(batch.sql_id, batch)
        self._m_batches.inc()
        self._m_queries.inc(len(batch))
        self._account(batch, +1)

    def ingest_block(self, block) -> int:
        """Absorb one columnar :class:`~repro.collection.blocks.QueryLogBlock`.

        The block is split into per-template, arrival-ordered batches in
        one vectorized pass (a single argsort over the block) and each
        batch is ingested exactly like the per-record path — the
        aggregates come out bit-identical.  Returns queries stored.
        """
        stored = 0
        for batch in block.iter_template_batches():
            self.ingest_batch(batch)
            stored += len(batch)
        return stored

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    @property
    def sql_ids(self) -> list[str]:
        return list(self._batches)

    @property
    def resident_bytes(self) -> int:
        """Approximate bytes of stored arrays."""
        return self._resident_bytes

    def total_queries(self) -> int:
        return sum(len(b) for batches in self._batches.values() for b in batches)

    def queries_in_window(self, sql_id: str, t0: int, t1: int) -> TemplateQueries:
        """Queries of a template arriving within [t0, t1) (seconds)."""
        batches = self._batches.get(sql_id, [])
        lo_ms, hi_ms = t0 * 1000, t1 * 1000
        indexed = self._chronological.get(sql_id, True)
        if indexed and batches:
            starts, ends = self._starts[sql_id], self._ends[sql_id]
            # Only batches overlapping the window; interior batches (all
            # arrivals inside it) skip the mask entirely.
            span = range(bisect_left(ends, lo_ms), bisect_left(starts, hi_ms))
        else:
            if batches:
                self._m_fullscans.inc()
            span = range(len(batches))
        arrives, resps, rows = [], [], []
        for i in span:
            batch = batches[i]
            if indexed and self._starts[sql_id][i] >= lo_ms and self._ends[sql_id][i] < hi_ms:
                arrives.append(batch.arrive_ms)
                resps.append(batch.response_ms)
                rows.append(batch.examined_rows)
                continue
            mask = (batch.arrive_ms >= lo_ms) & (batch.arrive_ms < hi_ms)
            if mask.any():
                arrives.append(batch.arrive_ms[mask])
                resps.append(batch.response_ms[mask])
                rows.append(batch.examined_rows[mask])
        if not arrives:
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0, dtype=np.float64)
            return TemplateQueries(sql_id, empty_i, empty_f, empty_f.copy())
        arrive = np.concatenate(arrives)
        resp = np.concatenate(resps)
        examined = np.concatenate(rows)
        order = np.argsort(arrive, kind="stable")
        return TemplateQueries(sql_id, arrive[order], resp[order], examined[order])

    def second_aggregates(
        self, sql_id: str, t0: int, t1: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-second (#execution, total_tres, total_examined_rows) over [t0, t1).

        Reads the pre-summed per-second roll-ups instead of the raw
        arrivals, so a window aggregation touches one scalar per active
        second rather than every stored query — the path the scheduled
        health sweeps and the case-assembly aggregation take.
        """
        n = t1 - t0
        if n <= 0:
            raise ValueError("t1 must exceed t0")
        agg = self._aggregates.get(sql_id)
        if agg is None:
            zeros = np.zeros(n, dtype=np.float64)
            return zeros, zeros.copy(), zeros.copy()
        sec, count, tres, rows = agg.arrays()
        if self._chronological.get(sql_id, True):
            lo = int(np.searchsorted(sec, t0, side="left"))
            hi = int(np.searchsorted(sec, t1, side="left"))
            sel = slice(lo, hi)
        else:
            self._m_fullscans.inc()
            sel = (sec >= t0) & (sec < t1)
        idx = sec[sel] - t0
        out_count = np.bincount(idx, weights=count[sel], minlength=n)
        out_tres = np.bincount(idx, weights=tres[sel], minlength=n)
        out_rows = np.bincount(idx, weights=rows[sel], minlength=n)
        return out_count, out_tres, out_rows

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def expire(self, now_s: int) -> int:
        """Drop records older than the retention period; returns dropped count."""
        cutoff_ms = (now_s - self.retention_s) * 1000
        dropped = 0
        for sql_id in list(self._batches):
            kept: list[SecondBatch] = []
            changed = False
            for batch in self._batches[sql_id]:
                mask = batch.arrive_ms >= cutoff_ms
                n_keep = int(mask.sum())
                dropped += len(batch) - n_keep
                if n_keep == len(batch):
                    kept.append(batch)
                    continue
                changed = True
                self._account(batch, -1)
                if n_keep > 0:
                    trimmed = SecondBatch(
                        sql_id=sql_id,
                        arrive_ms=batch.arrive_ms[mask],
                        response_ms=batch.response_ms[mask],
                        examined_rows=batch.examined_rows[mask],
                    )
                    kept.append(trimmed)
                    self._account(trimmed, +1)
            if kept:
                self._batches[sql_id] = kept
                if changed:
                    self._reindex(sql_id)
            else:
                del self._batches[sql_id]
                self._drop_index(sql_id)
        if dropped:
            self._m_evicted.inc(dropped)
        self._g_templates.set(len(self._batches))
        return dropped


class PartitionedLogStore:
    """Per-instance :class:`LogStore` partitions under one retention policy.

    The fleet service stores every instance's raw logs here; each
    partition keeps its own per-template batches (and instance-labelled
    telemetry) while retention expiry and resident-bytes accounting run
    across the whole fleet in one sweep — the shared LogStore cluster of
    the production deployment.
    """

    def __init__(
        self,
        retention_s: int = DEFAULT_RETENTION_S,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if retention_s <= 0:
            raise ValueError("retention_s must be positive")
        self.retention_s = int(retention_s)
        self._registry = registry or get_registry()
        self._partitions: dict[str, LogStore] = {}
        self._g_total_bytes = self._registry.gauge(
            "logstore_fleet_resident_bytes",
            help="Resident bytes summed over every instance partition.",
        )
        self._g_partitions = self._registry.gauge(
            "logstore_fleet_partitions",
            help="Instance partitions currently resident.",
        )

    @property
    def instance_ids(self) -> list[str]:
        return list(self._partitions)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._partitions

    def partition(self, instance_id: str) -> LogStore:
        """The instance's partition, created on first use."""
        store = self._partitions.get(instance_id)
        if store is None:
            store = LogStore(
                retention_s=self.retention_s,
                registry=self._registry,
                instance_id=instance_id,
            )
            self._partitions[instance_id] = store
            self._g_partitions.set(len(self._partitions))
        return store

    @property
    def resident_bytes(self) -> int:
        """Bytes resident across every partition."""
        return sum(p.resident_bytes for p in self._partitions.values())

    def total_queries(self) -> int:
        return sum(p.total_queries() for p in self._partitions.values())

    def expire(self, now_s: int) -> int:
        """One retention sweep over every partition; returns dropped count."""
        dropped = 0
        for store in self._partitions.values():
            dropped += store.expire(now_s)
        self._g_total_bytes.set(self.resident_bytes)
        return dropped
