"""Data Collection & Pre-processing (paper Section IV-A).

In production PinSQL ships query logs through collectors → Kafka →
Flink → LogStore.  This package provides in-process functional
equivalents: a polling message broker, instance-side collectors, a
windowed stream aggregator that rolls raw query records up into
per-template metric series (1 s and 1 min granularities), and a
retention-bounded log store.
"""

from repro.collection.stream import (
    Broker,
    Consumer,
    Message,
    instance_topic,
    split_topic,
)
from repro.collection.collector import (
    QueryLogCollector,
    MetricsCollector,
    QUERY_TOPIC,
    METRIC_TOPIC,
)
from repro.collection.aggregator import (
    TemplateMetricStore,
    StreamAggregator,
    aggregate_query_log,
    aggregate_logstore,
    TEMPLATE_METRICS,
)
from repro.collection.logstore import LogStore, PartitionedLogStore
from repro.collection.blocks import (
    BLOCK_KEY,
    BlockDecodeError,
    MetricBlock,
    QueryLogBlock,
    decode_block,
    encode_block,
    metric_block_from_metrics,
    metric_block_from_records,
    query_block_from_batches,
    query_block_from_log,
    split_query_block,
    validate_metric_block,
    validate_query_block,
)
from repro.collection.quarantine import (
    DEAD_LETTER_PREFIX,
    dead_letter_topic,
    quarantine,
    validate_metric_record,
    validate_query_record,
)

__all__ = [
    "Broker",
    "Consumer",
    "Message",
    "DEAD_LETTER_PREFIX",
    "dead_letter_topic",
    "quarantine",
    "validate_metric_record",
    "validate_query_record",
    "instance_topic",
    "split_topic",
    "QueryLogCollector",
    "MetricsCollector",
    "QUERY_TOPIC",
    "METRIC_TOPIC",
    "TemplateMetricStore",
    "StreamAggregator",
    "aggregate_query_log",
    "aggregate_logstore",
    "TEMPLATE_METRICS",
    "LogStore",
    "PartitionedLogStore",
    "BLOCK_KEY",
    "BlockDecodeError",
    "MetricBlock",
    "QueryLogBlock",
    "decode_block",
    "encode_block",
    "metric_block_from_metrics",
    "metric_block_from_records",
    "query_block_from_batches",
    "query_block_from_log",
    "split_query_block",
    "validate_metric_block",
    "validate_query_block",
]
