"""Columnar block payloads: the batch unit of the dataplane.

PinSQL is fleet-scale: the collection pipeline must move millions of
query-log records per second, and per-record Python objects (one broker
message per (second, template) pair, one dict per metric sample) spend
more time on interpreter overhead and pickling than on the actual
aggregation work.  This module defines the *block* — one broker
``Message`` carries one block — as a numpy structured array plus a
small string dictionary:

- :class:`QueryLogBlock`: rows of ``(template, arrive_ms, response_ms,
  examined_rows)`` with ``sql_ids`` mapping the int32 ``template``
  column back to template ids, stamped with the source ``instance``;
- :class:`MetricBlock`: rows of ``(metric, timestamp, value)`` with a
  ``metrics`` name dictionary.

Blocks are frozen; their arrays must be treated as immutable (decoded
blocks are backed by read-only buffers).

A binary codec (:func:`encode_block` / :func:`decode_block`) frames a
block as ``magic + header-length + JSON header + raw column bytes`` for
the process boundary: persistent shard workers receive encoded blocks
and decode them with a single zero-copy ``np.frombuffer``.  Validation
(:func:`validate_query_block` / :func:`validate_metric_block`) mirrors
the per-record validators so malformed blocks — chaos-corrupted or
otherwise — are quarantined to the dead-letter topic instead of
crashing a drain loop.

Header v2 carries the distributed-tracing envelope: the publishing
span's :class:`~repro.telemetry.tracing.TraceContext` (``trace`` key)
and the publish wall-clock time (``created`` key, unix seconds) used
for pipeline-lag watermarks.  Both are optional; v1 frames — and v2
frames without them — decode to ``trace=None`` / ``created_unix=0.0``.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.dbsim.monitor import InstanceMetrics
    from repro.dbsim.query import QueryLog

from repro.dbsim.query import SecondBatch
from repro.telemetry.tracing import TraceContext

__all__ = [
    "BLOCK_KEY",
    "QUERY_BLOCK_DTYPE",
    "METRIC_BLOCK_DTYPE",
    "BlockDecodeError",
    "QueryLogBlock",
    "MetricBlock",
    "query_block_from_log",
    "query_block_from_batches",
    "metric_block_from_metrics",
    "metric_block_from_records",
    "split_query_block",
    "stamp_block",
    "encode_block",
    "decode_block",
    "validate_query_block",
    "validate_metric_block",
]

#: Message key used for block payloads on broker topics.
BLOCK_KEY = "__block__"

#: Row layout of a query-log block: ``template`` indexes ``sql_ids``.
QUERY_BLOCK_DTYPE = np.dtype(
    [
        ("template", np.int32),
        ("arrive_ms", np.int64),
        ("response_ms", np.float64),
        ("examined_rows", np.float64),
    ]
)

#: Row layout of a metric block: ``metric`` indexes ``metrics``.
METRIC_BLOCK_DTYPE = np.dtype(
    [
        ("metric", np.int32),
        ("timestamp", np.int64),
        ("value", np.float64),
    ]
)

_MAGIC_QUERY = b"PQB1"
_MAGIC_METRIC = b"PMB1"
_HEADER_STRUCT = struct.Struct("<4sI")


class BlockDecodeError(ValueError):
    """A byte frame could not be decoded into a block."""


@dataclass(frozen=True)
class QueryLogBlock:
    """One columnar batch of query-log records (possibly many templates).

    ``data`` is a :data:`QUERY_BLOCK_DTYPE` structured array; the int32
    ``template`` column indexes ``sql_ids``.  ``statements`` optionally
    carries one raw exemplar statement per template (empty string =
    unknown), so catalogs can be taught across the process boundary.
    """

    sql_ids: tuple[str, ...]
    data: np.ndarray
    instance: str = ""
    statements: tuple[str, ...] = ()
    #: Publishing span's trace context (v2 header), None on v1 frames.
    trace: TraceContext | None = None
    #: Publish wall-clock time (unix seconds; 0.0 = unstamped) used for
    #: pipeline-lag watermarks downstream.
    created_unix: float = 0.0

    def __len__(self) -> int:
        return len(self.data)

    @property
    def n_templates(self) -> int:
        return len(self.sql_ids)

    @property
    def nbytes(self) -> int:
        """Approximate payload size (the structured rows)."""
        return int(self.data.nbytes)

    def iter_template_batches(self) -> Iterator[SecondBatch]:
        """Per-template :class:`SecondBatch` slices, arrival-ordered.

        One stable argsort over ``(template, arrive_ms)`` splits the
        whole block; each yielded batch is time-ordered regardless of
        the block's row order.
        """
        data = self.data
        if len(data) == 0:
            return
        template = data["template"]
        order = np.lexsort((data["arrive_ms"], template))
        template = template[order]
        arrive = data["arrive_ms"][order]
        resp = data["response_ms"][order]
        rows = data["examined_rows"][order]
        boundaries = np.flatnonzero(np.diff(template)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(template)]])
        for lo, hi in zip(starts, ends):
            yield SecondBatch(
                sql_id=self.sql_ids[int(template[lo])],
                arrive_ms=arrive[lo:hi],
                response_ms=resp[lo:hi],
                examined_rows=rows[lo:hi],
            )


@dataclass(frozen=True)
class MetricBlock:
    """One columnar batch of performance-metric samples."""

    metrics: tuple[str, ...]
    data: np.ndarray
    instance: str = ""
    trace: TraceContext | None = None
    created_unix: float = 0.0

    def __len__(self) -> int:
        return len(self.data)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def iter_metric_series(self) -> Iterator[tuple[str, np.ndarray, np.ndarray]]:
        """Per-metric ``(name, timestamps, values)`` column slices."""
        data = self.data
        if len(data) == 0:
            return
        metric = data["metric"]
        order = np.lexsort((data["timestamp"], metric))
        metric = metric[order]
        ts = data["timestamp"][order]
        values = data["value"][order]
        boundaries = np.flatnonzero(np.diff(metric)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(metric)]])
        for lo, hi in zip(starts, ends):
            yield self.metrics[int(metric[lo])], ts[lo:hi], values[lo:hi]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def query_block_from_log(
    query_log: "QueryLog",
    instance: str = "",
    statements: Mapping[str, str] | None = None,
) -> QueryLogBlock:
    """Columnarise a whole simulated :class:`QueryLog` into one block.

    Rows come out template-major, arrival-ordered within each template
    — the same per-template order :meth:`QueryLog.queries_of` exposes,
    so block ingestion reproduces the per-record path bit-for-bit.
    """
    sql_ids: list[str] = []
    chunks: list[np.ndarray] = []
    for tq in query_log.iter_templates():
        if len(tq) == 0:
            continue
        rows = np.empty(len(tq), dtype=QUERY_BLOCK_DTYPE)
        rows["template"] = len(sql_ids)
        rows["arrive_ms"] = tq.arrive_ms
        rows["response_ms"] = tq.response_ms
        rows["examined_rows"] = tq.examined_rows
        sql_ids.append(tq.sql_id)
        chunks.append(rows)
    data = (
        np.concatenate(chunks)
        if chunks
        else np.empty(0, dtype=QUERY_BLOCK_DTYPE)
    )
    stmts: tuple[str, ...] = ()
    if statements:
        stmts = tuple(statements.get(sql_id, "") for sql_id in sql_ids)
    return QueryLogBlock(
        sql_ids=tuple(sql_ids), data=data, instance=instance, statements=stmts
    )


def query_block_from_batches(
    batches: Iterator[SecondBatch] | list[SecondBatch], instance: str = ""
) -> QueryLogBlock:
    """Columnarise loose :class:`SecondBatch` records into one block."""
    index: dict[str, int] = {}
    chunks: list[np.ndarray] = []
    for batch in batches:
        if len(batch) == 0:
            continue
        template = index.setdefault(batch.sql_id, len(index))
        rows = np.empty(len(batch), dtype=QUERY_BLOCK_DTYPE)
        rows["template"] = template
        rows["arrive_ms"] = batch.arrive_ms
        rows["response_ms"] = batch.response_ms
        rows["examined_rows"] = batch.examined_rows
        chunks.append(rows)
    data = (
        np.concatenate(chunks)
        if chunks
        else np.empty(0, dtype=QUERY_BLOCK_DTYPE)
    )
    return QueryLogBlock(sql_ids=tuple(index), data=data, instance=instance)


def metric_block_from_metrics(
    metrics: "InstanceMetrics", instance: str = ""
) -> MetricBlock:
    """Columnarise an :class:`InstanceMetrics` bundle into one block."""
    names: list[str] = []
    chunks: list[np.ndarray] = []
    for name, series in metrics.series.items():
        n = len(series.values)
        if n == 0:
            continue
        rows = np.empty(n, dtype=METRIC_BLOCK_DTYPE)
        rows["metric"] = len(names)
        rows["timestamp"] = np.asarray(series.timestamps, dtype=np.int64)
        rows["value"] = np.asarray(series.values, dtype=np.float64)
        names.append(name)
        chunks.append(rows)
    data = (
        np.concatenate(chunks)
        if chunks
        else np.empty(0, dtype=METRIC_BLOCK_DTYPE)
    )
    return MetricBlock(metrics=tuple(names), data=data, instance=instance)


def metric_block_from_records(
    records: list[Mapping], instance: str = ""
) -> MetricBlock:
    """Columnarise per-record metric dicts (the legacy wire format)."""
    names: dict[str, int] = {}
    data = np.empty(len(records), dtype=METRIC_BLOCK_DTYPE)
    for i, record in enumerate(records):
        data["metric"][i] = names.setdefault(str(record["metric"]), len(names))
        data["timestamp"][i] = int(record["timestamp"])
        data["value"][i] = float(record["value"])
    return MetricBlock(metrics=tuple(names), data=data, instance=instance)


def split_query_block(
    block: QueryLogBlock, max_rows: int
) -> list[QueryLogBlock]:
    """Split a block into row-bounded blocks sharing the dictionary.

    Bounded message sizes keep broker memory and IPC frames sane; the
    shared ``sql_ids`` dictionary means no re-indexing.
    """
    if max_rows <= 0:
        raise ValueError("max_rows must be positive")
    if len(block) <= max_rows:
        return [block]
    return [
        replace(block, data=block.data[lo : lo + max_rows])
        for lo in range(0, len(block), max_rows)
    ]


def stamp_block(
    block: QueryLogBlock | MetricBlock,
    trace: TraceContext | None,
    created_unix: float,
) -> QueryLogBlock | MetricBlock:
    """Stamp the tracing envelope onto a block at publish time.

    Existing stamps win — a block republished by a shard worker keeps
    the parent's trace context and original publish time, which is what
    makes end-to-end pipeline-lag watermarks honest.
    """
    updates: dict[str, object] = {}
    if trace is not None and block.trace is None:
        updates["trace"] = trace
    if created_unix and not block.created_unix:
        updates["created_unix"] = float(created_unix)
    return replace(block, **updates) if updates else block


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
def encode_block(block: QueryLogBlock | MetricBlock) -> bytes:
    """Frame a block as ``magic + header length + JSON header + rows``.

    Emits a v2 header; the tracing envelope keys are included only when
    the block is stamped, so unstamped blocks stay byte-identical
    across publishes.
    """
    if isinstance(block, QueryLogBlock):
        magic = _MAGIC_QUERY
        header = {
            "v": 2,
            "rows": len(block.data),
            "names": list(block.sql_ids),
            "instance": block.instance,
            "statements": list(block.statements),
        }
        expected = QUERY_BLOCK_DTYPE
    elif isinstance(block, MetricBlock):
        magic = _MAGIC_METRIC
        header = {
            "v": 2,
            "rows": len(block.data),
            "names": list(block.metrics),
            "instance": block.instance,
        }
        expected = METRIC_BLOCK_DTYPE
    else:
        raise TypeError(f"not a block: {type(block).__name__}")
    if block.trace is not None:
        header["trace"] = block.trace.to_dict()
    if block.created_unix:
        header["created"] = float(block.created_unix)
    if block.data.dtype != expected:
        raise ValueError(f"block dtype mismatch: {block.data.dtype}")
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    payload = np.ascontiguousarray(block.data).tobytes()
    return _HEADER_STRUCT.pack(magic, len(header_bytes)) + header_bytes + payload


def decode_block(raw: bytes) -> QueryLogBlock | MetricBlock:
    """Decode a frame produced by :func:`encode_block`.

    The row array is a zero-copy read-only view over ``raw``; blocks
    are immutable by contract so no defensive copy is made.
    """
    if len(raw) < _HEADER_STRUCT.size:
        raise BlockDecodeError("frame shorter than header")
    magic, header_len = _HEADER_STRUCT.unpack_from(raw)
    if magic not in (_MAGIC_QUERY, _MAGIC_METRIC):
        raise BlockDecodeError(f"bad magic: {magic!r}")
    body_start = _HEADER_STRUCT.size + header_len
    if len(raw) < body_start:
        raise BlockDecodeError("truncated header")
    try:
        header = json.loads(raw[_HEADER_STRUCT.size : body_start])
    except ValueError as exc:
        raise BlockDecodeError(f"bad header json: {exc}") from exc
    if not isinstance(header, dict) or header.get("v") not in (1, 2):
        raise BlockDecodeError("unsupported header version")
    try:
        rows = int(header["rows"])
        names = tuple(str(n) for n in header["names"])
        instance = str(header.get("instance", ""))
    except (KeyError, TypeError, ValueError) as exc:
        raise BlockDecodeError(f"malformed header: {exc}") from exc
    # v2 tracing envelope; junk degrades to "unstamped", never raises —
    # a corrupted trace dict must not dead-letter an otherwise valid
    # block.
    trace: TraceContext | None = None
    trace_payload = header.get("trace")
    if isinstance(trace_payload, dict):
        trace = TraceContext.from_dict(trace_payload)
    created = header.get("created", 0.0)
    created_unix = float(created) if isinstance(created, (int, float)) else 0.0
    dtype = QUERY_BLOCK_DTYPE if magic == _MAGIC_QUERY else METRIC_BLOCK_DTYPE
    if rows < 0 or len(raw) - body_start != rows * dtype.itemsize:
        raise BlockDecodeError(
            f"payload size mismatch: {len(raw) - body_start} bytes for {rows} rows"
        )
    data = np.frombuffer(raw, dtype=dtype, count=rows, offset=body_start)
    if magic == _MAGIC_QUERY:
        statements = tuple(str(s) for s in header.get("statements", ()))
        if statements and len(statements) != len(names):
            raise BlockDecodeError("statements do not match template dictionary")
        return QueryLogBlock(
            sql_ids=names, data=data, instance=instance, statements=statements,
            trace=trace, created_unix=created_unix,
        )
    return MetricBlock(
        metrics=names, data=data, instance=instance,
        trace=trace, created_unix=created_unix,
    )


# ----------------------------------------------------------------------
# Validation (mirrors repro.collection.quarantine record validators)
# ----------------------------------------------------------------------
def validate_query_block(block: object) -> str | None:
    """Reject reason for a query-log block, or ``None`` if valid."""
    if not isinstance(block, QueryLogBlock):
        return "not_a_block"
    data = block.data
    if not isinstance(data, np.ndarray) or data.dtype != QUERY_BLOCK_DTYPE:
        return "bad_dtype"
    if data.ndim != 1 or data.size == 0:
        return "bad_shape:data"
    if not all(isinstance(s, str) and s for s in block.sql_ids):
        return "bad_type:sql_ids"
    if block.statements and len(block.statements) != len(block.sql_ids):
        return "length_mismatch:statements"
    template = data["template"]
    if len(block.sql_ids) == 0:
        return "missing_dictionary"
    if template.min() < 0 or template.max() >= len(block.sql_ids):
        return "bad_index:template"
    if data["arrive_ms"].min() < 0:
        return "bad_type:arrive_ms"
    if not np.isfinite(data["response_ms"]).all():
        return "non_finite:response_ms"
    if not np.isfinite(data["examined_rows"]).all():
        return "non_finite:examined_rows"
    if not isinstance(block.instance, str):
        return "bad_type:instance"
    return _validate_envelope(block)


def validate_metric_block(block: object) -> str | None:
    """Reject reason for a metric block, or ``None`` if valid."""
    if not isinstance(block, MetricBlock):
        return "not_a_block"
    data = block.data
    if not isinstance(data, np.ndarray) or data.dtype != METRIC_BLOCK_DTYPE:
        return "bad_dtype"
    if data.ndim != 1 or data.size == 0:
        return "bad_shape:data"
    if not all(isinstance(s, str) and s for s in block.metrics):
        return "bad_type:metrics"
    metric = data["metric"]
    if len(block.metrics) == 0:
        return "missing_dictionary"
    if metric.min() < 0 or metric.max() >= len(block.metrics):
        return "bad_index:metric"
    if data["timestamp"].min() < 0:
        return "bad_type:timestamp"
    if not np.isfinite(data["value"]).all():
        return "non_finite:value"
    if not isinstance(block.instance, str):
        return "bad_type:instance"
    return _validate_envelope(block)


def _validate_envelope(block: QueryLogBlock | MetricBlock) -> str | None:
    if block.trace is not None and not isinstance(block.trace, TraceContext):
        return "bad_type:trace"
    if not isinstance(block.created_unix, (int, float)) or not np.isfinite(
        block.created_unix
    ) or block.created_unix < 0:
        return "bad_type:created_unix"
    return None
