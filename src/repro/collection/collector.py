"""Instance-side collectors.

``QueryLogCollector`` drains a simulated instance's query log into the
broker — the asynchronous, outside-the-instance shipping that keeps
PinSQL's overhead negligible compared with in-database monitoring
(paper Section IV-C discussion).  ``MetricsCollector`` ships the
performance-metric points.

Two wire formats exist:

- the legacy per-record path (:meth:`QueryLogCollector.collect` /
  :meth:`MetricsCollector.collect`): one message per (second, template)
  batch or per metric sample — kept for replay compatibility and
  fine-grained fault-injection experiments;
- the columnar path (:meth:`QueryLogCollector.collect_blocks` /
  :meth:`MetricsCollector.collect_blocks`): one message carries one
  :class:`~repro.collection.blocks.QueryLogBlock` /
  :class:`~repro.collection.blocks.MetricBlock` of many thousands of
  rows — the high-throughput dataplane every fleet-scale path uses.

Collectors are *instance-scoped*: constructed with an ``instance_id``
they publish to that instance's topic partition
(``query_logs.<instance_id>`` etc., see
:func:`~repro.collection.stream.instance_topic`) and stamp every record
with the id, so a fleet of collectors multiplexes one broker without
record-level ambiguity.  The default empty id preserves the original
single-instance topics.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.collection.blocks import (
    metric_block_from_metrics,
    query_block_from_log,
    split_query_block,
)
from repro.collection.quarantine import (
    quarantine,
    validate_metric_record,
    validate_query_record,
)
from repro.collection.stream import Broker, instance_topic
from repro.dbsim.monitor import InstanceMetrics
from repro.dbsim.query import QueryLog

__all__ = [
    "QueryLogCollector",
    "MetricsCollector",
    "QUERY_TOPIC",
    "METRIC_TOPIC",
    "DEFAULT_BLOCK_ROWS",
]

QUERY_TOPIC = "query_logs"
METRIC_TOPIC = "performance_metrics"

#: Default row bound per published block message.
DEFAULT_BLOCK_ROWS = 262_144


class QueryLogCollector:
    """Publishes query-log batches to the broker, ordered by second."""

    def __init__(
        self,
        broker: Broker,
        topic: str | None = None,
        instance_id: str = "",
    ) -> None:
        self.broker = broker
        self.instance_id = instance_id
        self.topic = topic if topic is not None else instance_topic(QUERY_TOPIC, instance_id)
        broker.create_topic(self.topic)

    def collect(self, query_log: QueryLog) -> int:
        """Ship every logged query; returns the number of batches sent.

        Batches are emitted in (second, template) order, matching how the
        per-second collectors flush in production.
        """
        batches: list[tuple[int, str, dict]] = []
        for tq in query_log.iter_templates():
            if len(tq) == 0:
                continue
            seconds = (tq.arrive_ms // 1000).astype(np.int64)
            boundaries = np.flatnonzero(np.diff(seconds)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [len(seconds)]])
            for lo, hi in zip(starts, ends):
                record = {
                    "second": int(seconds[lo]),
                    "sql_id": tq.sql_id,
                    "arrive_ms": tq.arrive_ms[lo:hi],
                    "response_ms": tq.response_ms[lo:hi],
                    "examined_rows": tq.examined_rows[lo:hi],
                }
                if self.instance_id:
                    record["instance"] = self.instance_id
                batches.append((int(seconds[lo]), tq.sql_id, record))
        batches.sort(key=lambda item: (item[0], item[1]))
        sent = 0
        for _, sql_id, value in batches:
            reason = validate_query_record(value)
            if reason is not None:
                quarantine(self.broker, self.topic, value, reason)
                continue
            self.broker.publish(self.topic, key=sql_id, value=value)
            sent += 1
        return sent

    def collect_blocks(
        self,
        query_log: QueryLog,
        statements: Mapping[str, str] | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
    ) -> int:
        """Ship the whole log as columnar blocks; returns blocks sent.

        One message carries one :class:`QueryLogBlock` of up to
        ``block_rows`` rows — the batch dataplane.  ``statements``
        optionally maps sql_id → raw exemplar so downstream catalogs
        learn templates across the wire.
        """
        block = query_block_from_log(
            query_log, instance=self.instance_id, statements=statements
        )
        if len(block) == 0:
            return 0
        sent = 0
        for piece in split_query_block(block, block_rows):
            if self.broker.publish_block(self.topic, piece) is not None:
                sent += 1
        return sent


class MetricsCollector:
    """Publishes per-second performance-metric points to the broker."""

    def __init__(
        self,
        broker: Broker,
        topic: str | None = None,
        instance_id: str = "",
    ) -> None:
        self.broker = broker
        self.instance_id = instance_id
        self.topic = topic if topic is not None else instance_topic(METRIC_TOPIC, instance_id)
        broker.create_topic(self.topic)

    def collect(self, metrics: InstanceMetrics) -> int:
        """Ship every metric sample; returns the number of points sent."""
        sent = 0
        for name, series in metrics.series.items():
            for ts, value in zip(series.timestamps, series.values):
                record = {"metric": name, "timestamp": int(ts), "value": float(value)}
                if self.instance_id:
                    record["instance"] = self.instance_id
                reason = validate_metric_record(record)
                if reason is not None:
                    quarantine(self.broker, self.topic, record, reason)
                    continue
                self.broker.publish(self.topic, key=name, value=record)
                sent += 1
        return sent

    def collect_blocks(self, metrics: InstanceMetrics) -> int:
        """Ship every metric series as one columnar block message."""
        block = metric_block_from_metrics(metrics, instance=self.instance_id)
        if len(block) == 0:
            return 0
        return 1 if self.broker.publish_block(self.topic, block) is not None else 0
