"""Instance-side collectors.

``QueryLogCollector`` drains a simulated instance's query log into the
broker as per-(template, second) record batches — the asynchronous,
outside-the-instance shipping that keeps PinSQL's overhead negligible
compared with in-database monitoring (paper Section IV-C discussion).
``MetricsCollector`` ships the per-second performance-metric points.

Collectors are *instance-scoped*: constructed with an ``instance_id``
they publish to that instance's topic partition
(``query_logs.<instance_id>`` etc., see
:func:`~repro.collection.stream.instance_topic`) and stamp every record
with the id, so a fleet of collectors multiplexes one broker without
record-level ambiguity.  The default empty id preserves the original
single-instance topics.
"""

from __future__ import annotations

import numpy as np

from repro.collection.quarantine import (
    quarantine,
    validate_metric_record,
    validate_query_record,
)
from repro.collection.stream import Broker, instance_topic
from repro.dbsim.monitor import InstanceMetrics
from repro.dbsim.query import QueryLog

__all__ = [
    "QueryLogCollector",
    "MetricsCollector",
    "QUERY_TOPIC",
    "METRIC_TOPIC",
]

QUERY_TOPIC = "query_logs"
METRIC_TOPIC = "performance_metrics"


class QueryLogCollector:
    """Publishes query-log batches to the broker, ordered by second."""

    def __init__(
        self,
        broker: Broker,
        topic: str | None = None,
        instance_id: str = "",
    ) -> None:
        self.broker = broker
        self.instance_id = instance_id
        self.topic = topic if topic is not None else instance_topic(QUERY_TOPIC, instance_id)
        broker.create_topic(self.topic)

    def collect(self, query_log: QueryLog) -> int:
        """Ship every logged query; returns the number of batches sent.

        Batches are emitted in (second, template) order, matching how the
        per-second collectors flush in production.
        """
        batches: list[tuple[int, str, dict]] = []
        for tq in query_log.iter_templates():
            if len(tq) == 0:
                continue
            seconds = (tq.arrive_ms // 1000).astype(np.int64)
            boundaries = np.flatnonzero(np.diff(seconds)) + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [len(seconds)]])
            for lo, hi in zip(starts, ends):
                record = {
                    "second": int(seconds[lo]),
                    "sql_id": tq.sql_id,
                    "arrive_ms": tq.arrive_ms[lo:hi],
                    "response_ms": tq.response_ms[lo:hi],
                    "examined_rows": tq.examined_rows[lo:hi],
                }
                if self.instance_id:
                    record["instance"] = self.instance_id
                batches.append((int(seconds[lo]), tq.sql_id, record))
        batches.sort(key=lambda item: (item[0], item[1]))
        sent = 0
        for _, sql_id, value in batches:
            reason = validate_query_record(value)
            if reason is not None:
                quarantine(self.broker, self.topic, value, reason)
                continue
            self.broker.publish(self.topic, key=sql_id, value=value)
            sent += 1
        return sent


class MetricsCollector:
    """Publishes per-second performance-metric points to the broker."""

    def __init__(
        self,
        broker: Broker,
        topic: str | None = None,
        instance_id: str = "",
    ) -> None:
        self.broker = broker
        self.instance_id = instance_id
        self.topic = topic if topic is not None else instance_topic(METRIC_TOPIC, instance_id)
        broker.create_topic(self.topic)

    def collect(self, metrics: InstanceMetrics) -> int:
        """Ship every metric sample; returns the number of points sent."""
        sent = 0
        for name, series in metrics.series.items():
            for ts, value in zip(series.timestamps, series.values):
                record = {"metric": name, "timestamp": int(ts), "value": float(value)}
                if self.instance_id:
                    record["instance"] = self.instance_id
                reason = validate_metric_record(record)
                if reason is not None:
                    quarantine(self.broker, self.topic, record, reason)
                    continue
                self.broker.publish(self.topic, key=name, value=record)
                sent += 1
        return sent
