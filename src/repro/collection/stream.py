"""In-process message broker (Kafka stand-in).

Topics hold append-only message logs; consumers poll with independent
offsets, so multiple downstream components (aggregator, anomaly
detector, archiver) can each read the full stream — the same
subscribe-and-replay semantics the production pipeline relies on.

Fleet support: topics are *instance-keyed*.  Each monitored database
instance publishes to its own topic pair
(``query_logs.<instance_id>`` / ``performance_metrics.<instance_id>``,
see :func:`instance_topic`), so a single broker multiplexes the whole
fleet and per-instance consumers never see another instance's traffic.

Memory is bounded: every consumer created through the broker is
registered with its topic, and :meth:`Broker.prune` drops messages that
every registered consumer has already acknowledged (consumed past).
Pruned messages advance the topic's base offset — exactly Kafka's
log-head truncation — and are counted by the
``broker_pruned_messages_total`` counter.

Batch payloads are first class: one message may carry one columnar
block (:mod:`repro.collection.blocks`) instead of one record.
:meth:`Broker.publish_block` validates the block before appending and
counts records-per-block, blocks and payload bytes per topic, so the
batch dataplane's shape (records/block, blocks/s, bytes shipped) is
visible next to the legacy per-message counters.

The broker self-reports through :mod:`repro.telemetry`: published
message counters per topic, poll-batch-size histograms, and per-consumer
lag gauges — the first things an operator checks when the diagnosis
loop stalls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.telemetry import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    Tracer,
    get_registry,
    trace_propagation_enabled,
)

__all__ = [
    "Message",
    "Broker",
    "Consumer",
    "instance_topic",
    "split_topic",
]


def instance_topic(base: str, instance_id: str = "") -> str:
    """The topic name carrying ``base`` records of one instance.

    An empty ``instance_id`` names the shared single-instance topic, so
    pre-fleet callers keep publishing and consuming exactly as before.
    """
    if not instance_id:
        return base
    if "." in instance_id:
        raise ValueError(f"instance_id must not contain '.': {instance_id!r}")
    return f"{base}.{instance_id}"


def split_topic(topic: str) -> tuple[str, str]:
    """Inverse of :func:`instance_topic`: ``(base, instance_id)``."""
    base, _, instance_id = topic.partition(".")
    return base, instance_id


@dataclass(frozen=True)
class Message:
    """One message on a topic."""

    topic: str
    offset: int
    key: str
    value: Any


@dataclass
class _Topic:
    """One topic's retained log segment.

    ``base_offset`` is the offset of the first *retained* message;
    messages below it have been pruned.  Absolute offsets never change,
    so consumer bookkeeping survives pruning.
    """

    messages: list[Message] = field(default_factory=list)
    base_offset: int = 0

    @property
    def next_offset(self) -> int:
        return self.base_offset + len(self.messages)


class Broker:
    """A minimal polling broker with per-consumer offsets."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self._topics: dict[str, _Topic] = {}
        self._consumers: dict[str, list["Consumer"]] = {}
        self._consumer_seq: dict[str, int] = {}
        self.registry = registry or get_registry()
        #: Traces block publishes; the publish span's context is stamped
        #: onto the outgoing block so downstream diagnosis spans — even
        #: in other processes — parent under it.
        self.tracer = tracer if tracer is not None else Tracer(registry=self.registry)

    def create_topic(self, topic: str) -> None:
        """Create a topic (idempotent)."""
        self._topics.setdefault(topic, _Topic())

    @property
    def topics(self) -> list[str]:
        return list(self._topics)

    def publish(self, topic: str, key: str, value: Any) -> Message:
        """Append a message to a topic, creating the topic on first use."""
        log = self._topics.setdefault(topic, _Topic())
        message = Message(topic=topic, offset=log.next_offset, key=key, value=value)
        log.messages.append(message)
        self.registry.counter(
            "broker_messages_published_total",
            help="Messages appended per topic.",
            topic=topic,
        ).inc()
        return message

    def publish_block(self, topic: str, block: Any) -> Message | None:
        """Publish one columnar block as one message (validated).

        The block is validated up front; a malformed block is routed to
        the topic's dead-letter quarantine and ``None`` is returned.
        Valid blocks are counted into the batch-aware telemetry:
        records per block (histogram), blocks published and payload
        bytes shipped per topic.
        """
        from repro.collection.blocks import (
            MetricBlock,
            QueryLogBlock,
            validate_metric_block,
            validate_query_block,
        )
        from repro.collection.quarantine import quarantine

        if isinstance(block, QueryLogBlock):
            reason = validate_query_block(block)
        elif isinstance(block, MetricBlock):
            reason = validate_metric_block(block)
        else:
            reason = "not_a_block"
        if reason is not None:
            quarantine(self, topic, block, reason)
            return None
        self.count_block(topic, n_records=len(block), nbytes=block.nbytes)
        from repro.collection.blocks import BLOCK_KEY, stamp_block

        if trace_propagation_enabled():
            with self.tracer.span(
                "broker.publish_block", topic=topic, records=len(block)
            ) as span:
                ctx = self.tracer.context_for(span)
                block = stamp_block(block, ctx, time.time())
                return self.publish(topic, key=BLOCK_KEY, value=block)
        return self.publish(topic, key=BLOCK_KEY, value=block)

    def count_block(self, topic: str, n_records: int, nbytes: int) -> None:
        """Record batch telemetry for one block on ``topic``."""
        self.registry.counter(
            "broker_blocks_published_total",
            help="Columnar blocks appended per topic.",
            topic=topic,
        ).inc()
        self.registry.counter(
            "broker_block_records_total",
            help="Records carried inside published blocks, per topic.",
            topic=topic,
        ).inc(n_records)
        self.registry.counter(
            "broker_block_bytes_total",
            help="Payload bytes of published blocks, per topic.",
            topic=topic,
        ).inc(nbytes)
        self.registry.histogram(
            "broker_block_records",
            help="Records per published block.",
            buckets=DEFAULT_COUNT_BUCKETS,
            topic=topic,
        ).observe(n_records)

    def size(self, topic: str) -> int:
        """Messages ever published to a topic (including pruned ones)."""
        log = self._topics.get(topic)
        return log.next_offset if log is not None else 0

    def retained(self, topic: str) -> int:
        """Messages currently held in memory for a topic."""
        log = self._topics.get(topic)
        return len(log.messages) if log is not None else 0

    def base_offset(self, topic: str) -> int:
        """Offset of the oldest retained message of a topic."""
        log = self._topics.get(topic)
        return log.base_offset if log is not None else 0

    def read(self, topic: str, offset: int, max_messages: int) -> list[Message]:
        """Read up to ``max_messages`` messages starting at ``offset``.

        When ``offset`` has been pruned away, reading resumes at the
        topic's base offset (the oldest retained message).
        """
        if offset < 0 or max_messages < 0:
            raise ValueError("offset and max_messages must be non-negative")
        log = self._topics.get(topic)
        if log is None:
            return []
        i0 = max(offset, log.base_offset) - log.base_offset
        return log.messages[i0 : i0 + max_messages]

    def consumer(self, topic: str) -> "Consumer":
        """A new registered consumer starting at the beginning of ``topic``."""
        self.create_topic(topic)
        seq = self._consumer_seq.get(topic, 0)
        self._consumer_seq[topic] = seq + 1
        return Consumer(self, topic, name=f"{topic}/{seq}")

    def _register(self, consumer: "Consumer") -> None:
        self._consumers.setdefault(consumer.topic, []).append(consumer)

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self, topic: str | None = None) -> int:
        """Drop messages acknowledged by every registered consumer.

        Topics without registered consumers are left untouched (they
        may be archival topics read ad hoc via :meth:`read`).  Returns
        the number of messages pruned and counts them into
        ``broker_pruned_messages_total``.
        """
        topics = [topic] if topic is not None else list(self._topics)
        pruned_total = 0
        for name in topics:
            log = self._topics.get(name)
            consumers = self._consumers.get(name)
            if log is None or not consumers:
                continue
            min_offset = min(c.offset for c in consumers)
            # A consumer seeked past the log end must not drag the base
            # offset beyond messages that were actually appended.
            drop = min(min_offset - log.base_offset, len(log.messages))
            if drop <= 0:
                continue
            del log.messages[:drop]
            log.base_offset += drop
            pruned_total += drop
            self.registry.counter(
                "broker_pruned_messages_total",
                help="Messages dropped after acknowledgement by all consumers.",
                topic=name,
            ).inc(drop)
            self.registry.gauge(
                "broker_retained_messages",
                help="Messages currently held in memory per topic.",
                topic=name,
            ).set(len(log.messages))
        return pruned_total


class Consumer:
    """A polling consumer with its own offset into one topic."""

    def __init__(self, broker: Broker, topic: str, name: str | None = None) -> None:
        self._broker = broker
        self.topic = topic
        self.name = name or topic
        self.offset = 0
        broker._register(self)
        registry = broker.registry
        self._batch_hist = registry.histogram(
            "broker_poll_batch_size",
            help="Messages returned per poll.",
            buckets=DEFAULT_COUNT_BUCKETS,
            topic=topic,
        )
        self._lag_gauge = registry.gauge(
            "broker_consumer_lag",
            help="Messages published but not yet consumed.",
            topic=topic,
            consumer=self.name,
        )
        self._lag_gauge.set(self.lag)

    @property
    def broker(self) -> Broker:
        """The broker this consumer reads from (for quarantine/resync)."""
        return self._broker

    @property
    def lag(self) -> int:
        """Messages published but not yet consumed."""
        return self._broker.size(self.topic) - self.offset

    @property
    def stuck(self) -> bool:
        """Permanently behind the pruned log head.

        A consumer whose offset lies below the topic's base offset with
        *no* retained messages can never make progress: every poll reads
        an empty segment while lag stays positive.  (With retained
        messages, :meth:`Broker.read` self-heals by resuming at the base
        offset.)  Happens when a consumer is created — or seeks — behind
        a fully pruned log.
        """
        return (
            self.offset < self._broker.base_offset(self.topic)
            and self._broker.retained(self.topic) == 0
        )

    def resync_to_base(self) -> bool:
        """Recover a :attr:`stuck` consumer by seeking to the base offset.

        Returns ``True`` when a resync happened (counted by
        ``broker_offset_resyncs_total``); ``False`` when the consumer
        was not stuck.
        """
        if not self.stuck:
            return False
        self._broker.registry.counter(
            "broker_offset_resyncs_total",
            help="Consumers resynced from behind a pruned log head.",
            topic=self.topic,
            consumer=self.name,
        ).inc()
        self.seek(self._broker.base_offset(self.topic))
        return True

    def poll(self, max_messages: int = 1000) -> list[Message]:
        """Fetch the next batch of messages and advance the offset."""
        messages = self._broker.read(self.topic, self.offset, max_messages)
        if messages:
            # Absolute offsets survive pruning; jump past the last read
            # message rather than assuming a contiguous head.
            self.offset = messages[-1].offset + 1
        self._batch_hist.observe(len(messages))
        self._lag_gauge.set(self.lag)
        return messages

    def seek(self, offset: int) -> None:
        """Reposition the consumer (replay support).

        Seeking below the topic's base offset replays from the oldest
        retained message — pruned history is gone by definition.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.offset = offset
        self._lag_gauge.set(self.lag)
