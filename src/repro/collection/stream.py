"""In-process message broker (Kafka stand-in).

Topics hold append-only message logs; consumers poll with independent
offsets, so multiple downstream components (aggregator, anomaly
detector, archiver) can each read the full stream — the same
subscribe-and-replay semantics the production pipeline relies on.

The broker self-reports through :mod:`repro.telemetry`: published
message counters per topic, poll-batch-size histograms, and per-consumer
lag gauges — the first things an operator checks when the diagnosis
loop stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.telemetry import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    get_registry,
)

__all__ = ["Message", "Broker", "Consumer"]


@dataclass(frozen=True)
class Message:
    """One message on a topic."""

    topic: str
    offset: int
    key: str
    value: Any


class Broker:
    """A minimal polling broker with per-consumer offsets."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._topics: dict[str, list[Message]] = {}
        self._consumer_seq: dict[str, int] = {}
        self.registry = registry or get_registry()

    def create_topic(self, topic: str) -> None:
        """Create a topic (idempotent)."""
        self._topics.setdefault(topic, [])

    @property
    def topics(self) -> list[str]:
        return list(self._topics)

    def publish(self, topic: str, key: str, value: Any) -> Message:
        """Append a message to a topic, creating the topic on first use."""
        log = self._topics.setdefault(topic, [])
        message = Message(topic=topic, offset=len(log), key=key, value=value)
        log.append(message)
        self.registry.counter(
            "broker_messages_published_total",
            help="Messages appended per topic.",
            topic=topic,
        ).inc()
        return message

    def size(self, topic: str) -> int:
        return len(self._topics.get(topic, []))

    def read(self, topic: str, offset: int, max_messages: int) -> list[Message]:
        """Read up to ``max_messages`` messages starting at ``offset``."""
        if offset < 0 or max_messages < 0:
            raise ValueError("offset and max_messages must be non-negative")
        log = self._topics.get(topic, [])
        return log[offset : offset + max_messages]

    def consumer(self, topic: str) -> "Consumer":
        """A new consumer starting at the beginning of ``topic``."""
        self.create_topic(topic)
        seq = self._consumer_seq.get(topic, 0)
        self._consumer_seq[topic] = seq + 1
        return Consumer(self, topic, name=f"{topic}/{seq}")


class Consumer:
    """A polling consumer with its own offset into one topic."""

    def __init__(self, broker: Broker, topic: str, name: str | None = None) -> None:
        self._broker = broker
        self.topic = topic
        self.name = name or topic
        self.offset = 0
        registry = broker.registry
        self._batch_hist = registry.histogram(
            "broker_poll_batch_size",
            help="Messages returned per poll.",
            buckets=DEFAULT_COUNT_BUCKETS,
            topic=topic,
        )
        self._lag_gauge = registry.gauge(
            "broker_consumer_lag",
            help="Messages published but not yet consumed.",
            topic=topic,
            consumer=self.name,
        )
        self._lag_gauge.set(self.lag)

    @property
    def lag(self) -> int:
        """Messages published but not yet consumed."""
        return self._broker.size(self.topic) - self.offset

    def poll(self, max_messages: int = 1000) -> list[Message]:
        """Fetch the next batch of messages and advance the offset."""
        messages = self._broker.read(self.topic, self.offset, max_messages)
        self.offset += len(messages)
        self._batch_hist.observe(len(messages))
        self._lag_gauge.set(self.lag)
        return messages

    def seek(self, offset: int) -> None:
        """Reposition the consumer (replay support)."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.offset = offset
        self._lag_gauge.set(self.lag)
