"""Windowed stream aggregation (Flink stand-in).

Rolls raw query records up into per-template metric time series:
``#execution`` (count), ``total_tres`` (summed response time),
``avg_tres`` and ``total_examined_rows``, at 1-second granularity with
on-demand 1-minute resampling — the ``metricQ,t = Aggregate({...})``
operation of paper Section IV-A.

Two paths produce identical results: :func:`aggregate_query_log`
(vectorized batch aggregation straight from a :class:`QueryLog`) and
:class:`StreamAggregator` (incremental consumption from the broker).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.collection.blocks import QueryLogBlock
from repro.collection.stream import Consumer
from repro.dbsim.query import QueryLog
from repro.timeseries import TimeSeries

__all__ = [
    "TEMPLATE_METRICS",
    "TemplateMetricStore",
    "aggregate_query_log",
    "StreamAggregator",
]

#: The per-template metrics the aggregation pipeline materialises.
TEMPLATE_METRICS = ("#execution", "total_tres", "avg_tres", "total_examined_rows")


@dataclass
class TemplateMetricStore:
    """Per-template metric series over a fixed window [start, end)."""

    start: int
    end: int
    interval: int = 1
    _data: dict[str, dict[str, TimeSeries]] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return (self.end - self.start) // self.interval

    @property
    def sql_ids(self) -> list[str]:
        return list(self._data)

    def __contains__(self, sql_id: str) -> bool:
        return sql_id in self._data

    def __len__(self) -> int:
        return len(self._data)

    def put(self, sql_id: str, metric: str, series: TimeSeries) -> None:
        if len(series) != self.length:
            raise ValueError(
                f"series length {len(series)} does not match store window {self.length}"
            )
        self._data.setdefault(sql_id, {})[metric] = series

    def get(self, sql_id: str, metric: str) -> TimeSeries:
        """The metric series of one template (zeros if never seen)."""
        template = self._data.get(sql_id)
        if template is None or metric not in template:
            return TimeSeries.zeros(
                self.length, start=self.start, interval=self.interval, name=metric
            )
        return template[metric]

    def executions(self, sql_id: str) -> TimeSeries:
        return self.get(sql_id, "#execution")

    def total_response_time(self, sql_id: str) -> TimeSeries:
        return self.get(sql_id, "total_tres")

    def resample(self, factor: int) -> "TemplateMetricStore":
        """Downsample every series (e.g. 60 → 1-minute granularity)."""
        usable = (self.length // factor) * factor * self.interval
        out = TemplateMetricStore(
            start=self.start, end=self.start + usable, interval=self.interval * factor
        )
        for sql_id, metrics in self._data.items():
            for metric, series in metrics.items():
                how = "mean" if metric == "avg_tres" else "sum"
                out.put(sql_id, metric, series.resample(factor, how=how))
        return out

    def window(self, t0: int, t1: int) -> "TemplateMetricStore":
        """Restrict every series to [t0, t1)."""
        t0 = max(t0, self.start)
        t1 = min(t1, self.end)
        out = TemplateMetricStore(start=t0, end=t1, interval=self.interval)
        for sql_id, metrics in self._data.items():
            for metric, series in metrics.items():
                out.put(sql_id, metric, series.window(t0, t1))
        return out


def _store_from_arrays(
    store: TemplateMetricStore,
    sql_id: str,
    seconds: np.ndarray,
    response_ms: np.ndarray,
    examined_rows: np.ndarray,
) -> None:
    """Aggregate one template's raw arrays into the store (1 s interval)."""
    n = store.length
    idx = seconds - store.start
    in_window = (idx >= 0) & (idx < n)
    idx = idx[in_window].astype(np.int64)
    resp = response_ms[in_window]
    rows = examined_rows[in_window]
    count = np.bincount(idx, minlength=n).astype(np.float64)
    total_tres = np.bincount(idx, weights=resp, minlength=n)
    total_rows = np.bincount(idx, weights=rows, minlength=n)
    _store_from_sums(store, sql_id, count, total_tres, total_rows)


def _store_from_sums(
    store: TemplateMetricStore,
    sql_id: str,
    count: np.ndarray,
    total_tres: np.ndarray,
    total_rows: np.ndarray,
) -> None:
    """Materialise one template's per-second sums as metric series."""
    with np.errstate(invalid="ignore", divide="ignore"):
        avg = np.where(count > 0, total_tres / np.maximum(count, 1.0), 0.0)
    store.put(sql_id, "#execution", TimeSeries(count, store.start, store.interval, "#execution"))
    store.put(sql_id, "total_tres", TimeSeries(total_tres, store.start, store.interval, "total_tres"))
    store.put(sql_id, "avg_tres", TimeSeries(avg, store.start, store.interval, "avg_tres"))
    store.put(
        sql_id,
        "total_examined_rows",
        TimeSeries(total_rows, store.start, store.interval, "total_examined_rows"),
    )


def aggregate_query_log(query_log: QueryLog, start: int, end: int) -> TemplateMetricStore:
    """Batch-aggregate a query log into per-template series over [start, end)."""
    if end <= start:
        raise ValueError("end must exceed start")
    store = TemplateMetricStore(start=start, end=end, interval=1)
    for tq in query_log.iter_templates():
        seconds = (tq.arrive_ms // 1000).astype(np.int64)
        _store_from_arrays(store, tq.sql_id, seconds, tq.response_ms, tq.examined_rows)
    return store


def aggregate_logstore(logstore, start: int, end: int) -> TemplateMetricStore:
    """Batch-aggregate a :class:`~repro.collection.logstore.LogStore` window.

    Same output as :func:`aggregate_query_log`, but reading from the
    retention-bounded store — the path the always-on diagnosis service
    takes when an anomaly fires and the case window must be assembled.
    """
    if end <= start:
        raise ValueError("end must exceed start")
    store = TemplateMetricStore(start=start, end=end, interval=1)
    # LogStore keeps per-second roll-ups; read those instead of
    # re-touching every raw arrival.  Duck-typed stores without the
    # roll-up (e.g. replay shims) fall back to the raw-window path.
    fast = getattr(logstore, "second_aggregates", None)
    for sql_id in logstore.sql_ids:
        if fast is not None:
            count, total_tres, total_rows = fast(sql_id, start, end)
            if count.any():
                _store_from_sums(store, sql_id, count, total_tres, total_rows)
            continue
        tq = logstore.queries_in_window(sql_id, start, end)
        if len(tq) == 0:
            continue
        seconds = (tq.arrive_ms // 1000).astype(np.int64)
        _store_from_arrays(store, sql_id, seconds, tq.response_ms, tq.examined_rows)
    return store


class StreamAggregator:
    """Incremental aggregation from the broker's query-log topic.

    When built with an ``instance_id``, records stamped with a different
    instance are skipped — a defensive guard for consumers positioned on
    a shared (non-partitioned) topic carrying fleet traffic.
    """

    def __init__(
        self, consumer: Consumer, start: int, end: int, instance_id: str = ""
    ) -> None:
        self.consumer = consumer
        self.start = int(start)
        self.end = int(end)
        self.instance_id = instance_id
        self._accum: dict[str, dict[str, np.ndarray]] = {}

    def _template_arrays(self, sql_id: str) -> dict[str, np.ndarray]:
        arrays = self._accum.get(sql_id)
        if arrays is None:
            n = self.end - self.start
            arrays = {
                "count": np.zeros(n),
                "total_tres": np.zeros(n),
                "total_rows": np.zeros(n),
            }
            self._accum[sql_id] = arrays
        return arrays

    def _ingest_block(self, block: QueryLogBlock) -> None:
        """Vectorized accumulation of one columnar block.

        Per-template, per-second sums are formed with one ``bincount``
        per template over the block's sorted rows — the same partial
        sums, in the same order, as the per-record path, so snapshots
        stay bit-identical across the two wire formats.
        """
        n = self.end - self.start
        for batch in block.iter_template_batches():
            seconds = (batch.arrive_ms // 1000).astype(np.int64) - self.start
            in_window = (seconds >= 0) & (seconds < n)
            if not in_window.any():
                continue
            idx = seconds[in_window]
            resp = batch.response_ms[in_window]
            rows = batch.examined_rows[in_window]
            arrays = self._template_arrays(batch.sql_id)
            arrays["count"] += np.bincount(idx, minlength=n)
            arrays["total_tres"] += np.bincount(idx, weights=resp, minlength=n)
            arrays["total_rows"] += np.bincount(idx, weights=rows, minlength=n)

    def poll(self, max_messages: int = 10_000) -> int:
        """Consume a batch of query-log messages; returns messages handled.

        Messages may carry legacy per-(second, template) records or
        columnar :class:`QueryLogBlock` payloads; both accumulate into
        the same per-template arrays.
        """
        messages = self.consumer.poll(max_messages)
        for message in messages:
            record = message.value
            if isinstance(record, QueryLogBlock):
                if (
                    self.instance_id
                    and record.instance
                    and record.instance != self.instance_id
                ):
                    continue
                self._ingest_block(record)
                continue
            if self.instance_id and record.get("instance", self.instance_id) != self.instance_id:
                continue
            second = int(record["second"])
            if not self.start <= second < self.end:
                continue
            arrays = self._template_arrays(record["sql_id"])
            i = second - self.start
            resp = np.asarray(record["response_ms"], dtype=np.float64)
            rows = np.asarray(record["examined_rows"], dtype=np.float64)
            arrays["count"][i] += len(resp)
            arrays["total_tres"][i] += resp.sum()
            arrays["total_rows"][i] += rows.sum()
        return len(messages)

    def drain(self) -> None:
        """Consume until the topic is exhausted."""
        while self.consumer.lag > 0:
            self.poll()

    def snapshot(self) -> TemplateMetricStore:
        """Materialise the current aggregation state as a metric store."""
        store = TemplateMetricStore(start=self.start, end=self.end, interval=1)
        for sql_id, arrays in self._accum.items():
            count = arrays["count"]
            total_tres = arrays["total_tres"]
            total_rows = arrays["total_rows"]
            avg = np.where(count > 0, total_tres / np.maximum(count, 1.0), 0.0)
            store.put(sql_id, "#execution", TimeSeries(count.copy(), self.start, 1, "#execution"))
            store.put(sql_id, "total_tres", TimeSeries(total_tres.copy(), self.start, 1, "total_tres"))
            store.put(sql_id, "avg_tres", TimeSeries(avg, self.start, 1, "avg_tres"))
            store.put(
                sql_id,
                "total_examined_rows",
                TimeSeries(total_rows.copy(), self.start, 1, "total_examined_rows"),
            )
        return store
