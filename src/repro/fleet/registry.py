"""Registry of monitored database instances.

The paper's deployment watches a *fleet* of cloud database instances,
not one: each instance has its own collection topics, detector state and
diagnosis history.  :class:`InstanceRegistry` is the control-plane view
of that fleet — which instances exist, their descriptive metadata, and
optional live :class:`~repro.dbsim.instance.DatabaseInstance` handles
for repair execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.dbsim.instance import DatabaseInstance

__all__ = ["InstanceDescriptor", "InstanceRegistry"]


@dataclass(frozen=True)
class InstanceDescriptor:
    """Identity and placement metadata of one monitored instance."""

    instance_id: str
    #: Free-form placement/ownership tags (region, tier, tenant, ...).
    tags: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.instance_id:
            raise ValueError("instance_id must be non-empty")
        if "." in self.instance_id:
            raise ValueError(
                f"instance_id may not contain '.': {self.instance_id!r}"
            )


class InstanceRegistry:
    """Known instances, keyed by id (insertion-ordered)."""

    def __init__(self) -> None:
        self._descriptors: dict[str, InstanceDescriptor] = {}
        self._handles: dict[str, DatabaseInstance] = {}

    def register(
        self,
        descriptor: InstanceDescriptor | str,
        handle: DatabaseInstance | None = None,
    ) -> InstanceDescriptor:
        """Add (or update) an instance; returns its descriptor."""
        if isinstance(descriptor, str):
            descriptor = InstanceDescriptor(descriptor)
        self._descriptors[descriptor.instance_id] = descriptor
        if handle is not None:
            self._handles[descriptor.instance_id] = handle
        return descriptor

    def deregister(self, instance_id: str) -> None:
        self._descriptors.pop(instance_id, None)
        self._handles.pop(instance_id, None)

    def get(self, instance_id: str) -> InstanceDescriptor | None:
        return self._descriptors.get(instance_id)

    def handle(self, instance_id: str) -> DatabaseInstance | None:
        """The live database handle, when one was registered."""
        return self._handles.get(instance_id)

    @property
    def instance_ids(self) -> list[str]:
        return list(self._descriptors)

    def __contains__(self, instance_id: str) -> bool:
        return instance_id in self._descriptors

    def __len__(self) -> int:
        return len(self._descriptors)

    def __iter__(self) -> Iterator[InstanceDescriptor]:
        return iter(self._descriptors.values())
