"""Fleet-scale diagnosis: registry, sharded scheduling, worker pool.

One PinSQL deployment watches many database instances.  This package
holds the control plane for that: :class:`InstanceRegistry` (who is in
the fleet), :class:`DiagnosisScheduler` (which worker owns which
instance), :class:`InstanceDiagnosisEngine` (one instance's end-to-end
loop) and :class:`FleetDiagnosisService` (the whole fleet behind one
``step()``/``run_until_drained()``).  The single-instance
:class:`~repro.service.PinSqlService` is a facade over the engine.
"""

from repro.fleet.engine import Diagnosis, InstanceDiagnosisEngine, ServiceConfig
from repro.fleet.registry import InstanceDescriptor, InstanceRegistry
from repro.fleet.scheduler import DiagnosisScheduler, stable_shard
from repro.fleet.service import FleetConfig, FleetDiagnosisService
from repro.fleet.sharded import (
    InstanceFeed,
    ShardTask,
    feed_from_broker,
    run_shard,
    run_shard_supervised,
    run_sharded,
)
from repro.fleet.workers import (
    BlockFeed,
    PersistentWorkerPool,
    WorkItem,
    block_feed_from_broker,
    columnarize_feed,
    execute_work_item,
    process_work_item,
)

__all__ = [
    "BlockFeed",
    "Diagnosis",
    "DiagnosisScheduler",
    "FleetConfig",
    "FleetDiagnosisService",
    "InstanceDescriptor",
    "InstanceDiagnosisEngine",
    "InstanceFeed",
    "InstanceRegistry",
    "PersistentWorkerPool",
    "ServiceConfig",
    "ShardTask",
    "WorkItem",
    "block_feed_from_broker",
    "columnarize_feed",
    "execute_work_item",
    "feed_from_broker",
    "process_work_item",
    "run_shard",
    "run_shard_supervised",
    "run_sharded",
    "stable_shard",
]
