"""Fleet diagnosis service: many instances, one broker, N workers.

The production PinSQL deployment watches thousands of instances with a
shared collection substrate (Kafka + LogStore) and a pool of diagnosis
workers.  This module reproduces that shape at repo scale:

- every registered instance gets its own
  :class:`~repro.fleet.engine.InstanceDiagnosisEngine` reading the
  instance-keyed topic partitions (``query_logs.<id>`` etc.);
- a :class:`~repro.fleet.scheduler.DiagnosisScheduler` deterministically
  shards instances over ``workers`` threads, so one :meth:`step` of the
  fleet advances every instance concurrently while each instance's
  state stays single-threaded (engines never share mutable state);
- raw logs live in one :class:`PartitionedLogStore` with shared
  retention accounting, and the broker can be pruned each step once all
  engines have consumed (``FleetConfig.prune_broker``) — the memory
  bound that makes an always-on fleet viable;
- self-monitoring samples the registry once per fleet step, after the
  worker pool has joined (sampling walks the whole registry and must
  not run concurrently with instrument creation).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (incidents → core)
    from repro.health.sweeper import HealthSweeper
    from repro.incidents.recorder import IncidentRecorder

from repro.collection.logstore import DEFAULT_RETENTION_S, PartitionedLogStore
from repro.collection.stream import Broker
from repro.dbsim.instance import DatabaseInstance
from repro.fleet.engine import Diagnosis, InstanceDiagnosisEngine, ServiceConfig
from repro.fleet.registry import InstanceDescriptor, InstanceRegistry
from repro.fleet.scheduler import DiagnosisScheduler
from repro.sqltemplate import TemplateCatalog
from repro.telemetry import MetricsRegistry, SelfMonitor, get_logger, get_registry
from repro.timeseries import TimeSeries

__all__ = ["FleetConfig", "FleetDiagnosisService"]

_log = get_logger("fleet")


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of the fleet control plane."""

    #: Default per-instance service configuration (overridable per
    #: instance at registration time).
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Diagnosis worker threads; instances are sharded over them.
    workers: int = 1
    #: Prune broker topics each step once every consumer has read them.
    #: Off by default: archival replay (fresh consumers reading from
    #: offset 0) only works on unpruned topics.
    prune_broker: bool = False
    #: Raw-log retention across the fleet's LogStore partitions.
    retention_s: int = DEFAULT_RETENTION_S
    #: Supervised recovery: how many times a crashed worker step is
    #: retried (per instance, per fleet step) before the instance is
    #: skipped for that step.  Each retry counts
    #: ``fleet_worker_restarts_total``.
    max_worker_restarts: int = 3

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be non-negative")


class FleetDiagnosisService:
    """Diagnoses anomalies across a registered fleet of instances."""

    def __init__(
        self,
        broker: Broker,
        config: FleetConfig | None = None,
        registry: MetricsRegistry | None = None,
        notify: Callable[[Diagnosis], None] | None = None,
        recorder: "IncidentRecorder | None" = None,
        fault_hook: Callable[[str], None] | None = None,
        sweeper: "HealthSweeper | None" = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.broker = broker
        self.registry = registry or get_registry()
        self.notify = notify
        #: Test seam for chaos injection: called with the instance id
        #: before every engine step; an exception it raises is treated
        #: exactly like a worker crash (supervised restart).
        self.fault_hook = fault_hook
        #: Shared incident flight recorder handed to every engine; its
        #: store serialises appends, so fleet workers may share one.
        self.recorder = recorder
        #: Optional proactive health sweeper; its scheduled sweeps run
        #: in step() housekeeping (after the worker pool has joined, so
        #: they never race engine state).
        self.sweeper = sweeper
        self.instances = InstanceRegistry()
        self.scheduler = DiagnosisScheduler(self.config.workers)
        self.logstore = PartitionedLogStore(
            retention_s=self.config.retention_s, registry=self.registry
        )
        self.selfmon = SelfMonitor(
            self.registry, window_s=self.config.service.detector_window_s
        )
        self._engines: dict[str, InstanceDiagnosisEngine] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._m_steps = self.registry.counter(
            "fleet_steps_total", help="Fleet loop iterations."
        )
        self._m_diagnoses = self.registry.counter(
            "fleet_diagnoses_total", help="Diagnoses completed fleet-wide."
        )
        self._g_instances = self.registry.gauge(
            "fleet_registered_instances", help="Instances under diagnosis."
        )

    # ------------------------------------------------------------------
    # Fleet membership
    # ------------------------------------------------------------------
    def register_instance(
        self,
        descriptor: InstanceDescriptor | str,
        instance: DatabaseInstance | None = None,
        config: ServiceConfig | None = None,
        history_provider: Callable[[str, int, int, int], TimeSeries | None] | None = None,
        catalog: TemplateCatalog | None = None,
    ) -> InstanceDiagnosisEngine:
        """Bring an instance under diagnosis; returns its engine.

        Re-registering an id returns the existing engine (descriptor
        metadata is refreshed).
        """
        descriptor = self.instances.register(descriptor, handle=instance)
        instance_id = descriptor.instance_id
        engine = self._engines.get(instance_id)
        if engine is None:
            engine = InstanceDiagnosisEngine(
                self.broker,
                instance_id=instance_id,
                config=config or self.config.service,
                instance=instance,
                history_provider=history_provider,
                notify=self.notify,
                registry=self.registry,
                logstore=self.logstore.partition(instance_id),
                selfmon=None,
                recorder=self.recorder,
            )
            if catalog is not None:
                engine.register_catalog(catalog)
            self._engines[instance_id] = engine
            self._g_instances.set(len(self._engines))
        return engine

    def engine(self, instance_id: str) -> InstanceDiagnosisEngine:
        return self._engines[instance_id]

    @property
    def instance_ids(self) -> list[str]:
        return list(self._engines)

    def diagnoses_for(self, instance_id: str) -> list[Diagnosis]:
        return self._engines[instance_id].diagnoses

    @property
    def diagnoses(self) -> list[Diagnosis]:
        """Every diagnosis so far, grouped by instance registration order."""
        out: list[Diagnosis] = []
        for engine in self._engines.values():
            out.extend(engine.diagnoses)
        return out

    @property
    def lag(self) -> int:
        """Unconsumed messages across every engine's topic partitions."""
        return sum(e.lag for e in self._engines.values())

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def step(self) -> list[Diagnosis]:
        """One fleet iteration: step every instance, then housekeeping.

        Shards are stepped concurrently on the worker pool; within a
        shard, instances advance sequentially.  Housekeeping (broker
        pruning, self-monitor sampling) runs after the pool has joined,
        so it never races the workers.
        """
        self._m_steps.inc()
        engine_ids = list(self._engines)
        produced: list[Diagnosis] = []
        if self.config.workers == 1 or len(engine_ids) <= 1:
            for instance_id in engine_ids:
                produced.extend(self._step_instance(instance_id))
        else:
            shards = [
                s for s in self.scheduler.partition(engine_ids) if s
            ]
            futures = [
                self._pool().submit(self._step_shard, shard) for shard in shards
            ]
            for future in futures:
                produced.extend(future.result())
        if produced:
            self._m_diagnoses.inc(len(produced))
        if self.config.prune_broker:
            self.broker.prune()
        stream_times = [
            e.detector.stream_time
            for e in self._engines.values()
            if e.detector.stream_time is not None
        ]
        if stream_times:
            self.selfmon.sample(max(stream_times))
            if self.sweeper is not None:
                self.sweeper.maybe_sweep(self, now=max(stream_times))
        return produced

    def _step_shard(self, instance_ids: list[str]) -> list[Diagnosis]:
        produced: list[Diagnosis] = []
        for instance_id in instance_ids:
            produced.extend(self._step_instance(instance_id))
        return produced

    def _step_instance(self, instance_id: str) -> list[Diagnosis]:
        """One supervised engine step.

        A crash (from the engine or the chaos fault hook) restarts the
        step up to ``max_worker_restarts`` times; if the instance still
        cannot complete, it is skipped for this fleet step (and retried
        on the next one) instead of taking the whole fleet loop down.
        """
        engine = self._engines[instance_id]
        attempts = 0
        while True:
            try:
                if self.fault_hook is not None:
                    self.fault_hook(instance_id)
                return engine.step()
            except Exception:
                if attempts >= self.config.max_worker_restarts:
                    _log.warning(
                        "worker step failed after supervised restarts; "
                        "skipping instance this step",
                        extra={"instance": instance_id, "attempts": attempts},
                        exc_info=True,
                    )
                    self.registry.counter(
                        "fleet_worker_failures_total",
                        help="Instance steps abandoned after exhausting "
                        "supervised restarts.",
                        instance=instance_id,
                    ).inc()
                    return []
                attempts += 1
                self.registry.counter(
                    "fleet_worker_restarts_total",
                    help="Supervised restarts of crashed fleet worker steps.",
                    instance=instance_id,
                ).inc()

    def run_until_drained(self, max_idle_iterations: int = 25) -> list[Diagnosis]:
        """Step until every instance's partitions are exhausted.

        Same stall guard as the single-instance loop: if the fleet lag
        stays positive but no consumer advances and nothing is produced
        for ``max_idle_iterations`` consecutive steps, log and break.
        """
        produced: list[Diagnosis] = []
        idle = 0
        while self.lag > 0:
            offsets = tuple(
                e.consumer_offsets() for e in self._engines.values()
            )
            step_produced = self.step()
            produced.extend(step_produced)
            advanced = (
                tuple(e.consumer_offsets() for e in self._engines.values())
                != offsets
            )
            if advanced or step_produced:
                idle = 0
                continue
            resynced = False
            for engine in self._engines.values():
                resynced = engine.resync_consumers() or resynced
            if resynced:
                # Consumers stranded behind a pruned log head have been
                # resynced; let the loop re-evaluate the fleet lag.
                idle = 0
                continue
            idle += 1
            if idle >= max_idle_iterations:
                _log.warning(
                    "fleet broker not advancing; abandoning drain",
                    extra={"idle_iterations": idle, "fleet_lag": self.lag},
                )
                self.registry.counter(
                    "fleet_drain_stalled_total",
                    help="Fleet drains abandoned on a non-advancing broker.",
                ).inc()
                break
        return produced

    # ------------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="fleet-worker",
            )
        return self._executor

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "FleetDiagnosisService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
