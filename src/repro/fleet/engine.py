"""Per-instance diagnosis engine (one instance's always-on loop).

This is the single-instance machinery the pre-fleet ``PinSqlService``
carried inline: consume one instance's query-log and metric topics,
run the real-time detector, assemble anomaly cases from the retention-
bounded log store, run PinSQL, plan/execute repairs, notify.  The fleet
service owns one engine per registered instance; the single-instance
:class:`~repro.service.PinSqlService` facade owns exactly one with an
empty ``instance_id`` (preserving the original topics and unlabelled
telemetry).

Every engine is self-contained — consumers, detector buffers, log
store partition, template catalog, emitted-anomaly dedup state — so
instances never share mutable state and a worker thread can step one
engine without synchronising with the others.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (incidents → core)
    from repro.incidents.recorder import IncidentRecorder

from repro.collection.aggregator import aggregate_logstore
from repro.collection.collector import METRIC_TOPIC, QUERY_TOPIC
from repro.collection.logstore import LogStore
from repro.collection.quarantine import quarantine, validate_query_record
from repro.collection.stream import Broker, instance_topic
from repro.core.case import AnomalyCase
from repro.core.config import PinSQLConfig
from repro.core.pipeline import PinSQL, PinSQLResult
from repro.core.repair.engine import RepairEngine, RepairPlan
from repro.core.repair.rules import DEFAULT_REPAIR_CONFIG, RepairConfig
from repro.core.report import DiagnosisReport, render_report
from repro.dbsim.instance import DatabaseInstance
from repro.detection.case_builder import DetectedAnomaly
from repro.detection.realtime import RealtimeAnomalyDetector, snapshot_samples
from repro.detection.typing import CategoryVerdict, classify_case
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceeded,
    DegradedModePolicy,
    DiagnosisConfidence,
    StageWatchdog,
)
from repro.sqlanalysis import Advisory, Finding, SqlAnalyzer, WorkloadAnalyzer
from repro.sqltemplate import TemplateCatalog, fingerprint
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SelfMonitor,
    TraceContext,
    Tracer,
    get_logger,
    get_registry,
    get_tracer,
)
from repro.timeseries import TimeSeries

__all__ = ["ServiceConfig", "Diagnosis", "InstanceDiagnosisEngine"]

_log = get_logger("service")


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the autonomy loop (the paper's Fig. 5 knobs)."""

    pinsql: PinSQLConfig = field(default_factory=PinSQLConfig)
    repair: RepairConfig = DEFAULT_REPAIR_CONFIG
    #: δs — context collected before the detected anomaly start.
    delta_start_s: int = 900
    #: Sliding window and cadence of the real-time detector.
    detector_window_s: int = 1800
    evaluation_interval_s: int = 60
    #: Ignore anomalies shorter than this (user-configurable, Sec. IV-B).
    min_anomaly_duration_s: int = 30
    #: Wall-clock budget per diagnosis (None disables the watchdog).
    #: The stage watchdog checks between pipeline stages; an exceeded
    #: budget abandons the diagnosis and counts
    #: ``diagnosis_stage_timeouts_total``.
    diagnosis_budget_s: float | None = None
    #: Validate query-log payloads in the drain loop; malformed records
    #: are quarantined to the dead-letter topic instead of raising.
    validate_records: bool = True
    #: Degraded-mode thresholds (see DegradedModePolicy).
    max_gap_fraction: float = 0.25
    min_window_fraction: float = 0.5
    #: Repair-execution circuit breaker (consecutive failures to open,
    #: seconds until a half-open probe is allowed).
    breaker_failure_threshold: int = 3
    breaker_recovery_s: float = 120.0


@dataclass
class Diagnosis:
    """One completed diagnosis produced by the service."""

    anomaly: DetectedAnomaly
    case: AnomalyCase
    result: PinSQLResult
    report: DiagnosisReport
    plan: RepairPlan
    executed: bool
    #: Rule-based anomaly typing (category + evidence).
    verdict: CategoryVerdict | None = None
    #: Static-analysis findings per top-ranked template (R-SQLs first).
    findings: dict[str, tuple[Finding, ...]] = field(default_factory=dict)
    #: The monitored instance the anomaly occurred on ("" pre-fleet).
    instance_id: str = ""
    #: Id of the persisted incident record, when a recorder is attached.
    incident_id: str | None = None
    #: Evidence confidence: ``"full"``, or ``"degraded"`` when the
    #: diagnosis ran on imperfect evidence (gappy metric windows,
    #: shrunken context, quarantined log batches).
    confidence: str = DiagnosisConfidence.FULL.value
    #: Machine-readable reasons the diagnosis was degraded.
    degraded_reasons: tuple[str, ...] = ()
    #: Pipeline freshness when the diagnosis completed: newest ingested
    #: event second vs. the detector's stream clock, plus the publish
    #: wall-time of the newest block (persisted onto incident records).
    data_freshness: dict = field(default_factory=dict)
    #: Workload-level advisories (lock conflicts, index candidates,
    #: join fan-out) computed over the case catalog during repair
    #: planning; persisted onto incident records.
    advisories: tuple[Advisory, ...] = ()

    def outcome_key(self) -> str:
        """Stable key of the (verdict, rules, advisors, confidence) combo.

        Two diagnoses with the same key exercised the same explainable
        outcome: same typed category, same set of static-analysis rules
        fired, same advisory passes, same confidence stamp.  The
        scenario fuzzer counts distinct keys as behavioural coverage, so
        the format must stay stable within a build (it is not persisted).
        """
        verdict = self.verdict.category.value if self.verdict is not None else "untyped"
        rules = ",".join(
            sorted({f.rule for fs in self.findings.values() for f in fs})
        )
        advisors = ",".join(sorted({a.advisor for a in self.advisories}))
        return f"{verdict}|{rules}|{advisors}|{self.confidence}"


class InstanceDiagnosisEngine:
    """One instance's diagnosis loop over its broker topic partition.

    Parameters
    ----------
    broker:
        The (fleet-shared) message broker.
    instance_id:
        Id of the monitored instance.  Decides the topic partition
        (``query_logs.<id>`` / ``performance_metrics.<id>``) and labels
        all telemetry; empty means the pre-fleet shared topics and
        unlabelled telemetry.
    config:
        Service configuration.
    instance:
        Optional live :class:`DatabaseInstance`; when provided *and* the
        repair config enables auto-execution, planned actions are applied.
    history_provider:
        Optional callable ``(sql_id, days_ago, ts, te) → TimeSeries|None``
        supplying historical execution series for verification.
    notify:
        Optional callback invoked with each completed :class:`Diagnosis`
        (the DingTalk/SMS hook of the paper's Fig. 5).
    registry / tracer:
        Optional telemetry sinks; by default the process-wide registry
        and tracer from :mod:`repro.telemetry` are used.  Engines with
        an ``instance_id`` get a private tracer labelled with the
        instance so per-stage histograms stay separable (and thread-
        private under the fleet worker pool).
    logstore:
        Optional externally owned :class:`LogStore` (a fleet partition);
        by default the engine creates its own.
    selfmon:
        Optional :class:`SelfMonitor`.  Defaults to a private one for
        the single-instance path; the fleet passes ``None`` and samples
        one fleet-level monitor itself (sampling walks the whole
        registry and must not run concurrently from many workers).
    """

    def __init__(
        self,
        broker: Broker,
        instance_id: str = "",
        config: ServiceConfig | None = None,
        instance: DatabaseInstance | None = None,
        history_provider: Callable[[str, int, int, int], TimeSeries | None] | None = None,
        notify: Callable[[Diagnosis], None] | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        logstore: LogStore | None = None,
        selfmon: SelfMonitor | None | str = "default",
        recorder: "IncidentRecorder | None" = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.broker = broker
        self.instance_id = instance_id
        self.instance = instance
        self.history_provider = history_provider
        self.notify = notify
        #: Optional incident flight recorder; every completed diagnosis
        #: is persisted as a durable evidence chain.
        self.recorder = recorder
        self.query_topic = instance_topic(QUERY_TOPIC, instance_id)
        self.metric_topic = instance_topic(METRIC_TOPIC, instance_id)
        if tracer is None:
            if instance_id:
                tracer = Tracer(
                    registry=registry or get_registry(),
                    labels={"instance": instance_id},
                )
            else:
                tracer = get_tracer() if registry is None else Tracer(registry=registry)
        self.registry = registry or get_registry()
        self.tracer = tracer
        self._labels = {"instance": instance_id} if instance_id else {}
        self.logstore = logstore if logstore is not None else LogStore(
            registry=self.registry, instance_id=instance_id
        )
        self.catalog = TemplateCatalog()
        self._log_consumer = broker.consumer(self.query_topic)
        self.detector = RealtimeAnomalyDetector(
            broker.consumer(self.metric_topic),
            window_s=self.config.detector_window_s,
            evaluation_interval_s=self.config.evaluation_interval_s,
            registry=self.registry,
            instance_id=instance_id,
        )
        self._pinsql = PinSQL(self.config.pinsql, tracer=self.tracer)
        #: Static SQL analyzer shared by repair planning and diagnosis
        #: evidence; sees the live schema (index metadata) when a live
        #: instance is attached.
        self.analyzer = SqlAnalyzer(
            schema=instance.schema if instance is not None else None,
            registry=self.registry,
        )
        #: Workload-level advisor (lock-conflict graph, index advisor,
        #: join/fan-out) shared by repair planning and health sweeps.
        self.advisor = WorkloadAnalyzer(
            schema=instance.schema if instance is not None else None,
            registry=self.registry,
        )
        self._repair = RepairEngine(
            self.config.repair, registry=self.registry, instance_id=instance_id,
            analyzer=self.analyzer, advisor=self.advisor,
        )
        #: Self-monitoring: gauge/counter history of this very service,
        #: exposed as TimeSeries so the repo's detectors can watch it.
        self.selfmon: SelfMonitor | None
        if selfmon == "default":
            self.selfmon = SelfMonitor(
                self.registry, window_s=self.config.detector_window_s
            )
        else:
            self.selfmon = selfmon  # type: ignore[assignment]
        #: Degraded-mode policy: gap detection and evidence fallbacks.
        self.degraded_policy = DegradedModePolicy(
            max_gap_fraction=self.config.max_gap_fraction,
            min_window_fraction=self.config.min_window_fraction,
            registry=self.registry,
            **self._labels,
        )
        #: Stage watchdog bounding each diagnosis's wall-clock budget.
        self._watchdog = StageWatchdog(
            self.config.diagnosis_budget_s,
            registry=self.registry,
            **self._labels,
        )
        #: Circuit breaker around repair execution: stop hammering an
        #: instance whose repair path keeps failing.
        self.repair_breaker = CircuitBreaker(
            name=f"repair.{instance_id or 'default'}",
            failure_threshold=self.config.breaker_failure_threshold,
            recovery_s=self.config.breaker_recovery_s,
            registry=self.registry,
        )
        #: Query-log records quarantined since the last diagnosis —
        #: evidence of missing log batches for the degraded policy.
        self._quarantined_since_diagnosis = 0
        #: Per-metric raw samples retained for case assembly; bounded by
        #: the detector window extended by δs (see _capture_metric_samples).
        self._metric_samples: dict[str, dict[int, float]] = {}
        self.diagnoses: list[Diagnosis] = []
        reg = self.registry
        labels = self._labels
        self._m_steps = reg.counter(
            "service_steps_total", help="Service loop iterations.", **labels
        )
        self._m_diagnoses = reg.counter(
            "service_diagnoses_total", help="Completed diagnoses.", **labels
        )
        self._m_log_messages = reg.counter(
            "service_querylog_messages_total",
            help="Query-log messages drained into the LogStore.",
            **labels,
        )
        self._m_block_records = reg.counter(
            "service_querylog_block_records_total",
            help="Raw query records ingested from columnar block messages.",
            **labels,
        )
        self._m_samples_evicted = reg.counter(
            "service_metric_samples_evicted_total",
            help="Mirrored metric samples dropped by the retention bound.",
            **labels,
        )
        self._g_sample_count = reg.gauge(
            "service_metric_samples_resident",
            help="Mirrored metric samples currently retained.",
            **labels,
        )
        self._h_ingest_lag = reg.histogram(
            "pipeline_lag_seconds",
            help="Block age per pipeline stage (publish wall-time to now).",
            buckets=DEFAULT_LATENCY_BUCKETS,
            stage="ingest",
            **labels,
        )
        self._h_diagnose_lag = reg.histogram(
            "pipeline_lag_seconds",
            help="Block age per pipeline stage (publish wall-time to now).",
            buckets=DEFAULT_LATENCY_BUCKETS,
            stage="diagnose",
            **labels,
        )
        self._g_freshness = reg.gauge(
            "data_freshness_seconds",
            help="Stream seconds between the detector clock and the "
            "newest ingested event.",
            **labels,
        )
        #: Trace context of the newest ingested block — the remote
        #: publish span that parents this engine's diagnosis spans.
        self._ingest_trace: TraceContext | None = None
        #: Publish wall-time of the newest ingested block.
        self._last_publish_unix: float = 0.0
        #: Newest event second observed in ingested query batches.
        self._last_event_s: int | None = None

    def _count_skip(self, reason: str) -> None:
        self.registry.counter(
            "service_anomalies_skipped_total",
            help="Anomaly events not diagnosed, by reason.",
            reason=reason,
            **self._labels,
        ).inc()

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def _drain_query_logs(self, max_messages: int = 50_000) -> int:
        from repro.collection.blocks import QueryLogBlock, validate_query_block
        from repro.dbsim.query import SecondBatch

        handled = 0
        while True:
            messages = self._log_consumer.poll(max_messages)
            if not messages:
                break
            for message in messages:
                record = message.value
                if isinstance(record, QueryLogBlock):
                    if self.config.validate_records:
                        reason = validate_query_block(record)
                        if reason is not None:
                            # A malformed block is one lost *batch*: park
                            # it on the dead-letter topic, and weigh the
                            # loss by its row count for the degraded
                            # policy (a block is not one record).
                            quarantine(
                                self.broker, self.query_topic, record, reason
                            )
                            self._quarantined_since_diagnosis += 1
                            continue
                    if (
                        self.instance_id
                        and record.instance
                        and record.instance != self.instance_id
                    ):
                        continue
                    if record.trace is not None:
                        # Adopt the publish span's context: subsequent
                        # root spans (service.diagnose) join its trace.
                        self._ingest_trace = record.trace
                        self.tracer.set_remote_parent(record.trace)
                    if record.created_unix:
                        self._last_publish_unix = record.created_unix
                        self._h_ingest_lag.observe(
                            max(0.0, time.time() - record.created_unix)
                        )
                    ingested = self.logstore.ingest_block(record)
                    self._m_block_records.inc(ingested)
                    self._note_event_second(int(record.data["arrive_ms"].max()))
                    for sql_id, stmt in zip(record.sql_ids, record.statements):
                        if stmt and sql_id not in self.catalog:
                            self.catalog.register_statement(stmt)
                    handled += 1
                    continue
                if self.config.validate_records:
                    reason = validate_query_record(record)
                    if reason is not None:
                        # A malformed batch must not crash the drain
                        # loop: park it on the dead-letter topic and
                        # remember the loss for the degraded policy.
                        quarantine(self.broker, self.query_topic, record, reason)
                        self._quarantined_since_diagnosis += 1
                        continue
                if (
                    self.instance_id
                    and record.get("instance", self.instance_id) != self.instance_id
                ):
                    continue
                sql_id = record["sql_id"]
                arrive_ms = np.asarray(record["arrive_ms"], dtype=np.int64)
                self.logstore.ingest_batch(
                    SecondBatch(
                        sql_id=sql_id,
                        arrive_ms=arrive_ms,
                        response_ms=np.asarray(record["response_ms"], dtype=np.float64),
                        examined_rows=np.asarray(record["examined_rows"], dtype=np.float64),
                    )
                )
                if arrive_ms.size:
                    self._note_event_second(int(arrive_ms.max()))
                if sql_id not in self.catalog and "statement" in record:
                    self.catalog.register_statement(record["statement"])
                handled += 1
        return handled

    def _note_event_second(self, arrive_ms_max: int) -> None:
        """Track the newest event second for the freshness gauge."""
        event_s = arrive_ms_max // 1000
        if self._last_event_s is None or event_s > self._last_event_s:
            self._last_event_s = event_s

    @property
    def ingest_trace(self) -> TraceContext | None:
        """Trace context adopted from the newest ingested block (the
        publish span an incident's span tree is parented under)."""
        return self._ingest_trace

    def freshness_snapshot(self) -> dict:
        """Event-time vs. stream/wall clocks right now.

        The evidence chain's ``data_freshness``: stamped onto every
        completed :class:`Diagnosis` and persisted with its incident
        record, so an operator can tell a diagnosis built on stale
        evidence from one built on a current window.
        """
        out: dict[str, float | int] = {"diagnosed_unix": time.time()}
        if self._last_event_s is not None:
            out["event_time_s"] = self._last_event_s
        stream_time = self.detector.stream_time
        if stream_time is not None:
            out["stream_time_s"] = stream_time
            if self._last_event_s is not None:
                out["staleness_s"] = max(0, stream_time - self._last_event_s)
        if self._last_publish_unix:
            out["publish_unix"] = self._last_publish_unix
            out["ingest_lag_s"] = max(0.0, time.time() - self._last_publish_unix)
        return out

    def register_statement(self, sql: str) -> None:
        """Teach the catalog a statement (collectors may also inline them)."""
        fp = fingerprint(sql)
        self.catalog.register_template(fp.sql_id, fp.template, fp.kind, fp.tables)

    def register_catalog(self, catalog: TemplateCatalog) -> None:
        """Merge an external template catalog (e.g. from the workload)."""
        for info in catalog:
            self.catalog.register_template(
                info.sql_id, info.template, info.kind, info.tables,
                exemplar=info.exemplar,
            )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    @property
    def lag(self) -> int:
        """Messages waiting on this engine's two topic partitions."""
        return self._log_consumer.lag + self.detector.consumer.lag

    def consumer_offsets(self) -> tuple[int, int]:
        """(query-log offset, metric offset) — progress fingerprint."""
        return (self._log_consumer.offset, self.detector.consumer.offset)

    def _catch_up_query_logs(self, max_attempts: int = 8) -> int:
        """Re-drain a lagging query-log consumer before diagnosing.

        A stalled consumer returns empty batches while its broker lag
        stays positive, so empty polls are retried (bounded); a consumer
        stranded behind a pruned log head is resynced along the way.
        Each catch-up is counted by ``service_log_catchups_total``.
        """
        handled = 0
        for _ in range(max_attempts):
            if self._log_consumer.lag <= 0:
                break
            got = self._drain_query_logs()
            handled += got
            if not got:
                self._log_consumer.resync_to_base()
        if handled:
            self.registry.counter(
                "service_log_catchups_total",
                help="Query-log messages drained by pre-diagnosis catch-up.",
                **self._labels,
            ).inc(handled)
        return handled

    def resync_consumers(self) -> bool:
        """Recover consumers stranded behind a pruned log head.

        Returns ``True`` when at least one consumer was resynced (each
        resync is counted by ``broker_offset_resyncs_total``).
        """
        resynced = self._log_consumer.resync_to_base()
        return self.detector.consumer.resync_to_base() or resynced

    def step(self) -> list[Diagnosis]:
        """Consume available stream data; diagnose any fresh anomalies."""
        self._m_steps.inc()
        handled = self._drain_query_logs()
        if handled:
            self._m_log_messages.inc(handled)
        events = self.detector.poll()
        self._capture_metric_samples()
        if self.detector.stream_time is not None and self._last_event_s is not None:
            self._g_freshness.set(
                max(0.0, self.detector.stream_time - self._last_event_s)
            )
        produced: list[Diagnosis] = []
        if events and self._log_consumer.lag > 0:
            # The metric stream has outrun the query-log stream (e.g.
            # the log consumer is stalled by backpressure): diagnosing
            # now would assemble an empty evidence window.  Catch the
            # log consumer up first, within a bounded retry budget.
            caught_up = self._catch_up_query_logs()
            if caught_up:
                self._m_log_messages.inc(caught_up)
        for event in events:
            if event.is_update:
                self._count_skip("update")
                continue
            if event.anomaly.duration < self.config.min_anomaly_duration_s:
                self._count_skip("too_short")
                continue
            diagnosis = self._diagnose(event.anomaly)
            if diagnosis is not None:
                self.diagnoses.append(diagnosis)
                produced.append(diagnosis)
                self._m_diagnoses.inc()
                if self.recorder is not None:
                    self.recorder.record(diagnosis, engine=self)
                _log.info(
                    "anomaly diagnosed",
                    extra={
                        "instance": self.instance_id,
                        "anomaly_start": event.anomaly.start,
                        "anomaly_end": event.anomaly.end,
                        "types": "|".join(event.anomaly.types),
                        "top_rsql": (
                            diagnosis.result.rsql_ids[0]
                            if diagnosis.result.rsql_ids
                            else ""
                        ),
                        "executed": diagnosis.executed,
                    },
                )
                if self.notify is not None:
                    self.notify(diagnosis)
        if self.selfmon is not None and self.detector.stream_time is not None:
            self.selfmon.sample(self.detector.stream_time)
        return produced

    def run_until_drained(self, max_idle_iterations: int = 25) -> list[Diagnosis]:
        """Step until both topics are exhausted.

        Guarded against a non-advancing broker: when the lag stays
        positive but :meth:`step` makes no progress for
        ``max_idle_iterations`` consecutive iterations (offsets frozen,
        nothing diagnosed), the loop logs a warning with the stuck topic
        lags and breaks rather than spinning forever.
        """
        produced: list[Diagnosis] = []
        idle = 0
        while self._log_consumer.lag > 0 or self.detector.consumer.lag > 0:
            offsets = self.consumer_offsets()
            step_produced = self.step()
            produced.extend(step_produced)
            advanced = self.consumer_offsets() != offsets
            if advanced or step_produced:
                idle = 0
                continue
            if self.resync_consumers():
                # A consumer was stranded behind a pruned log head;
                # after the resync the loop can re-evaluate the lag.
                idle = 0
                continue
            idle += 1
            if idle >= max_idle_iterations:
                _log.warning(
                    "broker not advancing; abandoning drain",
                    extra={
                        "instance": self.instance_id,
                        "idle_iterations": idle,
                        "query_logs_lag": self._log_consumer.lag,
                        "performance_metrics_lag": self.detector.consumer.lag,
                    },
                )
                self._count_skip("drain_stalled")
                break
        return produced

    # ------------------------------------------------------------------
    def _capture_metric_samples(self) -> None:
        """Mirror the detector's buffers for case assembly (bounded).

        Uses the detector's public read-only buffer views, and bounds the
        mirror with the detector's own retention window extended by δs:
        an anomaly can start up to ``window_s`` in the past and the case
        needs ``delta_start_s`` of context before that, so anything older
        than ``stream_time - (window_s + δs)`` can never be referenced
        again and is evicted (reported via the telemetry gauges).
        """
        for name, samples in self.detector.iter_buffer_samples():
            mirror = self._metric_samples.setdefault(name, {})
            mirror.update(samples)
        now = self.detector.stream_time
        resident = 0
        if now is not None:
            cutoff = now - (self.detector.window_s + self.config.delta_start_s)
            evicted = 0
            for mirror in self._metric_samples.values():
                stale = [t for t in mirror if t < cutoff]
                for t in stale:
                    del mirror[t]
                evicted += len(stale)
                resident += len(mirror)
            if evicted:
                self._m_samples_evicted.inc(evicted)
        self._g_sample_count.set(resident)

    def metric_window_snapshot(
        self, ts: int, te: int
    ) -> dict[str, list[tuple[int, float]]]:
        """Raw mirrored samples per metric within ``[ts, te)``.

        Evidence capture for the incident recorder: the mirror outlives
        the detector's own trim (it retains window_s + δs), so the
        triggering samples are still available when a diagnosis
        completes.  Metrics with no points in the window are omitted.
        """
        out: dict[str, list[tuple[int, float]]] = {}
        for name, samples in self._metric_samples.items():
            points = snapshot_samples(samples, ts, te)
            if points:
                out[name] = points
        return out

    def _diagnose(self, anomaly: DetectedAnomaly) -> Diagnosis | None:
        with self.tracer.span("service.diagnose") as span:
            try:
                diagnosis = self._diagnose_inner(anomaly)
            except DeadlineExceeded as exc:
                # The watchdog has already counted the timed-out stage;
                # abandon this diagnosis rather than blocking the loop.
                _log.warning(
                    "diagnosis abandoned: stage budget exceeded",
                    extra={
                        "instance": self.instance_id,
                        "stage": exc.stage,
                        "budget_s": exc.budget_s,
                    },
                )
                self._count_skip("deadline_exceeded")
                diagnosis = None
            # Stamp while the span is open so retained traces (and the
            # incident records built from them) carry the outcome.
            span.attrs["produced"] = diagnosis is not None
        if diagnosis is not None:
            diagnosis.data_freshness = self.freshness_snapshot()
            if self._last_publish_unix:
                self._h_diagnose_lag.observe(
                    max(0.0, time.time() - self._last_publish_unix)
                )
        return diagnosis

    def _diagnose_inner(self, anomaly: DetectedAnomaly) -> Diagnosis | None:
        from repro.dbsim.monitor import InstanceMetrics

        deadline = self._watchdog.deadline()
        ts = max(0, anomaly.start - self.config.delta_start_s)
        te = max(anomaly.end, anomaly.start + 1)
        with self._watchdog.stage(deadline, "assemble"):
            extra_reasons: list[str] = []
            quarantined = self._quarantined_since_diagnosis
            self._quarantined_since_diagnosis = 0
            if quarantined:
                extra_reasons.append(f"quarantined_logs:{quarantined}")
            assessment = self.degraded_policy.assess(
                self._metric_samples,
                ts,
                te,
                anomaly_start=anomaly.start,
                extra_reasons=tuple(extra_reasons),
            )
            ts = assessment.ts
            metrics = InstanceMetrics(
                {
                    name: self.degraded_policy.build_series(
                        samples, assessment, te, name=name
                    )
                    for name, samples in self._metric_samples.items()
                }
            )
            if "active_session" not in metrics:
                self._count_skip("no_session_metric")
                return None
            templates = aggregate_logstore(self.logstore, ts, te)
            if not templates.sql_ids:
                self._count_skip("no_templates")
                return None
            history: dict[str, dict[int, TimeSeries]] = {}
            if self.history_provider is not None:
                for sql_id in templates.sql_ids:
                    for days in self.config.pinsql.history_days:
                        series = self.history_provider(sql_id, days, ts, te)
                        if series is not None:
                            history.setdefault(sql_id, {})[days] = series
            case = AnomalyCase(
                metrics=metrics,
                templates=templates,
                logs=self.logstore,
                catalog=self.catalog,
                anomaly_start=anomaly.start,
                anomaly_end=min(anomaly.end, te),
                history=history,
            )
        with self._watchdog.stage(deadline, "analyze"):
            result = self._pinsql.analyze(case)
            verdict = classify_case(case)
            findings = self._template_findings(result)
        with self._watchdog.stage(deadline, "repair"):
            plan = self._repair.plan(case, result, anomaly_types=anomaly.types)
            executed = False
            if self.instance is not None and self.config.repair.auto_execute:
                try:
                    self.repair_breaker.call(
                        self._repair.execute, plan, self.instance, now_s=te
                    )
                except CircuitOpenError:
                    self._count_skip("repair_breaker_open")
                except Exception:
                    _log.warning(
                        "repair execution failed",
                        extra={"instance": self.instance_id},
                        exc_info=True,
                    )
                executed = bool(plan.executed)
        with self._watchdog.stage(deadline, "report"):
            report = render_report(case, result, plan=plan)
        return Diagnosis(
            anomaly=anomaly,
            case=case,
            result=result,
            report=report,
            plan=plan,
            executed=executed,
            verdict=verdict,
            findings=findings,
            instance_id=self.instance_id,
            confidence=assessment.confidence.value,
            degraded_reasons=assessment.reasons,
            advisories=tuple(plan.advisories),
        )

    def _template_findings(
        self, result: PinSQLResult, max_rsql: int = 10, max_hsql: int = 5
    ) -> dict[str, tuple[Finding, ...]]:
        """Static-analysis findings for the diagnosis's top templates.

        Only the ranked heads are analyzed (the analyzer caches, but the
        evidence chain should stay focused on what the record reports).
        """
        findings: dict[str, tuple[Finding, ...]] = {}
        for sql_id in [*result.rsql_ids[:max_rsql], *result.hsql_ids[:max_hsql]]:
            if sql_id in findings:
                continue
            info = self.catalog.get(sql_id)
            if info is None:
                continue
            template_findings = self.analyzer.analyze_template(info)
            if template_findings:
                findings[sql_id] = tuple(template_findings)
        return findings
