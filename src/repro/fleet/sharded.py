"""Process-sharded fleet runs (multicore scaling past the GIL).

The fleet's thread pool keeps one process's instances concurrent, but
PinSQL analysis is CPU-bound Python: threads interleave under the GIL
instead of truly overlapping.  For real multicore scaling the fleet is
sharded across *processes*: the parent partitions instances with the
same :func:`~repro.fleet.scheduler.stable_shard` hash, ships each shard
its instances' raw message streams (plain picklable records — brokers
and engines are rebuilt inside the worker), and merges the per-shard
diagnosis counts.

This mirrors production, where diagnosis workers are separate machines
consuming a shared Kafka: the message stream is the interface, never
live Python state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.collection.collector import METRIC_TOPIC, QUERY_TOPIC
from repro.collection.stream import Broker, instance_topic
from repro.fleet.engine import ServiceConfig
from repro.fleet.scheduler import stable_shard
from repro.fleet.service import FleetConfig, FleetDiagnosisService

__all__ = ["InstanceFeed", "ShardTask", "feed_from_broker", "run_shard", "run_sharded"]


@dataclass
class InstanceFeed:
    """One instance's collected streams as picklable ``(key, value)`` records."""

    instance_id: str
    query_records: list[tuple] = field(default_factory=list)
    metric_records: list[tuple] = field(default_factory=list)


@dataclass
class ShardTask:
    """Everything one worker process needs to diagnose its shard."""

    feeds: list[InstanceFeed]
    config: ServiceConfig | None = None
    #: When set, the shard persists every diagnosis to an
    #: :class:`~repro.incidents.store.IncidentStore` rooted here.  Each
    #: worker process must get its OWN directory — JSONL segments are
    #: single-writer; :func:`run_sharded` assigns ``shard-NN`` subdirs
    #: and health reporting merges them back with ``discover_stores``.
    incident_dir: str | None = None


def feed_from_broker(broker: Broker, instance_id: str) -> InstanceFeed:
    """Capture an instance's topic partitions as a shippable feed."""
    query = broker.read(instance_topic(QUERY_TOPIC, instance_id), 0, 1 << 31)
    metric = broker.read(instance_topic(METRIC_TOPIC, instance_id), 0, 1 << 31)
    return InstanceFeed(
        instance_id=instance_id,
        query_records=[(m.key, m.value) for m in query],
        metric_records=[(m.key, m.value) for m in metric],
    )


def run_shard(task: ShardTask) -> dict[str, int]:
    """Diagnose one shard in-process; returns diagnoses per instance.

    Module-level and single-argument so ``multiprocessing.Pool.map``
    can pickle it.
    """
    broker = Broker()
    recorder = None
    if task.incident_dir is not None:
        from repro.incidents import IncidentRecorder, IncidentStore

        recorder = IncidentRecorder(IncidentStore(task.incident_dir))
    service = FleetDiagnosisService(
        broker,
        config=FleetConfig(service=task.config or ServiceConfig(), workers=1),
        recorder=recorder,
    )
    for feed in task.feeds:
        service.register_instance(feed.instance_id)
        for key, value in feed.query_records:
            broker.publish(instance_topic(QUERY_TOPIC, feed.instance_id), key, value)
        for key, value in feed.metric_records:
            broker.publish(instance_topic(METRIC_TOPIC, feed.instance_id), key, value)
    service.run_until_drained()
    return {
        instance_id: len(service.diagnoses_for(instance_id))
        for instance_id in service.instance_ids
    }


def run_sharded(
    feeds: list[InstanceFeed],
    processes: int,
    config: ServiceConfig | None = None,
    incident_dir: str | None = None,
) -> dict[str, int]:
    """Partition feeds over worker processes; merge diagnosis counts.

    ``processes <= 1`` runs everything inline (no multiprocessing), so
    callers can use one code path regardless of available cores.

    When ``incident_dir`` is given, every shard records incidents into
    its own subdirectory (``shard-00``, ``shard-01``, …) of that path;
    ``repro incidents health <dir>`` (or
    :func:`repro.incidents.load_health`) merges them afterwards.
    """
    if processes <= 1:
        shard_dir = None
        if incident_dir is not None:
            shard_dir = str(Path(incident_dir) / "shard-00")
        return run_shard(
            ShardTask(feeds=feeds, config=config, incident_dir=shard_dir)
        )
    shards: list[list[InstanceFeed]] = [[] for _ in range(processes)]
    for feed in feeds:
        shards[stable_shard(feed.instance_id, processes)].append(feed)
    tasks = [
        ShardTask(
            feeds=s,
            config=config,
            incident_dir=(
                str(Path(incident_dir) / f"shard-{idx:02d}")
                if incident_dir is not None
                else None
            ),
        )
        for idx, s in enumerate(shards)
        if s
    ]
    import multiprocessing

    merged: dict[str, int] = {}
    with multiprocessing.Pool(processes=min(processes, len(tasks))) as pool:
        for counts in pool.map(run_shard, tasks):
            merged.update(counts)
    return merged
