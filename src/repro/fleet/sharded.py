"""Process-sharded fleet runs (multicore scaling past the GIL).

The fleet's thread pool keeps one process's instances concurrent, but
PinSQL analysis is CPU-bound Python: threads interleave under the GIL
instead of truly overlapping.  For real multicore scaling the fleet is
sharded across *processes*: the parent partitions instances with the
same :func:`~repro.fleet.scheduler.stable_shard` hash, ships each
worker its instances' collected streams, and merges the per-shard
diagnosis counts.

``processes > 1`` runs on the columnar dataplane: feeds are encoded
into block frames and dispatched one instance at a time to the
long-lived processes of a
:class:`~repro.fleet.workers.PersistentWorkerPool` (see that module).
``processes <= 1`` replays in-process through the legacy per-record
path, byte-for-byte identical to what :func:`run_shard` has always
produced — the shared code path callers use regardless of cores.

This mirrors production, where diagnosis workers are separate machines
consuming a shared Kafka: the message stream is the interface, never
live Python state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - chaos wraps fleet, import lazily
    from repro.chaos.plan import FaultPlan

from repro.collection.collector import METRIC_TOPIC, QUERY_TOPIC
from repro.collection.stream import Broker, instance_topic
from repro.fleet.engine import ServiceConfig
from repro.fleet.scheduler import stable_shard
from repro.fleet.service import FleetConfig, FleetDiagnosisService
from repro.telemetry import get_logger, get_registry

_log = get_logger("fleet")

__all__ = [
    "InstanceFeed",
    "ShardTask",
    "feed_from_broker",
    "run_shard",
    "run_shard_supervised",
    "run_sharded",
]


@dataclass
class InstanceFeed:
    """One instance's collected streams as picklable ``(key, value)`` records."""

    instance_id: str
    query_records: list[tuple] = field(default_factory=list)
    metric_records: list[tuple] = field(default_factory=list)


@dataclass
class ShardTask:
    """Everything one worker process needs to diagnose its shard."""

    feeds: list[InstanceFeed]
    config: ServiceConfig | None = None
    #: When set, the shard persists every diagnosis to an
    #: :class:`~repro.incidents.store.IncidentStore` rooted here.  Each
    #: worker process must get its OWN directory — JSONL segments are
    #: single-writer; :func:`run_sharded` assigns ``shard-NN`` subdirs
    #: and health reporting merges them back with ``discover_stores``.
    incident_dir: str | None = None
    #: Optional chaos plan: the shard replays its feeds through a
    #: :class:`~repro.chaos.ChaosBroker` and may crash outright
    #: (``worker_crash``) so the parent's supervised restarts are
    #: exercised.  Plans are plain frozen dataclasses, hence picklable.
    fault_plan: "FaultPlan | None" = None
    #: Stable shard identity (the crash decision keys on it).
    shard_key: str = "shard-00"
    #: Which supervised attempt this is (bumped by the restart loop).
    attempt: int = 0


def feed_from_broker(broker: Broker, instance_id: str) -> InstanceFeed:
    """Capture an instance's topic partitions as a shippable feed."""
    query = broker.read(instance_topic(QUERY_TOPIC, instance_id), 0, 1 << 31)
    metric = broker.read(instance_topic(METRIC_TOPIC, instance_id), 0, 1 << 31)
    return InstanceFeed(
        instance_id=instance_id,
        query_records=[(m.key, m.value) for m in query],
        metric_records=[(m.key, m.value) for m in metric],
    )


def run_shard(task: ShardTask) -> dict[str, int]:
    """Diagnose one shard in-process; returns diagnoses per instance.

    Module-level and single-argument so ``multiprocessing.Pool.map``
    can pickle it.
    """
    broker = Broker()
    publish_broker = broker
    fault_hook = None
    chaos_broker = None
    if task.fault_plan is not None:
        from repro.chaos.injector import FaultInjector, InjectedWorkerCrash

        injector = FaultInjector(task.fault_plan)
        if injector.should_crash_shard(task.shard_key, task.attempt):
            raise InjectedWorkerCrash(
                f"injected crash of {task.shard_key} (attempt {task.attempt})"
            )
        chaos_broker = injector.wrap_broker(broker)
        publish_broker = chaos_broker
        fault_hook = injector.fleet_hook()
    recorder = None
    if task.incident_dir is not None:
        from repro.incidents import IncidentRecorder, IncidentStore

        recorder = IncidentRecorder(IncidentStore(task.incident_dir))
    service = FleetDiagnosisService(
        broker,
        config=FleetConfig(service=task.config or ServiceConfig(), workers=1),
        recorder=recorder,
        fault_hook=fault_hook,
    )
    for feed in task.feeds:
        service.register_instance(feed.instance_id)
        for key, value in feed.query_records:
            publish_broker.publish(
                instance_topic(QUERY_TOPIC, feed.instance_id), key, value
            )
        for key, value in feed.metric_records:
            publish_broker.publish(
                instance_topic(METRIC_TOPIC, feed.instance_id), key, value
            )
    if chaos_broker is not None:
        chaos_broker.flush()
    service.run_until_drained()
    return {
        instance_id: len(service.diagnoses_for(instance_id))
        for instance_id in service.instance_ids
    }


def _count_shard_restart(shard_key: str) -> None:
    get_registry().counter(
        "fleet_worker_restarts_total",
        help="Supervised restarts of crashed fleet worker steps.",
        instance=shard_key,
    ).inc()


def run_shard_supervised(
    task: ShardTask, max_restarts: int = 2
) -> dict[str, int]:
    """Run one shard with bounded supervised restarts.

    A crashed shard (chaos-injected or real) is restarted with a bumped
    ``attempt`` up to ``max_restarts`` times; a shard that still cannot
    complete is abandoned with a warning (its instances report zero
    diagnoses) rather than failing the whole fleet run.
    """
    while True:
        try:
            return run_shard(task)
        except Exception:
            if task.attempt >= max_restarts:
                _log.warning(
                    "shard failed after supervised restarts; abandoning",
                    extra={"shard": task.shard_key, "attempts": task.attempt},
                    exc_info=True,
                )
                return {feed.instance_id: 0 for feed in task.feeds}
            task = replace(task, attempt=task.attempt + 1)
            _count_shard_restart(task.shard_key)


def run_sharded(
    feeds: list[InstanceFeed],
    processes: int,
    config: ServiceConfig | None = None,
    incident_dir: str | None = None,
    fault_plan: "FaultPlan | None" = None,
    max_restarts: int = 2,
) -> dict[str, int]:
    """Partition feeds over worker processes; merge diagnosis counts.

    ``processes <= 1`` runs everything inline (no multiprocessing), so
    callers can use one code path regardless of available cores.

    When ``incident_dir`` is given, every shard records incidents into
    its own subdirectory (``shard-00``, ``shard-01``, …) of that path;
    ``repro incidents health <dir>`` (or
    :func:`repro.incidents.load_health`) merges them afterwards.

    Shard crashes — chaos-injected via ``fault_plan`` or real — are
    supervised by the parent: each crashed work item is resubmitted
    with a bumped attempt up to ``max_restarts`` times (counted into
    ``fleet_worker_restarts_total``) before being abandoned.

    ``processes > 1`` runs on a
    :class:`~repro.fleet.workers.PersistentWorkerPool`: feeds are
    columnarised into encoded block frames, and long-lived worker
    processes pull one instance-sized work item at a time instead of
    receiving their whole shard up front.  ``feeds`` may mix
    :class:`InstanceFeed` and pre-columnarised
    :class:`~repro.fleet.workers.BlockFeed` entries.
    """
    if processes <= 1:
        shard_dir = None
        if incident_dir is not None:
            shard_dir = str(Path(incident_dir) / "shard-00")
        return run_shard_supervised(
            ShardTask(
                feeds=feeds,
                config=config,
                incident_dir=shard_dir,
                fault_plan=fault_plan,
            ),
            max_restarts=max_restarts,
        )
    from repro.fleet.workers import (
        BlockFeed,
        PersistentWorkerPool,
        WorkItem,
        columnarize_feed,
    )

    items = []
    for feed in feeds:
        idx = stable_shard(feed.instance_id, processes)
        block_feed = feed if isinstance(feed, BlockFeed) else columnarize_feed(feed)
        items.append(
            WorkItem(
                feed=block_feed,
                config=config,
                incident_dir=(
                    str(Path(incident_dir) / f"shard-{idx:02d}")
                    if incident_dir is not None
                    else None
                ),
                fault_plan=fault_plan,
                shard_key=f"shard-{idx:02d}",
            )
        )
    pool = PersistentWorkerPool(processes=processes, max_restarts=max_restarts)
    return pool.run(items)
