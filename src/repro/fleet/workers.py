"""Persistent shard worker processes fed columnar work items.

The first multiprocess fleet runner shipped each shard its whole raw
message stream up front and paid per-record pickling on the way over.
This module replaces that with a pull model built for the columnar
dataplane:

- An :class:`InstanceFeed` is *columnarised* into a :class:`BlockFeed`
  — encoded :class:`~repro.collection.blocks.QueryLogBlock` /
  :class:`~repro.collection.blocks.MetricBlock` frames (plain
  ``bytes``, trivially picklable) plus whatever legacy records could
  not be converted (they keep flowing through the old wire format and
  its quarantine).
- A :class:`PersistentWorkerPool` spawns long-lived worker processes
  once and feeds them :class:`WorkItem` units (one instance each)
  through per-worker task queues.  Workers *pull* their next item when
  the previous one completes; the parent keeps exactly one item in
  flight per worker.
- Supervision lives in the parent: a worker process that dies
  mid-item (chaos ``worker_crash`` or a real fault) is respawned and
  its unfinished item resubmitted with a bumped attempt, bounded by
  ``max_restarts``; an item that keeps crashing is abandoned (zero
  diagnoses, counted into ``fleet_worker_failures_total``) instead of
  failing the fleet run.
- Observability crosses the process boundary: each item runs against a
  *private* registry and ships its finished diagnosis spans plus a
  registry snapshot back over the result channel (a clean per-item
  delta — persistent workers never double-count across items).  The
  parent adopts the spans into its tracer and folds the snapshot into
  its registry, so ``repro obs`` shows one fleet-wide view; an item
  whose process dies before shipping is counted into
  ``span_export_dropped_total`` and replaced by a synthetic
  ``fleet.worker_crash`` span linked to the feed's trace context.

Worker routing uses the same
:func:`~repro.fleet.scheduler.stable_shard` hash as the thread-pool
scheduler, so each incident directory (``shard-NN``) keeps a single
writer at any moment.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.collection.blocks import (
    BlockDecodeError,
    MetricBlock,
    QueryLogBlock,
    decode_block,
    encode_block,
    metric_block_from_records,
    query_block_from_batches,
    split_query_block,
)
from repro.collection.collector import DEFAULT_BLOCK_ROWS, METRIC_TOPIC, QUERY_TOPIC
from repro.collection.quarantine import (
    quarantine,
    validate_metric_record,
    validate_query_record,
)
from repro.collection.stream import Broker, instance_topic
from repro.dbsim.query import SecondBatch
from repro.fleet.engine import ServiceConfig
from repro.fleet.scheduler import stable_shard
from repro.fleet.service import FleetConfig, FleetDiagnosisService
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    TraceContext,
    Tracer,
    get_logger,
    get_registry,
    get_tracer,
)

if TYPE_CHECKING:  # pragma: no cover - chaos wraps fleet, import lazily
    from repro.chaos.plan import FaultPlan

_log = get_logger("fleet")

__all__ = [
    "BlockFeed",
    "PersistentWorkerPool",
    "WorkItem",
    "block_feed_from_broker",
    "columnarize_feed",
    "execute_work_item",
    "process_work_item",
]

#: Exit code a worker uses for a chaos-injected hard crash.
_CRASH_EXIT_CODE = 17


@dataclass
class BlockFeed:
    """One instance's collected streams as encoded columnar frames.

    ``query_payloads`` / ``metric_payloads`` hold
    :func:`~repro.collection.blocks.encode_block` frames — plain bytes,
    so shipping a feed to a worker process pickles a handful of
    buffers instead of thousands of per-record dicts.  Records that
    could not be columnarised (malformed, foreign shapes) ride along
    in ``query_records`` / ``metric_records`` and replay through the
    legacy wire format, where validation quarantines them exactly as
    before.
    """

    instance_id: str
    query_payloads: list[bytes] = field(default_factory=list)
    metric_payloads: list[bytes] = field(default_factory=list)
    query_records: list[tuple] = field(default_factory=list)
    metric_records: list[tuple] = field(default_factory=list)
    #: Trace context of the first stamped block in the feed — the
    #: publish span the worker's diagnosis spans parent under.  Kept on
    #: the feed (not just in block headers) so the parent can link a
    #: synthetic crash span to the trace when a worker dies before
    #: shipping any spans of its own.
    trace: TraceContext | None = None
    #: Raw SQL exemplars for the instance's templates, so the worker's
    #: engine runs the same static analysis the in-process path gets
    #: from ``register_statement``.
    statements: list[str] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        """Encoded payload bytes shipped for this feed."""
        return sum(len(p) for p in self.query_payloads) + sum(
            len(p) for p in self.metric_payloads
        )

    @property
    def n_blocks(self) -> int:
        return len(self.query_payloads) + len(self.metric_payloads)


def columnarize_feed(feed: Any, block_rows: int = DEFAULT_BLOCK_ROWS) -> "BlockFeed":
    """Convert an :class:`~repro.fleet.sharded.InstanceFeed` to blocks.

    Valid legacy records are gathered into columnar blocks (row-bounded
    by ``block_rows``); records already carried as blocks are re-encoded
    as-is.  Anything unconvertible stays a legacy record so the replay
    path can quarantine it.
    """
    out = BlockFeed(instance_id=feed.instance_id)
    batches: list[SecondBatch] = []
    for key, value in feed.query_records:
        if isinstance(value, QueryLogBlock):
            out.query_payloads.append(encode_block(value))
            if out.trace is None and value.trace is not None:
                out.trace = value.trace
        elif validate_query_record(value) is None:
            batches.append(
                SecondBatch(
                    sql_id=str(value["sql_id"]),
                    arrive_ms=np.asarray(value["arrive_ms"], dtype=np.int64),
                    response_ms=np.asarray(value["response_ms"], dtype=np.float64),
                    examined_rows=np.asarray(
                        value["examined_rows"], dtype=np.float64
                    ),
                )
            )
        else:
            out.query_records.append((key, value))
    if batches:
        block = query_block_from_batches(batches, instance=feed.instance_id)
        out.query_payloads.extend(
            encode_block(piece) for piece in split_query_block(block, block_rows)
        )
    metric_dicts: list[dict] = []
    for key, value in feed.metric_records:
        if isinstance(value, MetricBlock):
            out.metric_payloads.append(encode_block(value))
            if out.trace is None and value.trace is not None:
                out.trace = value.trace
        elif validate_metric_record(value) is None:
            metric_dicts.append(dict(value))
        else:
            out.metric_records.append((key, value))
    if metric_dicts:
        out.metric_payloads.append(
            encode_block(
                metric_block_from_records(metric_dicts, instance=feed.instance_id)
            )
        )
    return out


def block_feed_from_broker(
    broker: Broker, instance_id: str, block_rows: int = DEFAULT_BLOCK_ROWS
) -> "BlockFeed":
    """Capture an instance's topic partitions as a columnar feed."""
    from repro.fleet.sharded import feed_from_broker

    return columnarize_feed(feed_from_broker(broker, instance_id), block_rows)


@dataclass
class WorkItem:
    """One pull-scheduled unit of fleet work: diagnose one instance."""

    feed: BlockFeed
    config: ServiceConfig | None = None
    #: Incident store directory of the *worker* this item routes to
    #: (``shard-NN``) — JSONL segments are single-writer, and routing
    #: by :func:`stable_shard` keeps one live writer per directory.
    incident_dir: str | None = None
    fault_plan: "FaultPlan | None" = None
    shard_key: str = "shard-00"
    attempt: int = 0

    @property
    def scope(self) -> str:
        """Stable identity the chaos crash decision keys on."""
        return f"{self.shard_key}/{self.feed.instance_id}"


def _export_envelope(
    service: FleetDiagnosisService,
    registry: MetricsRegistry,
    counts: dict[str, int] | None,
) -> dict[str, Any]:
    """The result-channel payload of one work item.

    ``spans`` are the finished diagnosis traces of every engine (plain
    dicts via :func:`~repro.telemetry.span_to_dict`); ``telemetry`` is
    the item's private-registry snapshot — a delta the parent folds in
    with :meth:`~repro.telemetry.MetricsRegistry.merge_snapshot`.
    """
    spans: list[dict[str, Any]] = []
    for instance_id in service.instance_ids:
        spans.extend(service.engine(instance_id).tracer.export_roots(clear=True))
    return {
        "counts": counts or {},
        "spans": spans,
        "telemetry": registry.snapshot(),
    }


def execute_work_item(
    item: WorkItem, registry: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Diagnose one work item in-process; returns its export envelope.

    The worker-side body of the pool: rebuild a broker, replay the
    feed's columnar frames (and legacy leftovers) through it — via the
    chaos facade when a fault plan is armed, so drop/corrupt/skew and
    friends apply to batch messages — and drain a single-instance
    fleet service over the result.

    Everything runs against a private registry (unless one is passed),
    so the returned snapshot is a clean per-item delta and the parent's
    repeated merges never double-count a persistent worker's history.
    A drain that raises still attaches the partial envelope to the
    exception (``partial_export``) so the worker loop can flush the
    spans completed before the failure.
    """
    registry = registry if registry is not None else MetricsRegistry()
    broker = Broker(registry=registry)
    publish_broker: Any = broker
    fault_hook = None
    chaos_broker = None
    if item.fault_plan is not None:
        from repro.chaos.injector import FaultInjector, InjectedWorkerCrash

        injector = FaultInjector(item.fault_plan)
        if injector.should_crash_shard(item.scope, item.attempt):
            raise InjectedWorkerCrash(
                f"injected crash of {item.scope} (attempt {item.attempt})"
            )
        chaos_broker = injector.wrap_broker(broker)
        publish_broker = chaos_broker
        fault_hook = injector.fleet_hook()
    recorder = None
    if item.incident_dir is not None:
        from repro.incidents import IncidentRecorder, IncidentStore

        recorder = IncidentRecorder(IncidentStore(item.incident_dir))
    service = FleetDiagnosisService(
        broker,
        config=FleetConfig(service=item.config or ServiceConfig(), workers=1),
        registry=registry,
        recorder=recorder,
        fault_hook=fault_hook,
    )
    feed = item.feed
    engine = service.register_instance(feed.instance_id)
    if feed.trace is not None:
        # Legacy-record-only feeds carry no per-block context; the
        # feed-level one still parents the worker's diagnosis spans.
        engine.tracer.set_remote_parent(feed.trace)
    for statement in feed.statements:
        engine.register_statement(statement)
    dispatch_lag = registry.histogram(
        "pipeline_lag_seconds",
        help="Block age per pipeline stage (publish wall-time to now).",
        buckets=DEFAULT_LATENCY_BUCKETS,
        stage="dispatch",
        instance=feed.instance_id,
    )
    query_topic = instance_topic(QUERY_TOPIC, feed.instance_id)
    metric_topic = instance_topic(METRIC_TOPIC, feed.instance_id)
    for topic, payloads in (
        (query_topic, feed.query_payloads),
        (metric_topic, feed.metric_payloads),
    ):
        for payload in payloads:
            try:
                block = decode_block(payload)
            except BlockDecodeError as exc:
                quarantine(broker, topic, payload, f"undecodable_block:{exc}")
                continue
            if block.created_unix:
                dispatch_lag.observe(max(0.0, time.time() - block.created_unix))
            publish_broker.publish_block(topic, block)
    for key, value in feed.query_records:
        publish_broker.publish(query_topic, key, value)
    for key, value in feed.metric_records:
        publish_broker.publish(metric_topic, key, value)
    if chaos_broker is not None:
        chaos_broker.flush()
    try:
        service.run_until_drained()
    except BaseException as exc:
        exc.partial_export = _export_envelope(service, registry, counts=None)  # type: ignore[attr-defined]
        raise
    counts = {
        instance_id: len(service.diagnoses_for(instance_id))
        for instance_id in service.instance_ids
    }
    return _export_envelope(service, registry, counts=counts)


def process_work_item(item: WorkItem) -> dict[str, int]:
    """Diagnose one work item in-process; returns diagnoses per instance.

    The counts-only façade over :func:`execute_work_item`, kept for
    callers (and equivalence tests) that only care about outcomes.
    """
    return execute_work_item(item)["counts"]


def _worker_main(worker_idx: int, task_queue: Any, result_queue: Any) -> None:
    """Long-lived worker loop: pull an item, process, report, repeat.

    A chaos-injected crash kills the *process* (``os._exit``) so the
    parent's supervision — respawn plus resubmission of the unfinished
    item — is exercised for real, not simulated by an exception.
    """
    while True:
        item = task_queue.get()
        if item is None:
            return
        try:
            export = execute_work_item(item)
        except BaseException as exc:  # noqa: BLE001 - worker must not die silently
            from repro.chaos.injector import InjectedWorkerCrash

            if isinstance(exc, InjectedWorkerCrash):
                os._exit(_CRASH_EXIT_CODE)
            # Ship whatever the item completed before failing: the
            # parent flushes these spans during the supervised restart
            # instead of losing the whole trace.
            result_queue.put(
                (
                    "error",
                    worker_idx,
                    item.feed.instance_id,
                    {
                        "error": repr(exc),
                        "export": getattr(exc, "partial_export", None),
                    },
                )
            )
            continue
        result_queue.put(("done", worker_idx, item.feed.instance_id, export))


class PersistentWorkerPool:
    """A fixed set of long-lived worker processes pulling work items.

    Unlike a ``Pool.map`` over whole-shard tasks, workers here stay
    alive across items and pull the next one only when the previous
    completes — the parent keeps exactly one item in flight per worker,
    so a crash loses at most one item and restart resubmission is
    precise.  Items route to workers by ``stable_shard(instance_id,
    processes)``; pass items whose ``incident_dir``/``shard_key``
    follow the same hash (as :func:`repro.fleet.sharded.run_sharded`
    does) to keep incident stores single-writer.
    """

    def __init__(
        self,
        processes: int,
        max_restarts: int = 2,
        registry: MetricsRegistry | None = None,
        poll_interval_s: float = 0.2,
        tracer: Tracer | None = None,
    ) -> None:
        if processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = int(processes)
        self.max_restarts = int(max_restarts)
        self.registry = registry or get_registry()
        self.poll_interval_s = float(poll_interval_s)
        #: Receives the spans workers ship back; defaults to the
        #: process tracer so ``repro obs`` shows the fleet-wide tree.
        if tracer is not None:
            self.tracer = tracer
        elif registry is None:
            self.tracer = get_tracer()
        else:
            self.tracer = Tracer(registry=self.registry)

    # -- telemetry -----------------------------------------------------
    def _count_item(self, status: str) -> None:
        self.registry.counter(
            "fleet_work_items_total",
            help="Work items through the persistent pool, by outcome.",
            status=status,
        ).inc()

    def _count_bytes(self, nbytes: int) -> None:
        self.registry.counter(
            "fleet_shard_bytes_shipped_total",
            help="Encoded block bytes shipped to shard workers.",
        ).inc(nbytes)

    def _count_restart(self, shard_key: str) -> None:
        self.registry.counter(
            "fleet_worker_restarts_total",
            help="Supervised restarts of crashed fleet worker steps.",
            instance=shard_key,
        ).inc()

    def _count_failure(self, instance_id: str) -> None:
        self.registry.counter(
            "fleet_worker_failures_total",
            help="Instance steps abandoned after exhausting "
            "supervised restarts.",
            instance=instance_id,
        ).inc()

    # -- cross-process observability ----------------------------------
    def _merge_export(self, export: Any) -> None:
        """Fold a worker's export envelope into the parent's view."""
        if not isinstance(export, dict):
            return
        spans = export.get("spans")
        if spans:
            adopted = self.tracer.adopt(spans)
            if adopted:
                self.registry.counter(
                    "fleet_spans_imported_total",
                    help="Spans adopted from shard worker processes.",
                ).inc(adopted)
        snapshot = export.get("telemetry")
        if isinstance(snapshot, dict):
            self.registry.merge_snapshot(snapshot)

    def _flush_crashed_item(self, item: WorkItem, exitcode: Any) -> None:
        """Account for spans lost with a dead worker process.

        The spans themselves are unrecoverable (the process died before
        shipping), so the loss is counted and a synthetic error span —
        linked to the feed's trace context when it has one — keeps the
        crash visible in the fleet span tree.
        """
        self.registry.counter(
            "span_export_dropped_total",
            help="Work items whose worker died before exporting spans.",
            instance=item.feed.instance_id,
        ).inc()
        attrs: dict[str, Any] = {
            "status": "error",
            "error": "worker_crash",
            "instance": item.feed.instance_id,
            "shard": item.shard_key,
            "exitcode": exitcode,
        }
        if item.feed.trace is not None:
            attrs["trace_id"] = item.feed.trace.trace_id
            attrs["parent_span_id"] = item.feed.trace.span_id
        self.tracer.adopt(
            [{"name": "fleet.worker_crash", "elapsed": None,
              "attrs": attrs, "children": []}]
        )

    # -- run loop ------------------------------------------------------
    def run(self, items: list[WorkItem]) -> dict[str, int]:
        """Process every item; returns merged diagnosis counts."""
        if not items:
            return {}
        import multiprocessing

        ctx = multiprocessing.get_context()
        n = self.processes
        pending: list[deque[WorkItem]] = [deque() for _ in range(n)]
        for item in items:
            pending[stable_shard(item.feed.instance_id, n)].append(item)
            self._count_bytes(item.feed.nbytes)
        result_queue = ctx.Queue()
        task_queues: dict[int, Any] = {}
        workers: dict[int, Any] = {}
        inflight: dict[int, WorkItem | None] = {}
        for idx in range(n):
            if not pending[idx]:
                continue
            task_queues[idx] = ctx.Queue()
            workers[idx] = ctx.Process(
                target=_worker_main,
                args=(idx, task_queues[idx], result_queue),
                daemon=True,
            )
            workers[idx].start()
            inflight[idx] = None
            self._submit(idx, task_queues, pending, inflight)
        merged: dict[str, int] = {}
        remaining = len(items)
        while remaining > 0:
            try:
                kind, idx, instance_id, payload = result_queue.get(
                    timeout=self.poll_interval_s
                )
            except queue_mod.Empty:
                remaining -= self._sweep_dead_workers(
                    ctx, result_queue, task_queues, workers, pending, inflight, merged
                )
                continue
            if kind == "done":
                merged.update(payload.get("counts", {}))
                self._merge_export(payload)
                self._count_item("completed")
                inflight[idx] = None
                remaining -= 1
                self._submit(idx, task_queues, pending, inflight)
            elif kind == "error":
                _log.warning(
                    "work item failed in persistent worker",
                    extra={
                        "worker": idx,
                        "instance": instance_id,
                        "error": payload.get("error")
                        if isinstance(payload, dict)
                        else payload,
                    },
                )
                if isinstance(payload, dict):
                    # Flush the spans the item completed before failing.
                    self._merge_export(payload.get("export"))
                item = inflight[idx]
                inflight[idx] = None
                if item is not None:
                    remaining -= self._requeue_or_abandon(idx, item, pending, merged)
                self._submit(idx, task_queues, pending, inflight)
        for idx, task_queue in task_queues.items():
            worker = workers.get(idx)
            if worker is not None and worker.is_alive():
                task_queue.put(None)
        for worker in workers.values():
            worker.join(timeout=5)
            if worker.is_alive():  # pragma: no cover - orderly shutdown backstop
                worker.terminate()
                worker.join(timeout=5)
        return merged

    def _submit(
        self,
        idx: int,
        task_queues: dict[int, Any],
        pending: list[deque[WorkItem]],
        inflight: dict[int, WorkItem | None],
    ) -> None:
        if inflight.get(idx) is None and pending[idx]:
            item = pending[idx].popleft()
            inflight[idx] = item
            task_queues[idx].put(item)
            self._count_item("submitted")

    def _requeue_or_abandon(
        self,
        idx: int,
        item: WorkItem,
        pending: list[deque[WorkItem]],
        merged: dict[str, int],
    ) -> int:
        """Resubmit a failed item (attempt bumped) or abandon it.

        Returns 1 when the item is finished (abandoned) so the caller
        can decrement its remaining count, 0 when it was requeued.
        """
        if item.attempt >= self.max_restarts:
            _log.warning(
                "work item failed after supervised restarts; abandoning",
                extra={"shard": item.shard_key, "instance": item.feed.instance_id},
            )
            merged[item.feed.instance_id] = 0
            self._count_failure(item.feed.instance_id)
            self._count_item("abandoned")
            return 1
        pending[idx].appendleft(replace(item, attempt=item.attempt + 1))
        self._count_restart(item.shard_key)
        self._count_item("resubmitted")
        return 0

    def _sweep_dead_workers(
        self,
        ctx: Any,
        result_queue: Any,
        task_queues: dict[int, Any],
        workers: dict[int, Any],
        pending: list[deque[WorkItem]],
        inflight: dict[int, WorkItem | None],
        merged: dict[str, int],
    ) -> int:
        """Respawn dead workers, resubmitting their unfinished item.

        Returns how many items were finished (abandoned) during the
        sweep so the run loop can decrement its remaining count.
        """
        finished = 0
        for idx in list(workers):
            worker = workers[idx]
            if worker.is_alive():
                continue
            worker.join()
            item = inflight.get(idx)
            inflight[idx] = None
            _log.warning(
                "persistent worker died; respawning",
                extra={
                    "worker": idx,
                    "exitcode": worker.exitcode,
                    "instance": item.feed.instance_id if item else None,
                },
            )
            if item is not None:
                self._flush_crashed_item(item, worker.exitcode)
                finished += self._requeue_or_abandon(idx, item, pending, merged)
            if not pending[idx]:
                del workers[idx]
                del task_queues[idx]
                continue
            task_queues[idx] = ctx.Queue()
            workers[idx] = ctx.Process(
                target=_worker_main,
                args=(idx, task_queues[idx], result_queue),
                daemon=True,
            )
            workers[idx].start()
            self._submit(idx, task_queues, pending, inflight)
        return finished
