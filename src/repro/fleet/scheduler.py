"""Deterministic shard assignment for the fleet's diagnosis workers.

Instances are spread over ``n_shards`` workers by hashing the instance
id — stable across processes and Python invocations (``blake2b``, not
the per-process-randomised builtin ``hash``), so a fleet restarted with
the same shard count re-derives the same placement, and the sharded
multi-process runner can compute the partition on the parent side and
ship each shard's instances to its worker.
"""

from __future__ import annotations

from hashlib import blake2b

__all__ = ["stable_shard", "DiagnosisScheduler"]


def stable_shard(instance_id: str, n_shards: int) -> int:
    """Deterministic shard index in ``[0, n_shards)`` for an instance."""
    if n_shards <= 0:
        raise ValueError("n_shards must be positive")
    digest = blake2b(instance_id.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % n_shards


class DiagnosisScheduler:
    """Maps instances to a fixed number of diagnosis shards."""

    def __init__(self, n_shards: int) -> None:
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.n_shards = int(n_shards)

    def shard_of(self, instance_id: str) -> int:
        return stable_shard(instance_id, self.n_shards)

    def partition(self, instance_ids: list[str]) -> list[list[str]]:
        """Instance ids grouped by shard (index = shard id).

        Every shard is present (possibly empty) and each shard preserves
        the input order of its instances.
        """
        shards: list[list[str]] = [[] for _ in range(self.n_shards)]
        for instance_id in instance_ids:
            shards[self.shard_of(instance_id)].append(instance_id)
        return shards

    def imbalance(self, instance_ids: list[str]) -> float:
        """Max shard load over the ideal even load (1.0 = perfect)."""
        if not instance_ids:
            return 1.0
        loads = [len(s) for s in self.partition(instance_ids)]
        ideal = len(instance_ids) / self.n_shards
        return max(loads) / ideal
