"""Instance resource model: CPU, IOPS, memory / buffer pool.

The CPU follows a processor-sharing discipline with backlog: each second
the engine submits the CPU demand (milliseconds of CPU work) of newly
arrived queries; demand beyond the second's capacity is carried over, so
sustained overload builds a queue and response times — and therefore the
active session — grow, which is exactly the "intermittent slow queries
pile up" phenomenon the paper's category-2 anomalies exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceModel", "ResourceUsage"]


@dataclass(frozen=True)
class ResourceUsage:
    """Resource utilisation observed for one simulated second."""

    cpu_usage: float      # percent, 0–100
    iops_usage: float     # percent of IOPS capacity, 0–100
    mem_usage: float      # percent, buffer-pool occupancy
    cpu_slowdown: float   # multiplicative response-time factor, >= 1
    io_slowdown: float    # multiplicative response-time factor, >= 1


class ResourceModel:
    """CPU / IOPS / memory model of one instance.

    Parameters
    ----------
    cpu_cores:
        Number of vCPUs; capacity is ``cpu_cores * 1000`` CPU-ms/second.
    iops_capacity:
        IO operations per second the storage sustains.
    buffer_pool_gib:
        Buffer-pool size; memory pressure grows slowly with IO volume.
    """

    def __init__(
        self,
        cpu_cores: int = 16,
        iops_capacity: float = 20000.0,
        buffer_pool_gib: float = 64.0,
        max_backlog_s: float = 30.0,
    ) -> None:
        if cpu_cores <= 0:
            raise ValueError("cpu_cores must be positive")
        if iops_capacity <= 0:
            raise ValueError("iops_capacity must be positive")
        if max_backlog_s <= 0:
            raise ValueError("max_backlog_s must be positive")
        self.cpu_cores = int(cpu_cores)
        self.iops_capacity = float(iops_capacity)
        self.buffer_pool_gib = float(buffer_pool_gib)
        #: Queue bound: work beyond this many seconds of capacity is shed
        #: (timeouts / admission control), so overload does not queue
        #: indefinitely and recovery after a fix is prompt — as on a real
        #: instance.
        self.max_backlog_s = float(max_backlog_s)
        self._cpu_backlog_ms = 0.0
        self._io_backlog = 0.0
        self._mem_level = 35.0  # steady-state buffer-pool occupancy (%)

    @property
    def cpu_capacity_ms(self) -> float:
        """CPU milliseconds available per wall-clock second."""
        return self.cpu_cores * 1000.0

    def scale_cores(self, new_cores: int) -> None:
        """AutoScale action: change the core count on the fly."""
        if new_cores <= 0:
            raise ValueError("new_cores must be positive")
        self.cpu_cores = int(new_cores)

    def reset(self) -> None:
        """Clear backlog state between runs."""
        self._cpu_backlog_ms = 0.0
        self._io_backlog = 0.0
        self._mem_level = 35.0

    def step(self, cpu_demand_ms: float, io_demand: float) -> ResourceUsage:
        """Advance one second given the newly submitted demand.

        Returns the utilisation and the slowdown factors to apply to the
        service times of queries running in this second.
        """
        if cpu_demand_ms < 0 or io_demand < 0:
            raise ValueError("demand must be non-negative")
        total_cpu = cpu_demand_ms + self._cpu_backlog_ms
        capacity = self.cpu_capacity_ms
        cpu_usage = min(100.0, 100.0 * total_cpu / capacity)
        cpu_slowdown = max(1.0, total_cpu / capacity)
        self._cpu_backlog_ms = min(
            max(0.0, total_cpu - capacity), capacity * self.max_backlog_s
        )

        total_io = io_demand + self._io_backlog
        iops_usage = min(100.0, 100.0 * total_io / self.iops_capacity)
        io_slowdown = max(1.0, total_io / self.iops_capacity)
        self._io_backlog = min(
            max(0.0, total_io - self.iops_capacity),
            self.iops_capacity * self.max_backlog_s,
        )

        # Buffer-pool occupancy creeps toward a level driven by IO volume.
        target = 35.0 + 60.0 * min(1.0, total_io / self.iops_capacity)
        self._mem_level += 0.05 * (target - self._mem_level)
        return ResourceUsage(
            cpu_usage=cpu_usage,
            iops_usage=iops_usage,
            mem_usage=self._mem_level,
            cpu_slowdown=cpu_slowdown,
            io_slowdown=io_slowdown,
        )
