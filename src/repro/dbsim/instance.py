"""DatabaseInstance facade: schema + resources + locks + engine.

This is the object examples and benchmarks interact with: build an
instance, run a workload against it, receive a :class:`SimulationResult`
holding the query log, the metric series and the ground-truth sampler.
Repair actions reach the running engine through the instance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dbsim.engine import RateProvider, SimulationEngine, Throttle
from repro.dbsim.locks import LockManager
from repro.dbsim.monitor import ActiveSessionSampler, InstanceMetrics
from repro.dbsim.query import QueryLog
from repro.dbsim.resources import ResourceModel
from repro.dbsim.spec import TemplateSpec
from repro.dbsim.tables import Schema

__all__ = ["DatabaseInstance", "SimulationResult"]


@dataclass
class SimulationResult:
    """Everything one simulated run produced."""

    query_log: QueryLog
    metrics: InstanceMetrics
    truth: ActiveSessionSampler
    t3_ms: np.ndarray          # ground-truth SHOW STATUS instants (Table III)
    start_time: int
    duration: int

    @property
    def end_time(self) -> int:
        return self.start_time + self.duration


class DatabaseInstance:
    """A simulated cloud database instance.

    Parameters
    ----------
    schema:
        Tables hosted by the instance (defaults to an empty schema that
        workload builders populate).
    cpu_cores, iops_capacity:
        Resource sizing; the paper's ADAC instances average 15.9 cores.
    conflict_rate:
        Row-lock contention intensity of the lock manager.
    seed:
        Seed for all stochastic behaviour of this instance.
    """

    def __init__(
        self,
        schema: Schema | None = None,
        cpu_cores: int = 16,
        iops_capacity: float = 20000.0,
        conflict_rate: float = 0.08,
        seed: int = 0,
    ) -> None:
        self.schema = schema or Schema()
        self.resources = ResourceModel(cpu_cores=cpu_cores, iops_capacity=iops_capacity)
        self.locks = LockManager(conflict_rate=conflict_rate)
        self.seed = int(seed)
        self._engine: SimulationEngine | None = None

    @property
    def engine(self) -> SimulationEngine:
        if self._engine is None:
            raise RuntimeError("no run in progress; call start() or run() first")
        return self._engine

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def start(self, provider: RateProvider, start_time: int = 0) -> SimulationEngine:
        """Begin a stepped run (the repair case study drives it manually)."""
        self.resources.reset()
        self._engine = SimulationEngine(
            provider=provider,
            resources=self.resources,
            locks=self.locks,
            start_time=start_time,
            seed=self.seed,
        )
        return self._engine

    def finish(self) -> SimulationResult:
        """Finalize the current run into a :class:`SimulationResult`."""
        engine = self.engine
        metrics, truth, t3_ms = engine.monitor.finalize(engine.query_log)
        result = SimulationResult(
            query_log=engine.query_log,
            metrics=metrics,
            truth=truth,
            t3_ms=t3_ms,
            start_time=engine.start_time,
            duration=engine.now - engine.start_time,
        )
        self._engine = None
        return result

    def run(
        self, provider: RateProvider, duration: int, start_time: int = 0, on_second=None
    ) -> SimulationResult:
        """Run ``duration`` simulated seconds and return the result."""
        engine = self.start(provider, start_time)
        engine.run(duration, on_second=on_second)
        return self.finish()

    # ------------------------------------------------------------------
    # Repair-action hooks
    # ------------------------------------------------------------------
    def throttle(self, sql_id: str, factor: float, start: int, end: int) -> Throttle:
        """Rate-limit a template during [start, end) seconds."""
        throttle = Throttle(sql_id, factor, start, end)
        self.engine.add_throttle(throttle)
        return throttle

    def unthrottle(self, sql_id: str) -> None:
        self.engine.remove_throttles(sql_id)

    def apply_optimization(self, spec: TemplateSpec, rows_gain: float, tres_gain: float) -> TemplateSpec:
        """Swap in an optimized spec for a template (query optimization)."""
        optimized = spec.optimized(rows_gain=rows_gain, tres_gain=tres_gain)
        self.engine.override_spec(optimized)
        return optimized

    def autoscale(self, new_cores: int) -> None:
        """Instance AutoScale: expand the number of CPU cores."""
        self.resources.scale_cores(new_cores)

    def add_read_replicas(self, offload_fraction: float) -> None:
        """Instance AutoScale: route a fraction of reads to replicas.

        Offloaded SELECTs no longer hit the primary at all — its CPU, IO
        and active session shed that share of the read load.
        """
        if not 0.0 <= offload_fraction < 1.0:
            raise ValueError("offload_fraction must lie in [0, 1)")
        self.engine.read_offload_fraction = float(offload_fraction)
