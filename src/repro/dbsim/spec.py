"""Template execution specifications.

A :class:`TemplateSpec` describes how queries of one SQL template behave
when executed by the simulated instance: base service time, examined
rows, per-query CPU/IO cost, and lock behaviour.  Workload builders
construct specs; the engine executes them; repair actions mutate them
(e.g. query optimization cuts examined rows and service time).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqltemplate import StatementKind

__all__ = ["TemplateSpec"]

#: CPU milliseconds consumed per thousand examined rows (row-scan cost).
CPU_MS_PER_KROW = 0.8
#: Physical IO operations per thousand examined rows; most logical reads
#: hit the buffer pool, so the physical ratio is low.
IO_PER_KROW = 1.0


@dataclass
class TemplateSpec:
    """Execution profile of one SQL template.

    Attributes
    ----------
    sql_id:
        Template identifier (hex digest).
    template:
        Normalized statement text (placeholders instead of literals).
    kind:
        Coarse statement classification, drives lock behaviour.
    tables:
        Tables the template touches (usually one).
    base_response_ms:
        Service time with no contention, excluding row-scan CPU cost.
    examined_rows_mean:
        Mean number of rows examined per query; CPU and IO costs scale
        with it, so a "poor SQL" is simply a template with a huge value.
    response_cv:
        Coefficient of variation of the per-query service time
        (lognormal dispersion).
    lock_hold_ms:
        For write templates: how long row locks are held per query.
    ddl_duration_ms:
        For DDL templates: how long the exclusive MDL is held.
    """

    sql_id: str
    template: str
    kind: StatementKind
    tables: tuple[str, ...]
    base_response_ms: float = 2.0
    examined_rows_mean: float = 100.0
    response_cv: float = 0.25
    lock_hold_ms: float = 20.0
    ddl_duration_ms: float = 30_000.0
    #: CPU cost per thousand examined rows.  Random index probes pay the
    #: default; tight sequential scans (ETL/reporting over clustered
    #: ranges) are several times cheaper per row — which is why a high
    #: examined-rows count does not always mean a CPU problem.
    cpu_per_krow: float = CPU_MS_PER_KROW
    #: A raw exemplar statement (literals intact) when the workload builder
    #: has one; static analysis prefers it over the template because
    #: literal shape (quoted numbers, IN-list sizes) carries signal.
    exemplar: str = ""

    def __post_init__(self) -> None:
        if self.base_response_ms <= 0:
            raise ValueError("base_response_ms must be positive")
        if self.examined_rows_mean < 0:
            raise ValueError("examined_rows_mean must be non-negative")
        if not self.tables and self.kind is not StatementKind.TRANSACTION:
            # Templates without tables (e.g. SELECT 1) are allowed but rare;
            # they simply never interact with locks.
            pass

    @property
    def table(self) -> str | None:
        """Primary table, or None for table-less statements."""
        return self.tables[0] if self.tables else None

    @property
    def cpu_ms_per_query(self) -> float:
        """Mean CPU milliseconds one query consumes."""
        return self.base_response_ms * 0.3 + self.examined_rows_mean / 1000.0 * self.cpu_per_krow

    @property
    def io_per_query(self) -> float:
        """Mean logical IO operations one query issues."""
        return 1.0 + self.examined_rows_mean / 1000.0 * IO_PER_KROW

    @property
    def service_time_ms(self) -> float:
        """Mean uncontended response time (base + scan cost)."""
        return self.base_response_ms + self.examined_rows_mean / 1000.0 * self.cpu_per_krow

    @property
    def is_write(self) -> bool:
        return self.kind.takes_row_locks

    @property
    def is_ddl(self) -> bool:
        return self.kind.takes_mdl_exclusive

    def optimized(self, rows_gain: float, tres_gain: float) -> "TemplateSpec":
        """Return a copy with query-optimization gains applied.

        ``rows_gain``/``tres_gain`` are fractional reductions in [0, 1),
        e.g. 0.9 means the optimizer (new index, rewrite) eliminates 90 %
        of examined rows.
        """
        if not 0.0 <= rows_gain < 1.0 or not 0.0 <= tres_gain < 1.0:
            raise ValueError("gains must lie in [0, 1)")
        return TemplateSpec(
            sql_id=self.sql_id,
            template=self.template,
            kind=self.kind,
            tables=self.tables,
            base_response_ms=max(0.1, self.base_response_ms * (1.0 - tres_gain)),
            examined_rows_mean=self.examined_rows_mean * (1.0 - rows_gain),
            response_cv=self.response_cv,
            # Faster writes hold their row locks for less time.
            lock_hold_ms=self.lock_hold_ms * (1.0 - tres_gain),
            ddl_duration_ms=self.ddl_duration_ms,
            cpu_per_krow=self.cpu_per_krow,
            exemplar=self.exemplar,
        )
