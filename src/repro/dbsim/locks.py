"""Lock manager: metadata (MDL) locks and row locks.

Two lock effects matter to PinSQL's anomaly categories (paper Sec. II):

* **MDL locks** — a DDL statement (ALTER/CREATE/DROP...) holds an
  exclusive metadata lock on its table; every query on that table that
  arrives while the lock is held blocks ("Waiting for table metadata
  lock") until release, so sessions pile up sharply.
* **Row locks** — write templates hold row locks for their duration;
  co-table queries conflict probabilistically, adding lock-wait time and
  bumping the ``innodb_row_lock_waits`` / ``innodb_row_lock_time``
  counters.

The manager works per simulated second with vectorized batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MdlLockWindow", "LockManager", "RowLockStats"]


@dataclass(frozen=True)
class MdlLockWindow:
    """An exclusive metadata lock held on ``table`` during [start, end) ms."""

    table: str
    start_ms: float
    end_ms: float

    def blocks_at(self, arrive_ms: np.ndarray) -> np.ndarray:
        """Boolean mask of arrivals that block on this lock."""
        return (arrive_ms >= self.start_ms) & (arrive_ms < self.end_ms)


@dataclass
class RowLockStats:
    """Row-lock counters for one simulated second (MySQL-style)."""

    waits: int = 0
    wait_time_ms: float = 0.0


class LockManager:
    """Tracks MDL windows and per-table row-lock pressure.

    Row-lock contention model: during one second, the *pressure* on a
    table is the expected number of concurrently held row locks,
    ``Σ (writes/s × hold_ms) / 1000``.  A query touching that table waits
    with probability ``1 − exp(−conflict_rate × pressure)`` and, when it
    waits, for an exponential time with the mean hold duration.  This is
    the standard mean-field approximation of lock queueing and produces
    the spike of row-lock metrics the paper's category-3(ii) describes.
    """

    def __init__(self, conflict_rate: float = 0.08, max_wait_ms: float = 5_000.0) -> None:
        if conflict_rate < 0:
            raise ValueError("conflict_rate must be non-negative")
        self.conflict_rate = float(conflict_rate)
        self.max_wait_ms = float(max_wait_ms)
        self._mdl_windows: list[MdlLockWindow] = []
        self._pressure: dict[str, float] = {}
        self._hold_ms: dict[str, float] = {}

    # ------------------------------------------------------------------
    # MDL locks
    # ------------------------------------------------------------------
    def acquire_mdl(self, table: str, start_ms: float, duration_ms: float) -> MdlLockWindow:
        """Register an exclusive MDL on ``table`` for ``duration_ms``."""
        if duration_ms <= 0:
            raise ValueError("duration_ms must be positive")
        window = MdlLockWindow(table, start_ms, start_ms + duration_ms)
        self._mdl_windows.append(window)
        return window

    def active_mdl_windows(self, table: str) -> list[MdlLockWindow]:
        return [w for w in self._mdl_windows if w.table == table]

    def prune_mdl(self, now_ms: float) -> None:
        """Drop windows that ended before ``now_ms`` (keeps scans short)."""
        self._mdl_windows = [w for w in self._mdl_windows if w.end_ms > now_ms]

    def mdl_wait(self, table: str, arrive_ms: np.ndarray) -> np.ndarray:
        """Per-arrival MDL wait time (ms); zero when no lock blocks."""
        wait = np.zeros(len(arrive_ms), dtype=np.float64)
        for window in self._mdl_windows:
            if window.table != table:
                continue
            mask = window.blocks_at(arrive_ms)
            wait[mask] = np.maximum(wait[mask], window.end_ms - arrive_ms[mask])
        return wait

    def mdl_blocked_until(self, table: str, at_ms: float) -> float | None:
        """End of the MDL window covering ``at_ms``, if any."""
        best: float | None = None
        for window in self._mdl_windows:
            if window.table == table and window.start_ms <= at_ms < window.end_ms:
                best = window.end_ms if best is None else max(best, window.end_ms)
        return best

    # ------------------------------------------------------------------
    # Row locks
    # ------------------------------------------------------------------
    def begin_second(self) -> None:
        """Reset per-second row-lock pressure accumulators."""
        self._pressure = {}
        self._hold_ms = {}

    def add_write_load(self, table: str, writes_per_second: float, hold_ms: float) -> None:
        """Account write traffic that holds row locks on ``table``."""
        if writes_per_second < 0 or hold_ms < 0:
            raise ValueError("write load must be non-negative")
        added = writes_per_second * hold_ms / 1000.0
        self._pressure[table] = self._pressure.get(table, 0.0) + added
        # Track a pressure-weighted mean hold time for the wait duration.
        prev = self._hold_ms.get(table)
        if prev is None or added <= 0:
            self._hold_ms.setdefault(table, hold_ms)
        else:
            total = self._pressure[table]
            self._hold_ms[table] = prev + (hold_ms - prev) * (added / max(total, 1e-9))

    def pressure(self, table: str) -> float:
        """Expected number of concurrently held row locks on ``table``."""
        return self._pressure.get(table, 0.0)

    def row_lock_wait(
        self,
        table: str,
        n_queries: int,
        rng: np.random.Generator,
        exclude_self_pressure: float = 0.0,
    ) -> tuple[np.ndarray, RowLockStats]:
        """Sample row-lock waits for ``n_queries`` touching ``table``.

        ``exclude_self_pressure`` removes the pressure a template itself
        contributes so a lone writer does not self-conflict at full rate.
        Returns per-query wait times and the second's counters.
        """
        waits = np.zeros(n_queries, dtype=np.float64)
        stats = RowLockStats()
        if n_queries == 0:
            return waits, stats
        pressure = max(0.0, self.pressure(table) - exclude_self_pressure)
        if pressure <= 0:
            return waits, stats
        p_wait = 1.0 - np.exp(-self.conflict_rate * pressure)
        conflicted = rng.random(n_queries) < p_wait
        n_conflicted = int(conflicted.sum())
        if n_conflicted == 0:
            return waits, stats
        hold = self._hold_ms.get(table, 20.0)
        # Waiting behind a queue of `pressure` holders on average.
        mean_wait = hold * (1.0 + pressure / 2.0)
        sampled = rng.exponential(mean_wait, size=n_conflicted)
        waits[conflicted] = np.minimum(sampled, self.max_wait_ms)
        stats.waits = n_conflicted
        stats.wait_time_ms = float(waits.sum())
        return waits, stats
