"""MySQL Performance Schema overhead model (paper Table IV).

The paper motivates PinSQL's log-based active-session estimation by
measuring how much enabling Performance Schema costs: a 32-thread
sysbench-style stress test on a 4-core instance (20 tables × 10 M rows)
under five configurations — ``normal`` (PFS off), ``pfs`` (PFS on,
default instrumentation), ``pfs+ins`` (all instruments), ``pfs+con``
(all consumers), ``pfs+con+ins`` (both) — shows QPS declines of roughly
8–30 %.

We model the instrumentation cost per query as

``overhead = events_per_query × cost_per_event``

where enabling *all instruments* multiplies the number of instrumented
events and enabling *all consumers* multiplies the per-event cost (each
event is additionally materialised into consumer tables).  Under a CPU
bottleneck (the paper records QPS once the instance saturates), QPS is
``cpu_capacity / cpu_per_query``, so the decline rate is
``overhead / (1 + overhead)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "PerformanceSchemaConfig",
    "StressWorkloadKind",
    "StressResult",
    "run_stress_test",
]


@dataclass(frozen=True)
class PerformanceSchemaConfig:
    """One Performance Schema configuration of the stress test."""

    enabled: bool = False
    all_instruments: bool = False   # "ins": every instrumentation point on
    all_consumers: bool = False     # "con": every consumer table on

    def __post_init__(self) -> None:
        if (self.all_instruments or self.all_consumers) and not self.enabled:
            raise ValueError("instruments/consumers require enabled=True")

    @property
    def label(self) -> str:
        if not self.enabled:
            return "normal"
        parts = ["pfs"]
        if self.all_consumers:
            parts.append("con")
        if self.all_instruments:
            parts.append("ins")
        return "+".join(parts)

    @classmethod
    def normal(cls) -> "PerformanceSchemaConfig":
        return cls()

    @classmethod
    def pfs(cls) -> "PerformanceSchemaConfig":
        return cls(enabled=True)

    @classmethod
    def pfs_ins(cls) -> "PerformanceSchemaConfig":
        return cls(enabled=True, all_instruments=True)

    @classmethod
    def pfs_con(cls) -> "PerformanceSchemaConfig":
        return cls(enabled=True, all_consumers=True)

    @classmethod
    def pfs_con_ins(cls) -> "PerformanceSchemaConfig":
        return cls(enabled=True, all_instruments=True, all_consumers=True)


class StressWorkloadKind(enum.Enum):
    """sysbench OLTP workload flavours of the paper's stress test."""

    READ_ONLY = "read_only"
    READ_WRITE = "read_write"
    WRITE_ONLY = "write_only"


#: Base CPU cost per query (ms) on the 4-core stress instance, calibrated
#: so the normal-config QPS lands near the paper's absolute numbers
#: (73 k / 42 k / 37 k for RO / RW / WO).
_BASE_CPU_MS = {
    StressWorkloadKind.READ_ONLY: 0.0548,
    StressWorkloadKind.READ_WRITE: 0.0955,
    StressWorkloadKind.WRITE_ONLY: 0.1070,
}

#: Instrumented events one query generates under default instrumentation.
_EVENTS_PER_QUERY = {
    StressWorkloadKind.READ_ONLY: 12.0,
    StressWorkloadKind.READ_WRITE: 20.0,
    StressWorkloadKind.WRITE_ONLY: 17.0,
}

#: Microseconds of CPU per instrumented event (timing + bookkeeping).
_COST_PER_EVENT_US = 0.66
#: Event-count multiplier when every instrument is enabled.
_ALL_INSTRUMENTS_FACTOR = 1.55
#: Per-event cost multiplier when every consumer is enabled.
_ALL_CONSUMERS_FACTOR = 1.9


def instrumentation_overhead_ms(
    config: PerformanceSchemaConfig, workload: StressWorkloadKind
) -> float:
    """CPU milliseconds of PFS overhead added to one query."""
    if not config.enabled:
        return 0.0
    events = _EVENTS_PER_QUERY[workload]
    cost_us = _COST_PER_EVENT_US
    if config.all_instruments:
        events *= _ALL_INSTRUMENTS_FACTOR
    if config.all_consumers:
        cost_us *= _ALL_CONSUMERS_FACTOR
    return events * cost_us / 1000.0


@dataclass(frozen=True)
class StressResult:
    """Outcome of one stress-test run."""

    config: PerformanceSchemaConfig
    workload: StressWorkloadKind
    qps: float
    per_second_qps: np.ndarray

    def decline_vs(self, baseline: "StressResult") -> float:
        """QPS decline rate (%) against a baseline run."""
        if baseline.qps <= 0:
            raise ValueError("baseline QPS must be positive")
        return 100.0 * (1.0 - self.qps / baseline.qps)


def run_stress_test(
    config: PerformanceSchemaConfig,
    workload: StressWorkloadKind,
    threads: int = 32,
    cpu_cores: int = 4,
    duration_s: int = 60,
    seed: int = 0,
) -> StressResult:
    """Run the closed-loop stress test under one PFS configuration.

    ``threads`` client threads issue queries back-to-back; the run is
    CPU-bound (as in the paper, QPS is recorded at the CPU bottleneck),
    so throughput is capacity-limited with small per-second noise.
    """
    if threads <= 0 or cpu_cores <= 0 or duration_s <= 0:
        raise ValueError("threads, cpu_cores and duration_s must be positive")
    rng = np.random.default_rng(seed)
    base_cpu = _BASE_CPU_MS[workload]
    cpu_per_query = base_cpu + instrumentation_overhead_ms(config, workload)
    capacity_ms = cpu_cores * 1000.0
    # Closed loop: a thread's response time is its CPU service time once
    # the instance saturates; the thread-limited rate is far above the
    # capacity limit at 32 threads, so the min() picks the CPU bottleneck.
    response_ms = cpu_per_query * max(1.0, threads * cpu_per_query / capacity_ms * cpu_cores)
    thread_limited = threads / (response_ms / 1000.0)
    capacity_limited = capacity_ms / cpu_per_query
    steady_qps = min(thread_limited, capacity_limited)
    noise = rng.normal(1.0, 0.015, size=duration_s)
    per_second = steady_qps * np.clip(noise, 0.9, 1.1)
    return StressResult(
        config=config,
        workload=workload,
        qps=float(per_second.mean()),
        per_second_qps=per_second,
    )
