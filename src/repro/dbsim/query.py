"""Columnar query-log storage.

Per simulated second and template the engine emits a :class:`SecondBatch`
of per-query observations; :class:`QueryLog` accumulates batches and
exposes the concatenated per-template arrays that the collection pipeline
and the active-session estimator consume.  For each query ``q`` the log
records ``t(q)`` (arrival, ms), ``tres(q)`` (response time, ms) and
``#examined_rows(q)`` — exactly the fields the paper collects (Def II.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["SecondBatch", "QueryLog", "TemplateQueries"]


@dataclass(frozen=True)
class SecondBatch:
    """Per-query observations of one template during one second."""

    sql_id: str
    arrive_ms: np.ndarray      # int64 epoch milliseconds
    response_ms: np.ndarray    # float64
    examined_rows: np.ndarray  # float64

    def __post_init__(self) -> None:
        n = len(self.arrive_ms)
        if not (len(self.response_ms) == n == len(self.examined_rows)):
            raise ValueError("batch arrays must share a length")

    def __len__(self) -> int:
        return len(self.arrive_ms)


@dataclass(frozen=True)
class TemplateQueries:
    """All logged queries of one template, concatenated and time-ordered."""

    sql_id: str
    arrive_ms: np.ndarray
    response_ms: np.ndarray
    examined_rows: np.ndarray

    def __len__(self) -> int:
        return len(self.arrive_ms)

    @property
    def end_ms(self) -> np.ndarray:
        return self.arrive_ms + self.response_ms


class QueryLog:
    """Accumulates :class:`SecondBatch` objects per template."""

    def __init__(self) -> None:
        self._batches: dict[str, list[SecondBatch]] = {}
        self._count = 0

    def append(self, batch: SecondBatch) -> None:
        if len(batch) == 0:
            return
        self._batches.setdefault(batch.sql_id, []).append(batch)
        self._count += len(batch)

    @property
    def total_queries(self) -> int:
        return self._count

    @property
    def sql_ids(self) -> list[str]:
        return list(self._batches)

    def __contains__(self, sql_id: str) -> bool:
        return sql_id in self._batches

    def queries_of(self, sql_id: str) -> TemplateQueries:
        """Concatenated, arrival-ordered observations of one template."""
        batches = self._batches.get(sql_id, [])
        if not batches:
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0, dtype=np.float64)
            return TemplateQueries(sql_id, empty_i, empty_f.copy(), empty_f.copy())
        arrive = np.concatenate([b.arrive_ms for b in batches])
        resp = np.concatenate([b.response_ms for b in batches])
        rows = np.concatenate([b.examined_rows for b in batches])
        order = np.argsort(arrive, kind="stable")
        return TemplateQueries(sql_id, arrive[order], resp[order], rows[order])

    def iter_templates(self) -> Iterator[TemplateQueries]:
        for sql_id in self._batches:
            yield self.queries_of(sql_id)

    def all_intervals(self) -> tuple[np.ndarray, np.ndarray]:
        """(arrive_ms, end_ms) over every logged query, unordered."""
        arrives: list[np.ndarray] = []
        ends: list[np.ndarray] = []
        for batches in self._batches.values():
            for b in batches:
                arrives.append(b.arrive_ms)
                ends.append(b.arrive_ms + b.response_ms)
        if not arrives:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
        return np.concatenate(arrives), np.concatenate(ends)
