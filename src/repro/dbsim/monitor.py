"""Instance monitoring: performance metrics and SHOW STATUS sampling.

The monitor owns two views of the active session:

* the **true** instantaneous active session at any millisecond, computed
  from the full query log (only the simulator can see this);
* the **sampled** per-second series, obtained by evaluating the true
  value at an *unknown, random* instant t3 within each second — the
  ``SHOW STATUS`` semantics of paper Fig. 3 that make individual
  active-session estimation non-trivial.

The sampled series is what the anomaly detector and PinSQL consume; the
true instants are kept for ground-truth evaluation (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dbsim.query import QueryLog
from repro.timeseries import TimeSeries

__all__ = ["ActiveSessionSampler", "InstanceMetrics", "Monitor"]


class ActiveSessionSampler:
    """Computes the true active session from logged query intervals."""

    def __init__(self, query_log: QueryLog) -> None:
        arrive, end = query_log.all_intervals()
        self._arrive = np.sort(arrive.astype(np.float64))
        self._end = np.sort(end)

    def active_at(self, times_ms: np.ndarray | float) -> np.ndarray | int:
        """Number of queries active at the given millisecond instant(s).

        A query is active during ``[t(q), t(q) + tres(q))``.
        """
        scalar = np.isscalar(times_ms)
        t = np.atleast_1d(np.asarray(times_ms, dtype=np.float64))
        started = np.searchsorted(self._arrive, t, side="right")
        finished = np.searchsorted(self._end, t, side="right")
        active = started - finished
        if scalar:
            return int(active[0])
        return active


@dataclass
class InstanceMetrics:
    """Named performance-metric series of one simulated run."""

    series: dict[str, TimeSeries] = field(default_factory=dict)

    def __getitem__(self, name: str) -> TimeSeries:
        return self.series[name]

    def __contains__(self, name: str) -> bool:
        return name in self.series

    @property
    def names(self) -> list[str]:
        return list(self.series)

    @property
    def active_session(self) -> TimeSeries:
        return self.series["active_session"]

    @property
    def cpu_usage(self) -> TimeSeries:
        return self.series["cpu_usage"]

    @property
    def iops_usage(self) -> TimeSeries:
        return self.series["iops_usage"]

    def window(self, t0: int, t1: int) -> "InstanceMetrics":
        """All metrics restricted to ``[t0, t1)``."""
        return InstanceMetrics(
            {name: s.window(t0, t1) for name, s in self.series.items()}
        )


class Monitor:
    """Builds the per-second metric series after (or during) a run."""

    METRIC_NAMES = (
        "active_session",
        "cpu_usage",
        "iops_usage",
        "mem_usage",
        "qps",
        "innodb_row_lock_waits",
        "innodb_row_lock_time",
    )

    def __init__(self, start_time: int, rng: np.random.Generator) -> None:
        self.start_time = int(start_time)
        self._rng = rng
        self._records: dict[str, list[float]] = {
            name: [] for name in self.METRIC_NAMES if name != "active_session"
        }
        self._seconds = 0

    def record_second(
        self,
        cpu_usage: float,
        iops_usage: float,
        mem_usage: float,
        qps: float,
        row_lock_waits: float,
        row_lock_time_ms: float,
    ) -> None:
        """Record the engine's per-second counters."""
        self._records["cpu_usage"].append(cpu_usage)
        self._records["iops_usage"].append(iops_usage)
        self._records["mem_usage"].append(mem_usage)
        self._records["qps"].append(qps)
        self._records["innodb_row_lock_waits"].append(row_lock_waits)
        self._records["innodb_row_lock_time"].append(row_lock_time_ms)
        self._seconds += 1

    def finalize(self, query_log: QueryLog) -> tuple[InstanceMetrics, ActiveSessionSampler, np.ndarray]:
        """Produce metric series, the truth sampler, and the t3 instants.

        The per-second ``active_session`` value is the true count at
        ``t3 = t + U(0, 1)`` seconds — the monitor does not know (and
        does not reveal to consumers) where in the second it sampled.
        """
        sampler = ActiveSessionSampler(query_log)
        n = self._seconds
        offsets = self._rng.uniform(0.0, 1000.0, size=n)
        t3_ms = (self.start_time + np.arange(n, dtype=np.float64)) * 1000.0 + offsets
        sampled = sampler.active_at(t3_ms).astype(np.float64)
        series = {
            "active_session": TimeSeries(sampled, start=self.start_time, name="active_session"),
        }
        for name, values in self._records.items():
            series[name] = TimeSeries(
                np.asarray(values, dtype=np.float64), start=self.start_time, name=name
            )
        return InstanceMetrics(series), sampler, t3_ms
