"""Per-second vectorized simulation loop.

Each simulated second the engine:

1. asks the rate provider for per-template arrival rates and applies any
   active throttles (repair actions);
2. samples Poisson arrival counts and uniform arrival instants, and for
   DDL templates immediately registers exclusive MDL windows;
3. submits the second's CPU/IO demand to the resource model, obtaining
   the processor-sharing slowdown;
4. samples per-query response times: lognormal service time × resource
   slowdown + row-lock wait + MDL wait;
5. emits per-query log batches and per-second metric counters.

The per-query record set (template id, arrival ms, response ms, examined
rows) matches exactly what the paper's collectors ship to LogStore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.dbsim.locks import LockManager
from repro.dbsim.monitor import Monitor
from repro.dbsim.query import QueryLog, SecondBatch
from repro.dbsim.resources import ResourceModel
from repro.dbsim.spec import IO_PER_KROW, TemplateSpec
from repro.sqltemplate import StatementKind

__all__ = ["RateProvider", "Throttle", "SimulationEngine"]


class RateProvider(Protocol):
    """Workload interface the engine pulls from."""

    @property
    def specs(self) -> dict[str, TemplateSpec]:
        """Execution spec of every template the workload can emit."""
        ...

    def rates_at(self, t: int) -> dict[str, float]:
        """Arrival rate (queries/second) per template at second ``t``."""
        ...

    # Providers may additionally implement
    #   counts_at(t: int) -> dict[str, int]
    # to request an *exact* number of arrivals for selected templates in
    # second ``t`` (e.g. a single one-shot DDL).  The engine samples
    # Poisson arrivals for everything else.  A second optional hook,
    #   rows_at(t: int) -> dict[str, float]
    # overrides selected templates' ``examined_rows_mean`` for second
    # ``t`` — time-varying scan cost (data growth, plan regressions).


@dataclass
class Throttle:
    """A rate-limiting window applied to one template (repair action)."""

    sql_id: str
    factor: float          # 0.0 kills the template, 0.5 halves its rate
    start: int             # seconds, inclusive
    end: int               # seconds, exclusive

    def __post_init__(self) -> None:
        if not 0.0 <= self.factor <= 1.0:
            raise ValueError("throttle factor must lie in [0, 1]")

    def active_at(self, t: int) -> bool:
        return self.start <= t < self.end


class SimulationEngine:
    """Steps a database instance one second at a time."""

    def __init__(
        self,
        provider: RateProvider,
        resources: ResourceModel,
        locks: LockManager,
        start_time: int = 0,
        seed: int = 0,
        spec_overrides: dict[str, TemplateSpec] | None = None,
    ) -> None:
        self.provider = provider
        self.resources = resources
        self.locks = locks
        self.start_time = int(start_time)
        self.now = int(start_time)
        self.rng = np.random.default_rng(seed)
        self.query_log = QueryLog()
        self.monitor = Monitor(start_time, np.random.default_rng(seed + 1))
        self.throttles: list[Throttle] = []
        #: Repair actions may override a template's spec mid-run
        #: (query optimization swaps in an optimized spec).
        self.spec_overrides: dict[str, TemplateSpec] = dict(spec_overrides or {})
        #: Fraction of read (SELECT) traffic offloaded to read replicas
        #: (AutoScale "add read-only nodes").  Offloaded queries leave the
        #: primary entirely: they cost it no CPU/IO and appear in neither
        #: its logs nor its active session.
        self.read_offload_fraction = 0.0

    # ------------------------------------------------------------------
    # Control-plane hooks used by the repairing module
    # ------------------------------------------------------------------
    def add_throttle(self, throttle: Throttle) -> None:
        self.throttles.append(throttle)

    def remove_throttles(self, sql_id: str) -> None:
        self.throttles = [t for t in self.throttles if t.sql_id != sql_id]

    def override_spec(self, spec: TemplateSpec) -> None:
        self.spec_overrides[spec.sql_id] = spec

    def _spec(self, sql_id: str) -> TemplateSpec:
        return self.spec_overrides.get(sql_id) or self.provider.specs[sql_id]

    def _throttled_rate(self, sql_id: str, rate: float, t: int) -> float:
        for throttle in self.throttles:
            if throttle.sql_id == sql_id and throttle.active_at(t):
                rate *= throttle.factor
        return rate

    # ------------------------------------------------------------------
    # Simulation step
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Simulate one second and advance the clock."""
        t = self.now
        t_ms = t * 1000.0
        self.locks.prune_mdl(t_ms - 1000.0)
        self.locks.begin_second()

        rates = dict(self.provider.rates_at(t))
        counts_fn = getattr(self.provider, "counts_at", None)
        exact_counts: dict[str, int] = dict(counts_fn(t)) if counts_fn else {}
        rows_fn = getattr(self.provider, "rows_at", None)
        rows_means: dict[str, float] = dict(rows_fn(t)) if rows_fn else {}
        arrivals: dict[str, np.ndarray] = {}
        rows: dict[str, np.ndarray] = {}
        specs: dict[str, TemplateSpec] = {}
        cpu_demand = 0.0
        io_demand = 0.0
        qps = 0

        # Pass 1: sample arrivals, register locks, accumulate demand.
        for sql_id in (*rates, *(k for k in exact_counts if k not in rates)):
            if sql_id in exact_counts:
                # Deterministic arrivals; throttling thins them binomially.
                n = int(exact_counts[sql_id])
                factor = self._throttled_rate(sql_id, 1.0, t)
                if factor < 1.0:
                    n = int(self.rng.binomial(n, factor)) if n > 0 else 0
            else:
                rate = self._throttled_rate(sql_id, rates[sql_id], t)
                if rate <= 0:
                    continue
                n = int(self.rng.poisson(rate))
            if n == 0:
                continue
            if self.read_offload_fraction > 0.0:
                spec_peek = self._spec(sql_id)
                if spec_peek.kind is StatementKind.SELECT:
                    n = int(self.rng.binomial(n, 1.0 - self.read_offload_fraction))
                    if n == 0:
                        continue
            spec = self._spec(sql_id)
            specs[sql_id] = spec
            arrive = t_ms + np.sort(self.rng.uniform(0.0, 1000.0, size=n))
            arrivals[sql_id] = arrive
            # Examined rows: lognormal around the (possibly time-varying)
            # mean.
            rows_mean = rows_means.get(sql_id, spec.examined_rows_mean)
            if rows_mean > 0:
                sigma = 0.35
                mu = np.log(rows_mean) - sigma**2 / 2.0
                examined = np.exp(self.rng.normal(mu, sigma, size=n))
            else:
                examined = np.zeros(n)
            rows[sql_id] = examined
            qps += n
            cpu_demand += float(
                spec.base_response_ms * 0.3 * n + examined.sum() / 1000.0 * spec.cpu_per_krow
            )
            io_demand += float(n + examined.sum() / 1000.0 * IO_PER_KROW)
            if spec.is_ddl and spec.table is not None:
                for a in arrive:
                    self.locks.acquire_mdl(spec.table, float(a), spec.ddl_duration_ms)
            elif spec.is_write and spec.table is not None:
                self.locks.add_write_load(spec.table, float(n), spec.lock_hold_ms)

        usage = self.resources.step(cpu_demand, io_demand)
        slowdown = max(usage.cpu_slowdown, usage.io_slowdown)

        # Pass 2: response times = service × slowdown + lock waits.
        lock_waits_total = 0
        lock_wait_time_total = 0.0
        for sql_id, arrive in arrivals.items():
            spec = specs[sql_id]
            n = len(arrive)
            examined = rows[sql_id]
            base = spec.base_response_ms + examined / 1000.0 * spec.cpu_per_krow
            cv = max(spec.response_cv, 1e-3)
            sigma = np.sqrt(np.log(1.0 + cv**2))
            noise = np.exp(self.rng.normal(-sigma**2 / 2.0, sigma, size=n))
            response = base * noise * slowdown

            if spec.is_ddl and spec.table is not None:
                # The DDL itself runs for its lock duration.
                response = np.full(n, spec.ddl_duration_ms) + base * noise
            elif spec.table is not None:
                # Row-lock conflicts (excluding self-generated pressure).
                self_pressure = 0.0
                if spec.is_write:
                    self_pressure = n * spec.lock_hold_ms / 1000.0
                waits, stats = self.locks.row_lock_wait(
                    spec.table, n, self.rng, exclude_self_pressure=self_pressure
                )
                response = response + waits
                lock_waits_total += stats.waits
                lock_wait_time_total += stats.wait_time_ms
                # Metadata-lock blocking.
                mdl = self.locks.mdl_wait(spec.table, arrive)
                response = response + mdl

            self.query_log.append(
                SecondBatch(
                    sql_id=sql_id,
                    arrive_ms=arrive.astype(np.int64),
                    response_ms=response,
                    examined_rows=examined,
                )
            )

        self.monitor.record_second(
            cpu_usage=usage.cpu_usage,
            iops_usage=usage.iops_usage,
            mem_usage=usage.mem_usage,
            qps=float(qps),
            row_lock_waits=float(lock_waits_total),
            row_lock_time_ms=lock_wait_time_total,
        )
        self.now += 1

    def run(self, seconds: int, on_second=None) -> None:
        """Run ``seconds`` steps; ``on_second(t, engine)`` is called before
        each step so callers (e.g. the repair case study) can intervene."""
        for _ in range(int(seconds)):
            if on_second is not None:
                on_second(self.now, self)
            self.step()
