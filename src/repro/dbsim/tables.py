"""Schema model: tables, row counts, indexes.

The schema exists so the lock manager knows which templates collide
(co-table blocking) and so the repair module's automatic-indexing action
has something concrete to act on: adding an index to a table reduces the
examined rows of templates that filter on the indexed column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Table", "Schema"]


@dataclass
class Table:
    """A simulated table."""

    name: str
    row_count: int = 1_000_000
    indexes: set[str] = field(default_factory=set)
    #: Multi-column indexes as ordered column tuples; the workload index
    #: advisor and the add-index repair action maintain these.
    composite_indexes: set[tuple[str, ...]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError("row_count must be non-negative")
        self.indexes = set(self.indexes)
        self.composite_indexes = {tuple(ix) for ix in self.composite_indexes if ix}

    def has_index(self, column: str) -> bool:
        """True when ``column`` is the leading key part of some index."""
        if column in self.indexes:
            return True
        return any(ix[0] == column for ix in self.composite_indexes)

    def add_index(self, column: str) -> bool:
        """Add an index; returns False if it already existed."""
        if column in self.indexes:
            return False
        self.indexes.add(column)
        return True

    def add_composite_index(self, columns: tuple[str, ...] | list[str]) -> bool:
        """Add a multi-column index; returns False if it already existed."""
        cols = tuple(columns)
        if not cols:
            return False
        if len(cols) == 1:
            return self.add_index(cols[0])
        if cols in self.composite_indexes:
            return False
        self.composite_indexes.add(cols)
        return True

    def covers(self, columns: tuple[str, ...] | list[str]) -> bool:
        """True when an existing index serves ``columns`` as a key prefix."""
        cols = tuple(columns)
        if not cols:
            return False
        if len(cols) == 1 and cols[0] in self.indexes:
            return True
        return any(ix[: len(cols)] == cols for ix in self.composite_indexes)

    def index_specs(self) -> tuple[tuple[str, ...], ...]:
        """Every index as an ordered column tuple (deterministic order)."""
        singles = [(c,) for c in sorted(self.indexes)]
        return tuple(singles + sorted(self.composite_indexes))


class Schema:
    """The set of tables on one database instance."""

    def __init__(self, tables: list[Table] | None = None) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables or []:
            self.add_table(table)

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __getitem__(self, name: str) -> Table:
        return self._tables[name]

    def get(self, name: str) -> Table | None:
        return self._tables.get(name)

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def ensure_table(self, name: str, row_count: int = 1_000_000) -> Table:
        """Return the table, creating it if missing (workload-builder path)."""
        table = self._tables.get(name)
        if table is None:
            table = Table(name, row_count)
            self._tables[name] = table
        return table

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)
