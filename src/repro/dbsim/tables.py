"""Schema model: tables, row counts, indexes.

The schema exists so the lock manager knows which templates collide
(co-table blocking) and so the repair module's automatic-indexing action
has something concrete to act on: adding an index to a table reduces the
examined rows of templates that filter on the indexed column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Table", "Schema"]


@dataclass
class Table:
    """A simulated table."""

    name: str
    row_count: int = 1_000_000
    indexes: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError("row_count must be non-negative")
        self.indexes = set(self.indexes)

    def has_index(self, column: str) -> bool:
        return column in self.indexes

    def add_index(self, column: str) -> bool:
        """Add an index; returns False if it already existed."""
        if column in self.indexes:
            return False
        self.indexes.add(column)
        return True


class Schema:
    """The set of tables on one database instance."""

    def __init__(self, tables: list[Table] | None = None) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables or []:
            self.add_table(table)

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __getitem__(self, name: str) -> Table:
        return self._tables[name]

    def get(self, name: str) -> Table | None:
        return self._tables.get(name)

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise ValueError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def ensure_table(self, name: str, row_count: int = 1_000_000) -> Table:
        """Return the table, creating it if missing (workload-builder path)."""
        table = self._tables.get(name)
        if table is None:
            table = Table(name, row_count)
            self._tables[name] = table
        return table

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)
