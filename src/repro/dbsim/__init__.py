"""Cloud database instance simulator.

PinSQL's inputs are *query logs* (per-query start time, response time,
examined rows, template id) and *performance metrics* (active session,
CPU usage, IOPS usage, row-lock counters).  This package simulates a
cloud MySQL-like instance at per-second, per-template granularity with
the causal couplings the paper's diagnosis relies on:

* CPU saturation slows every query (processor sharing with backlog);
* a DDL statement holds an exclusive metadata lock that blocks all new
  queries on its table, piling up sessions;
* row locks held by write-heavy templates delay co-table queries;
* the monitor samples the true instantaneous active session at an
  unknown instant within each second, exactly the ``SHOW STATUS``
  uncertainty the bucketized estimator (paper Section IV-C) resolves.
"""

from repro.dbsim.spec import TemplateSpec
from repro.dbsim.tables import Table, Schema
from repro.dbsim.resources import ResourceModel, ResourceUsage
from repro.dbsim.locks import LockManager, MdlLockWindow
from repro.dbsim.query import QueryLog, SecondBatch
from repro.dbsim.monitor import Monitor, InstanceMetrics
from repro.dbsim.engine import SimulationEngine, RateProvider, Throttle
from repro.dbsim.instance import DatabaseInstance, SimulationResult
from repro.dbsim.perfschema import (
    PerformanceSchemaConfig,
    StressWorkloadKind,
    run_stress_test,
    StressResult,
)

__all__ = [
    "TemplateSpec",
    "Table",
    "Schema",
    "ResourceModel",
    "ResourceUsage",
    "LockManager",
    "MdlLockWindow",
    "QueryLog",
    "SecondBatch",
    "Monitor",
    "InstanceMetrics",
    "SimulationEngine",
    "RateProvider",
    "Throttle",
    "DatabaseInstance",
    "SimulationResult",
    "PerformanceSchemaConfig",
    "StressWorkloadKind",
    "run_stress_test",
    "StressResult",
]
