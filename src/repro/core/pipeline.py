"""The PinSQL pipeline: case in, ranked H-SQLs and R-SQLs out.

Sequencing (paper Section III): the anomaly-detection module constructs
a case and triggers this pipeline asynchronously — individual
active-session estimation first, then H-SQL identification along the
anomaly propagation chain, then R-SQL identification, with per-stage
wall-clock timings recorded (they are part of the paper's Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.case import AnomalyCase
from repro.core.config import PinSQLConfig
from repro.core.hsql import HsqlIdentifier, HsqlRanking
from repro.core.rsql import RsqlIdentifier, RsqlResult
from repro.core.session_estimation import SessionEstimate, SessionEstimator
from repro.telemetry import Tracer, get_tracer

__all__ = ["StageTimings", "PinSQLResult", "PinSQL"]


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds spent per pipeline stage."""

    session_estimation: float
    hsql_ranking: float
    clustering_and_filtering: float
    history_verification: float

    @property
    def total(self) -> float:
        return (
            self.session_estimation
            + self.hsql_ranking
            + self.clustering_and_filtering
            + self.history_verification
        )

    @property
    def hsql_total(self) -> float:
        """Time to produce the H-SQL ranking alone."""
        return self.session_estimation + self.hsql_ranking

    def as_dict(self) -> dict[str, float]:
        """Per-stage seconds plus the total (serialisation order fixed)."""
        return {
            "session_estimation": self.session_estimation,
            "hsql_ranking": self.hsql_ranking,
            "clustering_and_filtering": self.clustering_and_filtering,
            "history_verification": self.history_verification,
            "total": self.total,
        }


@dataclass
class PinSQLResult:
    """Complete output of one PinSQL analysis."""

    hsql: HsqlRanking
    rsql: RsqlResult
    sessions: SessionEstimate
    timings: StageTimings

    @property
    def hsql_ids(self) -> list[str]:
        return self.hsql.ranked_ids

    @property
    def rsql_ids(self) -> list[str]:
        return self.rsql.ranked_ids


class PinSQL:
    """The diagnosing system: configure once, analyze many cases."""

    name = "PinSQL"

    def __init__(
        self,
        config: PinSQLConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.config = config or PinSQLConfig()
        self.tracer = tracer or get_tracer()
        cfg = self.config
        self._estimator = SessionEstimator(
            mode=cfg.session_estimation, buckets=cfg.session_buckets
        )
        self._hsql = HsqlIdentifier(
            smooth_factor=cfg.smooth_factor,
            use_trend=cfg.use_trend_score,
            use_scale=cfg.use_scale_score,
            use_scale_trend=cfg.use_scale_trend_score,
            use_weighted_final_score=cfg.use_weighted_final_score,
        )
        self._rsql = RsqlIdentifier(
            cluster_threshold=cfg.cluster_threshold,
            clustering_interval_s=cfg.clustering_interval_s,
            use_metric_temp_nodes=cfg.use_metric_temp_nodes,
            max_clusters=cfg.max_clusters,
            cumulative_threshold=cfg.cumulative_threshold,
            use_cumulative_threshold=cfg.use_cumulative_threshold,
            use_direct_cause_ranking=cfg.use_direct_cause_ranking,
            use_history_verification=cfg.use_history_verification,
            history_days=cfg.history_days,
            tukey_k=cfg.tukey_k,
            tracer=self.tracer,
        )

    def analyze(self, case: AnomalyCase) -> PinSQLResult:
        """Run the full root-cause analysis on one anomaly case."""
        with self.tracer.span("pinsql.analyze", templates=len(case.sql_ids)) as root:
            with self.tracer.span("session_estimation") as s_est:
                sessions = self._estimator.estimate(
                    case.logs, case.sql_ids, case.active_session
                )
            with self.tracer.span("hsql_ranking") as s_hsql:
                hsql = self._hsql.identify(case, sessions)
            rsql = self._rsql.identify(case, hsql, sessions)
            timings = StageTimings(
                session_estimation=s_est.elapsed,
                hsql_ranking=s_hsql.elapsed,
                clustering_and_filtering=rsql.clustering_seconds,
                history_verification=rsql.verification_seconds,
            )
            # Stamp the root span while it is still open, so retained
            # traces (and incident records built from them) carry the
            # stage breakdown even when a later consumer drops timings.
            root.attrs["total_seconds"] = timings.total
        return PinSQLResult(
            hsql=hsql,
            rsql=rsql,
            sessions=sessions,
            timings=timings,
        )

    # Ranker-protocol adapters so the evaluation harness can compare
    # PinSQL with the Top-SQL baselines uniformly.
    def rank(self, case: AnomalyCase) -> list[str]:
        """R-SQL ranking (the Ranker protocol entry point)."""
        return self.analyze(case).rsql_ids

    def rank_hsql(self, case: AnomalyCase) -> list[str]:
        return self.analyze(case).hsql_ids
