"""Repair engine: turn an analysis result into (executed) actions."""

from __future__ import annotations

from dataclasses import dataclass, field


from repro.core.case import AnomalyCase
from repro.core.pipeline import PinSQLResult
from repro.core.repair.actions import (
    AutoScaleAction,
    OptimizationSkip,
    QueryOptimizationAction,
    RepairAction,
    SqlThrottleAction,
    plan_optimization,
)
from repro.core.repair.rules import DEFAULT_REPAIR_CONFIG, RepairConfig, RepairRule
from repro.dbsim.instance import DatabaseInstance
from repro.sqlanalysis import Advisory, Finding, SqlAnalyzer, TrafficWeight, WorkloadAnalyzer
from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = ["RepairPlan", "RepairEngine"]

_log = get_logger("repair")


@dataclass
class RepairPlan:
    """Suggested actions for one anomaly case."""

    actions: list[RepairAction] = field(default_factory=list)
    executed: list[RepairAction] = field(default_factory=list)
    #: Deliberate non-actions (e.g. index-backed templates the optimizer
    #: refuses to touch), kept for the repair outcome record.
    skips: list[OptimizationSkip] = field(default_factory=list)
    #: Session lift factor that gated the threshold rules.
    session_lift: float = 0.0
    #: Workload-level advisories computed over the case's catalog (when
    #: the engine has a workload advisor), kept for records and renderers.
    advisories: list[Advisory] = field(default_factory=list)

    @property
    def suggested_kinds(self) -> list[str]:
        return [a.kind for a in self.actions]


class RepairEngine:
    """Plans and (optionally) executes repair actions on R-SQLs."""

    def __init__(
        self,
        config: RepairConfig = DEFAULT_REPAIR_CONFIG,
        registry: MetricsRegistry | None = None,
        instance_id: str = "",
        analyzer: SqlAnalyzer | None = None,
        advisor: WorkloadAnalyzer | None = None,
    ) -> None:
        self.config = config
        self.instance_id = instance_id
        self.analyzer = analyzer
        self.advisor = advisor
        self._registry = registry or get_registry()
        self._labels = {"instance": instance_id} if instance_id else {}

    def _count_action(self, outcome: str, kind: str, amount: float = 1.0) -> None:
        self._registry.counter(
            "repair_actions_total",
            help="Repair actions by outcome (planned/executed/refused) and kind.",
            outcome=outcome,
            kind=kind,
            **self._labels,
        ).inc(amount)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        case: AnomalyCase,
        result: PinSQLResult,
        anomaly_types: tuple[str, ...] = ("active_session_anomaly",),
    ) -> RepairPlan:
        """Build the action plan for the top-ranked R-SQLs."""
        lift = self._session_lift(case)
        plan = RepairPlan(session_lift=lift)
        plan.advisories = self._advisories(case)
        targets = result.rsql_ids[: self.config.top_k]
        if not targets:
            return plan
        for rule in self.config.rules:
            if not rule.matches(anomaly_types):
                self._count_action("refused_type_mismatch", rule.action)
                continue
            if lift < rule.min_session_lift:
                self._count_action("refused_lift_below_threshold", rule.action)
                _log.debug(
                    "repair rule gated by session lift",
                    extra={"action": rule.action, "lift": round(lift, 3),
                           "min_lift": rule.min_session_lift},
                )
                continue
            for sql_id in targets:
                action = self._make_action(rule, case, sql_id, plan.advisories)
                if isinstance(action, OptimizationSkip):
                    plan.skips.append(action)
                    self._count_action("skipped_index_backed", action.kind)
                    _log.debug(
                        "optimization skipped",
                        extra={"sql_id": sql_id, "reason": action.reason,
                               "instance": self.instance_id},
                    )
                    continue
                plan.actions.append(action)
                self._count_action("planned", action.kind)
        return plan

    def _findings(self, case: AnomalyCase, sql_id: str) -> list[Finding] | None:
        """Static-analysis findings for one template, or None if unanalyzable."""
        if self.analyzer is None:
            return None
        info = case.catalog.get(sql_id)
        if info is None:
            return None
        return self.analyzer.analyze_template(info)

    def _advisories(self, case: AnomalyCase) -> list[Advisory]:
        """Workload advisories over the case catalog; never raises."""
        if self.advisor is None:
            return []
        try:
            lo, hi = case.anomaly_indices()
            weights: dict[str, TrafficWeight] = {}
            for info in case.catalog:
                try:
                    calls = float(
                        case.templates.executions(info.sql_id).values[lo:hi].sum()
                    )
                    rows = float(
                        case.templates.get(info.sql_id, "total_examined_rows")
                        .values[lo:hi]
                        .sum()
                    )
                except Exception:
                    continue
                weights[info.sql_id] = TrafficWeight(
                    calls=calls, rows_examined=rows
                )
            report = self.advisor.analyze(case.catalog, weights)
            return list(report.advisories)
        except Exception as exc:
            _log.warning(
                "workload advisory planning failed",
                extra={"error": type(exc).__name__, "instance": self.instance_id},
            )
            return []

    def _make_action(
        self,
        rule: RepairRule,
        case: AnomalyCase,
        sql_id: str,
        advisories: list[Advisory] | None = None,
    ) -> RepairAction | OptimizationSkip:
        params = rule.param_dict
        if rule.action == "sql_throttle":
            return SqlThrottleAction(
                sql_id=sql_id,
                factor=float(params.get("factor", 0.1)),
                duration_s=int(params.get("duration_s", 600)),
                kill=bool(params.get("kill", False)),
            )
        if rule.action == "query_optimization":
            if "rows_gain" in params or "tres_gain" in params:
                return QueryOptimizationAction(
                    sql_id=sql_id,
                    rows_gain=float(params.get("rows_gain", 0.9)),
                    tres_gain=float(params.get("tres_gain", 0.85)),
                )
            return plan_optimization(
                case, sql_id, self._findings(case, sql_id), advisories
            )
        return AutoScaleAction(
            sql_id="",
            new_cores=int(params.get("new_cores", 32)),
            read_offload=float(params.get("read_offload", 0.0)),
        )

    def _session_lift(self, case: AnomalyCase) -> float:
        """Anomaly-window mean active session over the pre-anomaly mean."""
        session = case.active_session.values
        lo, hi = case.anomaly_indices()
        baseline = session[:lo]
        window = session[lo:hi]
        if len(window) == 0:
            return 0.0
        base = float(baseline.mean()) if len(baseline) else 0.0
        return float(window.mean()) / max(base, 1e-9) if base > 0 else float("inf")

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, plan: RepairPlan, instance: DatabaseInstance, now_s: int
    ) -> list[RepairAction]:
        """Execute the plan's actions (only if auto-execution is enabled)."""
        if not self.config.auto_execute:
            for action in plan.actions:
                self._count_action("refused_auto_execute_disabled", action.kind)
            return []
        for action in plan.actions:
            action.execute(instance, now_s)
            plan.executed.append(action)
            self._count_action("executed", action.kind)
            _log.info(
                "repair action executed",
                extra={"kind": action.kind, "sql_id": action.sql_id,
                       "now_s": now_s, "instance": self.instance_id},
            )
        return plan.executed
