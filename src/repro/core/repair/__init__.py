"""Repairing Module (paper Section VII).

Suggests — and optionally executes — problem-solving actions on the
pinpointed R-SQLs: SQL throttling, query optimization, and instance
autoscale.  Action selection is rule-based (the paper's Fig. 5
configuration style): users bind anomaly phenomena to actions, choose
thresholds, and decide whether execution is automatic.
"""

from repro.core.repair.actions import (
    INDEX_BACKED_ROWS,
    RepairAction,
    SqlThrottleAction,
    QueryOptimizationAction,
    AutoScaleAction,
    OptimizationSkip,
    plan_optimization,
)
from repro.core.repair.rules import RepairRule, RepairConfig, DEFAULT_REPAIR_CONFIG
from repro.core.repair.engine import RepairEngine, RepairPlan
from repro.core.repair.validation import PlanValidation, validate_plan

__all__ = [
    "INDEX_BACKED_ROWS",
    "RepairAction",
    "SqlThrottleAction",
    "QueryOptimizationAction",
    "AutoScaleAction",
    "OptimizationSkip",
    "plan_optimization",
    "RepairRule",
    "RepairConfig",
    "DEFAULT_REPAIR_CONFIG",
    "RepairEngine",
    "RepairPlan",
    "PlanValidation",
    "validate_plan",
]
