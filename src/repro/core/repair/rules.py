"""Rule-based repair configuration (paper Fig. 5 DSL).

A :class:`RepairRule` binds an anomaly phenomenon type to an action
kind, with an optional metric threshold gating execution — e.g. *"when
a CPU-usage anomaly is detected and the R-SQL's examined rows surged,
suggest query optimization"*.  A :class:`RepairConfig` is an ordered
list of rules plus the auto-execution switch; the default configuration
mirrors the paper's: first SQL throttling (gated by a metric
threshold), then query optimization for CPU/IO phenomena.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RepairRule", "RepairConfig", "DEFAULT_REPAIR_CONFIG"]


@dataclass(frozen=True)
class RepairRule:
    """One configured action binding.

    Attributes
    ----------
    anomaly_types:
        Phenomenon types the rule applies to (``"*"`` matches any).
    action:
        ``"sql_throttle"``, ``"query_optimization"`` or ``"autoscale"``.
    min_session_lift:
        Metric threshold: the anomaly-window active session must exceed
        the baseline by at least this factor for the rule to fire
        (the "metrics do not reach the default threshold" gate the
        paper's case study describes for throttling).
    params:
        Extra keyword parameters forwarded to the action.
    """

    anomaly_types: tuple[str, ...]
    action: str
    min_session_lift: float = 1.0
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.action not in ("sql_throttle", "query_optimization", "autoscale"):
            raise ValueError(f"unknown action {self.action!r}")
        if not self.anomaly_types:
            raise ValueError("anomaly_types must not be empty")

    def matches(self, anomaly_types: tuple[str, ...]) -> bool:
        if "*" in self.anomaly_types:
            return True
        return any(t in self.anomaly_types for t in anomaly_types)

    @property
    def param_dict(self) -> dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class RepairConfig:
    """Ordered repair rules plus the execution policy."""

    rules: tuple[RepairRule, ...]
    #: When False, actions are suggested but never executed (the paper's
    #: default: users must enable automatic execution).
    auto_execute: bool = False
    #: How many top-ranked R-SQLs actions are planned for.
    top_k: int = 1

    def __post_init__(self) -> None:
        if not self.rules:
            raise ValueError("at least one rule is required")
        if self.top_k < 1:
            raise ValueError("top_k must be at least 1")


#: The paper's default: throttle first (only if the session lift is
#: severe), then query optimization on CPU/IO-related phenomena.
DEFAULT_REPAIR_CONFIG = RepairConfig(
    rules=(
        RepairRule(
            anomaly_types=("active_session_anomaly",),
            action="sql_throttle",
            min_session_lift=8.0,
            params=(("factor", 0.1), ("duration_s", 900)),
        ),
        RepairRule(
            anomaly_types=("cpu_anomaly", "iops_anomaly"),
            action="query_optimization",
            min_session_lift=1.0,
        ),
    ),
    auto_execute=False,
    top_k=1,
)
