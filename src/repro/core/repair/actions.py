"""Repair actions and their execution against a database instance.

Actions are black boxes from PinSQL's point of view (the paper treats
them so): each knows how to apply itself to a running
:class:`~repro.dbsim.instance.DatabaseInstance`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.case import AnomalyCase
from repro.dbsim.instance import DatabaseInstance

__all__ = [
    "RepairAction",
    "SqlThrottleAction",
    "QueryOptimizationAction",
    "AutoScaleAction",
    "plan_optimization",
]


@dataclass(frozen=True)
class RepairAction:
    """Base class: a suggested action on one template (or the instance)."""

    sql_id: str

    @property
    def kind(self) -> str:
        return type(self).__name__

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class SqlThrottleAction(RepairAction):
    """Rate-limit an R-SQL (optionally kill it entirely).

    ``factor`` is the fraction of traffic allowed through; ``kill=True``
    forces it to zero.  ``duration_s`` bounds the throttle window, after
    which traffic resumes — matching the configurable throttling of the
    production system.
    """

    factor: float = 0.1
    duration_s: int = 600
    kill: bool = False

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        factor = 0.0 if self.kill else self.factor
        instance.throttle(self.sql_id, factor, start=now_s, end=now_s + self.duration_s)


@dataclass(frozen=True)
class QueryOptimizationAction(RepairAction):
    """Apply optimizer suggestions (index / rewrite) to an R-SQL.

    The fractional gains are what the optimizer predicts; executing the
    action swaps the optimized execution profile into the engine, the
    simulator equivalent of building the index.
    """

    rows_gain: float = 0.9
    tres_gain: float = 0.85

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        spec = instance.engine._spec(self.sql_id)
        instance.apply_optimization(spec, rows_gain=self.rows_gain, tres_gain=self.tres_gain)


@dataclass(frozen=True)
class AutoScaleAction(RepairAction):
    """Instance AutoScale: expand CPU and/or add read-only nodes.

    ``sql_id`` is empty — the action targets the instance, used when the
    traffic increase is business-intended and must not be throttled.
    ``read_offload`` routes that fraction of SELECT traffic to read
    replicas (the paper's "adding read-only nodes").
    """

    new_cores: int = 32
    read_offload: float = 0.0

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        instance.autoscale(self.new_cores)
        if self.read_offload > 0.0:
            instance.add_read_replicas(self.read_offload)


def plan_optimization(case: AnomalyCase, sql_id: str) -> QueryOptimizationAction:
    """Derive optimization gains from the template's observed metrics.

    The simulated optimizer assumes an appropriate index reduces the
    examined rows to a few hundred; the predicted gain is therefore
    ``1 − target/observed`` — large for full scans, small for templates
    that are already index-backed.
    """
    lo, hi = case.anomaly_indices()
    execs = case.templates.executions(sql_id).values[lo:hi].sum()
    rows = case.templates.get(sql_id, "total_examined_rows").values[lo:hi].sum()
    avg_rows = rows / execs if execs > 0 else 0.0
    target_rows = 200.0
    rows_gain = float(np.clip(1.0 - target_rows / max(avg_rows, target_rows), 0.0, 0.98))
    # Response time improves almost proportionally for scan-bound queries.
    tres_gain = float(np.clip(rows_gain * 0.95, 0.0, 0.95))
    return QueryOptimizationAction(sql_id=sql_id, rows_gain=rows_gain, tres_gain=tres_gain)
