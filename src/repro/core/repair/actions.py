"""Repair actions and their execution against a database instance.

Actions are black boxes from PinSQL's point of view (the paper treats
them so): each knows how to apply itself to a running
:class:`~repro.dbsim.instance.DatabaseInstance`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.case import AnomalyCase
from repro.dbsim.instance import DatabaseInstance
from repro.sqlanalysis import Advisory, Finding

__all__ = [
    "RepairAction",
    "SqlThrottleAction",
    "QueryOptimizationAction",
    "AutoScaleAction",
    "OptimizationSkip",
    "INDEX_BACKED_ROWS",
    "plan_optimization",
]


@dataclass(frozen=True)
class RepairAction:
    """Base class: a suggested action on one template (or the instance)."""

    sql_id: str

    @property
    def kind(self) -> str:
        return type(self).__name__

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class SqlThrottleAction(RepairAction):
    """Rate-limit an R-SQL (optionally kill it entirely).

    ``factor`` is the fraction of traffic allowed through; ``kill=True``
    forces it to zero.  ``duration_s`` bounds the throttle window, after
    which traffic resumes — matching the configurable throttling of the
    production system.
    """

    factor: float = 0.1
    duration_s: int = 600
    kill: bool = False

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        factor = 0.0 if self.kill else self.factor
        instance.throttle(self.sql_id, factor, start=now_s, end=now_s + self.duration_s)


@dataclass(frozen=True)
class QueryOptimizationAction(RepairAction):
    """Apply optimizer suggestions (index / rewrite) to an R-SQL.

    The fractional gains are what the optimizer predicts; executing the
    action swaps the optimized execution profile into the engine, the
    simulator equivalent of building the index.  ``evidence`` carries
    the static-analysis findings backing the suggestion ("why this SQL
    is slow"), rendered in reports and incident records.
    """

    rows_gain: float = 0.9
    tres_gain: float = 0.85
    evidence: tuple[str, ...] = ()
    #: When the workload index advisor backs the action, the concrete
    #: index it recommended; executing the action also materialises it in
    #: the instance schema so later analyses see the access as backed.
    index_table: str = ""
    index_columns: tuple[str, ...] = ()

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        spec = instance.engine._spec(self.sql_id)
        instance.apply_optimization(spec, rows_gain=self.rows_gain, tres_gain=self.tres_gain)
        if self.index_table and self.index_columns:
            table = instance.schema.get(self.index_table)
            if table is not None:
                table.add_composite_index(self.index_columns)


@dataclass(frozen=True)
class AutoScaleAction(RepairAction):
    """Instance AutoScale: expand CPU and/or add read-only nodes.

    ``sql_id`` is empty — the action targets the instance, used when the
    traffic increase is business-intended and must not be throttled.
    ``read_offload`` routes that fraction of SELECT traffic to read
    replicas (the paper's "adding read-only nodes").
    """

    new_cores: int = 32
    read_offload: float = 0.0

    def execute(self, instance: DatabaseInstance, now_s: int) -> None:
        instance.autoscale(self.new_cores)
        if self.read_offload > 0.0:
            instance.add_read_replicas(self.read_offload)


@dataclass(frozen=True)
class OptimizationSkip:
    """A deliberate non-action: the template needs no optimization.

    Emitting a ~0-gain :class:`QueryOptimizationAction` would execute a
    pointless profile swap and clutter the plan; the skip keeps the
    decision (and its reason) visible in the repair outcome instead.
    """

    sql_id: str
    reason: str

    @property
    def kind(self) -> str:
        return type(self).__name__


#: Average examined rows at or below which a template's profile counts as
#: index-backed: roughly the few-hundred-row probes a healthy secondary
#: index produces, with headroom above the optimizer's 200-row target.
INDEX_BACKED_ROWS = 400.0

#: Finding rules that structurally explain a scan an index/rewrite fixes.
_STRUCTURAL_RULES = frozenset(
    {
        "missing-index",
        "non-sargable-function",
        "leading-wildcard-like",
        "implicit-conversion",
        "unbounded-scan",
        "cartesian-join",
    }
)


def _index_advisories(
    advisories: Sequence["Advisory"] | None, sql_id: str
) -> list["Advisory"]:
    """Index advisories from the workload analyzer that target ``sql_id``."""
    return [
        a
        for a in (advisories or ())
        if a.advisor == "index-advisor" and sql_id in a.sql_ids
    ]


def plan_optimization(
    case: AnomalyCase,
    sql_id: str,
    findings: Sequence[Finding] | None = None,
    advisories: Sequence["Advisory"] | None = None,
) -> QueryOptimizationAction | OptimizationSkip:
    """Derive optimization gains from observed metrics plus static findings.

    The simulated optimizer assumes an appropriate index reduces the
    examined rows to a few hundred; the predicted gain is therefore
    ``1 − target/observed``.  Templates already index-backed (average
    examined rows ≤ :data:`INDEX_BACKED_ROWS`) are skipped outright.

    ``findings`` refines the estimate: ``None`` means "not analyzed" and
    keeps the pure statistical gain; an analyzed template with a
    structural finding (missing index, non-sargable predicate, unbounded
    scan ...) keeps the full gain *and* carries the finding as evidence,
    while an analyzed template with no structural explanation gets a
    tempered gain — the optimizer has nothing concrete to fix, so the
    statistical promise is discounted.

    ``advisories`` corroborates from workload scope.  An index advisory
    targeting this template joins the evidence, and — the key upgrade —
    rescues a template that looks index-backed *inside the anomaly
    window*: the workload advisor saw enough traffic-weighted scanning to
    recommend a concrete index, so instead of an :class:`OptimizationSkip`
    the plan carries an add-index action with gains derived from the
    advisory's own rows-per-call estimate.
    """
    lo, hi = case.anomaly_indices()
    execs = case.templates.executions(sql_id).values[lo:hi].sum()
    rows = case.templates.get(sql_id, "total_examined_rows").values[lo:hi].sum()
    avg_rows = rows / execs if execs > 0 else 0.0
    target_rows = 200.0
    index_advisories = _index_advisories(advisories, sql_id)
    if avg_rows <= INDEX_BACKED_ROWS:
        if index_advisories:
            best = index_advisories[0]
            advised_rows = max(
                float(best.evidence.get("rows_per_call", 0.0) or 0.0),
                avg_rows,
                target_rows,
            )
            # Workload-scope estimate, tempered: the anomaly window itself
            # showed an index-backed profile, so trust the advisor less
            # than an in-window scan would earn.
            rows_gain = float(
                np.clip(1.0 - target_rows / advised_rows, 0.0, 0.98)
            ) * 0.8
            return QueryOptimizationAction(
                sql_id=sql_id,
                rows_gain=rows_gain,
                tres_gain=float(np.clip(rows_gain * 0.95, 0.0, 0.95)),
                evidence=(f"{best.advisor}: {best.message}",),
                index_table=best.table,
                index_columns=tuple(
                    str(best.evidence.get("columns", "")).split(",")
                )
                if best.evidence.get("columns")
                else (),
            )
        return OptimizationSkip(
            sql_id=sql_id,
            reason=(
                f"profile already index-backed: avg examined rows "
                f"{avg_rows:.0f} <= {INDEX_BACKED_ROWS:.0f}"
            ),
        )
    rows_gain = float(np.clip(1.0 - target_rows / max(avg_rows, target_rows), 0.0, 0.98))
    evidence: tuple[str, ...] = ()
    if findings is not None:
        structural = [f for f in findings if f.rule in _STRUCTURAL_RULES]
        if not structural:
            # Analyzed but structurally clean: the scan is inherent to
            # the query's work, so an optimizer can only shave part of it.
            rows_gain *= 0.6
        evidence = tuple(
            f"{f.rule}: {f.message}" for f in list(findings)[:5]
        )
    index_table = ""
    index_columns: tuple[str, ...] = ()
    if index_advisories:
        best = index_advisories[0]
        evidence = (f"{best.advisor}: {best.message}",) + evidence
        index_table = best.table
        columns = str(best.evidence.get("columns", ""))
        index_columns = tuple(columns.split(",")) if columns else ()
    # Response time improves almost proportionally for scan-bound queries.
    tres_gain = float(np.clip(rows_gain * 0.95, 0.0, 0.95))
    return QueryOptimizationAction(
        sql_id=sql_id,
        rows_gain=rows_gain,
        tres_gain=tres_gain,
        evidence=evidence,
        index_table=index_table,
        index_columns=index_columns,
    )
