"""Repair-plan validation by counterfactual replay.

Before executing a plan on production, replay the anomaly case's
observed traffic on a fresh simulated instance twice — once as-is and
once with the plan's actions in place — and compare the anomaly-window
active sessions.  A plan that does not shrink the replayed anomaly is
not worth the risk of touching production.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.case import AnomalyCase
from repro.core.repair.engine import RepairPlan

__all__ = ["PlanValidation", "validate_plan"]


@dataclass(frozen=True)
class PlanValidation:
    """Outcome of a counterfactual plan validation."""

    baseline_session: float     # replayed anomaly-window mean, no actions
    repaired_session: float     # same, with the plan applied
    pre_anomaly_session: float  # replayed pre-anomaly mean (the target)

    @property
    def improvement(self) -> float:
        """Fractional reduction of the anomaly-window session."""
        if self.baseline_session <= 0:
            return 0.0
        return 1.0 - self.repaired_session / self.baseline_session

    @property
    def resolves(self) -> bool:
        """Whether the plan brings the session near its pre-anomaly level."""
        target = max(2.0 * self.pre_anomaly_session, self.pre_anomaly_session + 3.0)
        return self.repaired_session <= target

    def __str__(self) -> str:
        return (
            f"replayed session {self.baseline_session:.1f} → "
            f"{self.repaired_session:.1f} "
            f"({self.improvement:.0%} improvement; "
            f"pre-anomaly {self.pre_anomaly_session:.1f}; "
            f"{'resolves' if self.resolves else 'does NOT resolve'} the anomaly)"
        )


def validate_plan(case: AnomalyCase, plan: RepairPlan, seed: int = 0) -> PlanValidation:
    """Replay the case with and without the plan's actions."""
    # Imported lazily: the replay substrate lives in repro.workload, which
    # itself imports repro.core — a module-level import would be circular.
    from repro.workload.replay import replay_case

    lo, hi = case.anomaly_indices()
    without = replay_case(case, actions=None, seed=seed)
    with_plan = replay_case(case, actions=plan.actions, seed=seed)
    baseline_window = without.metrics.active_session.values[lo:hi]
    repaired_window = with_plan.metrics.active_session.values[lo:hi]
    pre = without.metrics.active_session.values[:lo]
    return PlanValidation(
        baseline_session=float(baseline_window.mean()) if len(baseline_window) else 0.0,
        repaired_session=float(repaired_window.mean()) if len(repaired_window) else 0.0,
        pre_anomaly_session=float(pre.mean()) if len(pre) else 0.0,
    )
