"""The anomaly case container (paper Definition II.2).

``C = (M, Q, as, ae)``: the performance metrics, the SQL templates with
their aggregated metric series and raw logs, and the anomaly window.
Data covers ``[ts, te) = [as − δs, ae)`` — PinSQL looks δs before the
anomaly because root causes usually appear earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.collection.aggregator import TemplateMetricStore
from repro.collection.logstore import LogStore
from repro.dbsim.monitor import InstanceMetrics
from repro.sqltemplate import TemplateCatalog
from repro.timeseries import TimeSeries

__all__ = ["AnomalyCase"]


@dataclass
class AnomalyCase:
    """Everything root-cause analysis needs for one anomaly.

    Attributes
    ----------
    metrics:
        Instance performance metrics over ``[ts, te)`` at 1 s interval;
        must include ``active_session``.
    templates:
        Per-template aggregated metric series over ``[ts, te)`` at 1 s.
    logs:
        Raw query records (needed by the active-session estimator).
    catalog:
        Template metadata (statement text, kind, tables).
    anomaly_start, anomaly_end:
        The detected anomaly window ``[as, ae)``.
    history:
        ``sql_id → {days_ago → TimeSeries}`` of historical #execution at
        the clustering granularity, for history-trend verification.
    """

    metrics: InstanceMetrics
    templates: TemplateMetricStore
    logs: LogStore
    catalog: TemplateCatalog
    anomaly_start: int
    anomaly_end: int
    history: dict[str, dict[int, TimeSeries]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if "active_session" not in self.metrics:
            raise ValueError("the case metrics must include active_session")
        session = self.metrics.active_session
        if not session.start <= self.anomaly_start < self.anomaly_end <= session.end:
            raise ValueError(
                "anomaly window must lie within the collected data window"
            )

    # ------------------------------------------------------------------
    # Window accessors (ts/te in the paper's notation)
    # ------------------------------------------------------------------
    @property
    def ts(self) -> int:
        """Start of the collected window (= as − δs)."""
        return self.metrics.active_session.start

    @property
    def te(self) -> int:
        """End of the collected window (= ae)."""
        return self.metrics.active_session.end

    @property
    def duration(self) -> int:
        return self.te - self.ts

    @property
    def anomaly_duration(self) -> int:
        return self.anomaly_end - self.anomaly_start

    @property
    def sql_ids(self) -> list[str]:
        return self.templates.sql_ids

    @property
    def active_session(self) -> TimeSeries:
        return self.metrics.active_session

    def anomaly_indices(self, interval: int = 1) -> tuple[int, int]:
        """(start, end) sample indices of the anomaly window at ``interval``."""
        lo = (self.anomaly_start - self.ts) // interval
        hi = (self.anomaly_end - self.ts) // interval
        return int(lo), int(hi)

    def history_of(self, sql_id: str, days_ago: int) -> TimeSeries | None:
        """Historical #execution series, or None when unavailable (new SQL)."""
        return self.history.get(sql_id, {}).get(days_ago)
