"""Individual active-session estimation (paper Section IV-C).

The monitor reports the instance active session once per second, sampled
at an *unknown* instant t3 ∈ [t, t+1).  From the query logs, the
probability that query ``q`` is observed active over a period ``p`` is
``P(observed(p, q)) = |p ∩ [t(q), t(q)+tres(q))| / |p|``, so the
expected active session over ``p`` is the summed overlap fraction.

The full method splits each second into K buckets, picks the bucket
whose expected session is closest to the monitor's observed value
(locating t3), and evaluates each template's expected session *in that
bucket* — which removes most of the sampling-instant uncertainty.

Everything is vectorized through a cumulative coverage function
``F(x) = Σ_q |[0, x) ∩ [t(q), t(q)+tres(q))|``; the expected session
over ``[a, b)`` is ``(F(b) − F(a)) / (b − a)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collection.logstore import LogStore
from repro.core.config import SessionEstimationMode
from repro.timeseries import TimeSeries

__all__ = ["CoverageFunction", "SessionEstimate", "SessionEstimator"]


class CoverageFunction:
    """Cumulative active-time measure of a set of query intervals."""

    def __init__(self, arrive_ms: np.ndarray, response_ms: np.ndarray) -> None:
        arrive = np.asarray(arrive_ms, dtype=np.float64)
        end = arrive + np.asarray(response_ms, dtype=np.float64)
        self._arrive = np.sort(arrive)
        self._end = np.sort(end)
        self._cum_arrive = np.concatenate([[0.0], np.cumsum(self._arrive)])
        self._cum_end = np.concatenate([[0.0], np.cumsum(self._end)])
        self._n = len(arrive)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """``F(x) = Σ_q (min(x, end_q) − min(x, arrive_q))`` vectorized."""
        x = np.asarray(x, dtype=np.float64)
        return self._sum_min(x, self._end, self._cum_end) - self._sum_min(
            x, self._arrive, self._cum_arrive
        )

    def _sum_min(self, x: np.ndarray, sorted_vals: np.ndarray, cumsum: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(sorted_vals, x, side="left")
        return cumsum[idx] + (self._n - idx) * x

    def expected_session(self, starts_ms: np.ndarray, ends_ms: np.ndarray) -> np.ndarray:
        """Expected active session over each interval [start, end) (ms)."""
        starts_ms = np.asarray(starts_ms, dtype=np.float64)
        ends_ms = np.asarray(ends_ms, dtype=np.float64)
        widths = ends_ms - starts_ms
        if (widths <= 0).any():
            raise ValueError("intervals must have positive width")
        return (self(ends_ms) - self(starts_ms)) / widths


@dataclass
class SessionEstimate:
    """Result of individual active-session estimation for one case."""

    #: Per-template estimated active-session series (1 s interval).
    per_template: dict[str, TimeSeries]
    #: Sum over templates — the estimate of the instance active session.
    total: TimeSeries
    #: Selected bucket index per second (empty for bucket-less modes).
    selected_buckets: np.ndarray

    def get(self, sql_id: str) -> TimeSeries:
        series = self.per_template.get(sql_id)
        if series is None:
            return TimeSeries.zeros(
                len(self.total), start=self.total.start, name=sql_id
            )
        return series


class SessionEstimator:
    """Estimates each template's active session from query logs.

    Parameters
    ----------
    mode:
        Which estimation method to use (Table III variants).
    buckets:
        K — how many buckets each second is split into.
    span_seconds:
        The paper's Section IV-C extension: when ``SHOW STATUS`` may not
        finish within one second, the bucket search extends over
        ``[t, t + span_seconds)`` — K buckets *per second* across the
        span.  The default of 1 is the paper's standard assumption.
    """

    def __init__(
        self,
        mode: SessionEstimationMode = SessionEstimationMode.BUCKETS,
        buckets: int = 10,
        span_seconds: int = 1,
    ) -> None:
        if buckets < 1:
            raise ValueError("buckets must be at least 1")
        if span_seconds < 1:
            raise ValueError("span_seconds must be at least 1")
        self.mode = mode
        self.buckets = int(buckets)
        self.span_seconds = int(span_seconds)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def estimate(
        self,
        logs: LogStore,
        sql_ids: list[str],
        observed_session: TimeSeries,
    ) -> SessionEstimate:
        """Estimate per-template sessions over the observed series' window."""
        ts, te = observed_session.start, observed_session.end
        if self.mode is SessionEstimationMode.RESPONSE_TIME:
            return self._estimate_by_response_time(logs, sql_ids, ts, te, observed_session)
        if self.mode is SessionEstimationMode.NO_BUCKETS:
            return self._estimate_expectation(logs, sql_ids, ts, te, observed_session, buckets=1)
        return self._estimate_expectation(
            logs, sql_ids, ts, te, observed_session, buckets=self.buckets
        )

    # ------------------------------------------------------------------
    # Baseline: total response time per second (Estimate-by-RT)
    # ------------------------------------------------------------------
    def _estimate_by_response_time(
        self, logs: LogStore, sql_ids, ts, te, observed: TimeSeries
    ) -> SessionEstimate:
        n = te - ts
        per_template: dict[str, TimeSeries] = {}
        total = np.zeros(n)
        for sql_id in sql_ids:
            tq = logs.queries_in_window(sql_id, ts, te)
            values = np.zeros(n)
            if len(tq):
                idx = (tq.arrive_ms // 1000 - ts).astype(np.int64)
                ok = (idx >= 0) & (idx < n)
                values = np.bincount(idx[ok], weights=tq.response_ms[ok], minlength=n) / 1000.0
            per_template[sql_id] = TimeSeries(values, start=ts, name=sql_id)
            total += values
        return SessionEstimate(
            per_template=per_template,
            total=TimeSeries(total, start=ts, name="estimated_session"),
            selected_buckets=np.zeros(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Expectation-based estimation, with or without bucket selection
    # ------------------------------------------------------------------
    def _estimate_expectation(
        self, logs: LogStore, sql_ids, ts, te, observed: TimeSeries, buckets: int
    ) -> SessionEstimate:
        n = te - ts
        width_ms = 1000.0 / buckets
        seconds_ms = (ts + np.arange(n, dtype=np.float64)) * 1000.0

        # Collect per-template query intervals once.  Queries that began
        # before ts but are still running contribute too, so the lookup
        # window extends a little backwards.
        lookback = 300  # seconds; longer-running queries are rare
        template_queries = {
            sql_id: logs.queries_in_window(sql_id, ts - lookback, te)
            for sql_id in sql_ids
        }

        if buckets > 1:
            # Expected instance session per bucket, from the pooled log.
            arrive = np.concatenate(
                [tq.arrive_ms for tq in template_queries.values()]
            ) if template_queries else np.zeros(0)
            response = np.concatenate(
                [tq.response_ms for tq in template_queries.values()]
            ) if template_queries else np.zeros(0)
            pooled = CoverageFunction(arrive, response)
            # Bucket edges: shape (n, total_buckets + 1).  With
            # span_seconds > 1 the search covers K buckets per second
            # over [t, t + span) — the paper's slow-SHOW STATUS extension.
            total_buckets = buckets * self.span_seconds
            edges = seconds_ms[:, None] + np.arange(total_buckets + 1) * width_ms
            expected = pooled.expected_session(edges[:, :-1].ravel(), edges[:, 1:].ravel())
            expected = expected.reshape(n, total_buckets)
            error = np.abs(expected - observed.values[:, None])
            selected = np.argmin(error, axis=1)
            sel_start = seconds_ms + selected * width_ms
            sel_end = sel_start + width_ms
        else:
            selected = np.zeros(0, dtype=np.int64)
            sel_start = seconds_ms
            sel_end = seconds_ms + 1000.0

        per_template: dict[str, TimeSeries] = {}
        total = np.zeros(n)
        for sql_id, tq in template_queries.items():
            if len(tq) == 0:
                per_template[sql_id] = TimeSeries.zeros(n, start=ts, name=sql_id)
                continue
            coverage = CoverageFunction(tq.arrive_ms, tq.response_ms)
            values = coverage.expected_session(sel_start, sel_end)
            per_template[sql_id] = TimeSeries(values, start=ts, name=sql_id)
            total += values
        return SessionEstimate(
            per_template=per_template,
            total=TimeSeries(total, start=ts, name="estimated_session"),
            selected_buckets=np.asarray(selected, dtype=np.int64),
        )
