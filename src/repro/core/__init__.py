"""PinSQL core: the paper's primary contribution.

The four modules of the system map onto this package as follows:

* Data Collection And Anomaly Detection → ``repro.collection`` and
  ``repro.detection`` (substrates), plus the individual active-session
  estimation implemented here (:mod:`repro.core.session_estimation`);
* High-impact SQL Identification → :mod:`repro.core.hsql`;
* Root Cause SQL Identification → :mod:`repro.core.rsql`;
* Repairing → :mod:`repro.core.repair`.

:class:`PinSQL` wires them into the case-in / rankings-out pipeline.
"""

from repro.core.config import PinSQLConfig, SessionEstimationMode
from repro.core.case import AnomalyCase
from repro.core.session_estimation import (
    CoverageFunction,
    SessionEstimate,
    SessionEstimator,
)
from repro.core.hsql import HsqlIdentifier, HsqlRanking, HsqlScores
from repro.core.rsql import Cluster, RsqlIdentifier, RsqlResult
from repro.core.baselines import BASELINES, TopMetricRanker, top_en, top_er, top_rt
from repro.core.autoregressive import GrangerRanker
from repro.core.pipeline import PinSQL, PinSQLResult, StageTimings
from repro.core.repair import (
    INDEX_BACKED_ROWS,
    RepairAction,
    SqlThrottleAction,
    QueryOptimizationAction,
    AutoScaleAction,
    OptimizationSkip,
    RepairRule,
    RepairConfig,
    DEFAULT_REPAIR_CONFIG,
    RepairEngine,
    RepairPlan,
    PlanValidation,
    validate_plan,
    plan_optimization,
)

__all__ = [
    "PinSQLConfig",
    "SessionEstimationMode",
    "AnomalyCase",
    "CoverageFunction",
    "SessionEstimate",
    "SessionEstimator",
    "HsqlIdentifier",
    "HsqlRanking",
    "HsqlScores",
    "Cluster",
    "RsqlIdentifier",
    "RsqlResult",
    "BASELINES",
    "TopMetricRanker",
    "top_en",
    "top_er",
    "top_rt",
    "GrangerRanker",
    "PinSQL",
    "PinSQLResult",
    "StageTimings",
    "INDEX_BACKED_ROWS",
    "RepairAction",
    "SqlThrottleAction",
    "QueryOptimizationAction",
    "AutoScaleAction",
    "OptimizationSkip",
    "RepairRule",
    "RepairConfig",
    "DEFAULT_REPAIR_CONFIG",
    "RepairEngine",
    "RepairPlan",
    "PlanValidation",
    "validate_plan",
    "plan_optimization",
]
