"""High-impact SQL identification (paper Section V).

Fuses three per-template scores — all mapping to [−1, 1] — into a
weighted impact on the instance active session:

* **trend-level** — sigmoid-weighted Pearson between the template's
  individual active session and the instance session, emphasising the
  anomaly window;
* **scale-level** — min-max normalised total session over the anomaly
  window, rescaled to [−1, 1];
* **scale-trend-level** — Pearson between the template's *share* of the
  session and the session, catching templates that dominate exactly when
  the anomaly occurs.

The fusion weights adapt: with ``Qmax`` the largest template by scale,
``α = corr(session_Qmax, session)`` and ``β = −α``, so when the biggest
template itself drives the anomaly the scale score dominates, and when
it does not, trend takes over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.case import AnomalyCase
from repro.core.session_estimation import SessionEstimate
from repro.timeseries import pearson, sigmoid_anomaly_weights, weighted_pearson

__all__ = ["HsqlScores", "HsqlRanking", "HsqlIdentifier"]


@dataclass(frozen=True)
class HsqlScores:
    """Per-template level scores and the fused impact."""

    sql_id: str
    trend: float
    scale: float
    scale_trend: float
    impact: float


@dataclass
class HsqlRanking:
    """Ranked H-SQL identification result."""

    scores: list[HsqlScores]          # sorted by impact, descending
    alpha: float
    beta: float

    @property
    def ranked_ids(self) -> list[str]:
        return [s.sql_id for s in self.scores]

    def impact_of(self, sql_id: str) -> float:
        for s in self.scores:
            if s.sql_id == sql_id:
                return s.impact
        return float("-inf")


class HsqlIdentifier:
    """Computes the three level scores and the fused impact ranking."""

    def __init__(
        self,
        smooth_factor: float = 30.0,
        use_trend: bool = True,
        use_scale: bool = True,
        use_scale_trend: bool = True,
        use_weighted_final_score: bool = True,
    ) -> None:
        if smooth_factor <= 0:
            raise ValueError("smooth_factor must be positive")
        self.smooth_factor = smooth_factor
        self.use_trend = use_trend
        self.use_scale = use_scale
        self.use_scale_trend = use_scale_trend
        self.use_weighted_final_score = use_weighted_final_score

    def identify(self, case: AnomalyCase, sessions: SessionEstimate) -> HsqlRanking:
        """Rank templates by their impact on the instance active session."""
        session = case.active_session
        sql_ids = list(sessions.per_template)
        if not sql_ids:
            return HsqlRanking(scores=[], alpha=1.0, beta=-1.0)
        weights = sigmoid_anomaly_weights(
            case.ts, case.te, case.anomaly_start, case.anomaly_end, self.smooth_factor
        )
        lo, hi = case.anomaly_indices()

        trend: dict[str, float] = {}
        scale_raw: dict[str, float] = {}
        scale_trend: dict[str, float] = {}
        session_values = session.values
        safe_session = np.where(session_values == 0.0, np.nan, session_values)
        for sql_id in sql_ids:
            series = sessions.per_template[sql_id]
            trend[sql_id] = weighted_pearson(series.values, session_values, weights)
            scale_raw[sql_id] = float(series.values[lo:hi].sum())
            share = np.nan_to_num(series.values / safe_session, nan=0.0)
            scale_trend[sql_id] = pearson(share, session_values)

        # Min-max normalise raw scales into [-1, 1].
        raw = np.array([scale_raw[sid] for sid in sql_ids])
        span = raw.max() - raw.min()
        if span <= 0:
            normalised = np.zeros(len(sql_ids))
        else:
            normalised = 2.0 * (raw - raw.min()) / span - 1.0
        scale = {sid: float(v) for sid, v in zip(sql_ids, normalised)}

        # Adaptive weights: does the largest template drive the session?
        q_max = max(sql_ids, key=lambda sid: scale[sid])
        if self.use_weighted_final_score:
            alpha = pearson(sessions.per_template[q_max].values, session_values)
            beta = -alpha
        else:
            alpha = 1.0
            beta = 1.0

        scores = []
        for sql_id in sql_ids:
            impact = 0.0
            if self.use_trend:
                impact += beta * trend[sql_id]
            if self.use_scale:
                impact += alpha * scale[sql_id]
            if self.use_scale_trend:
                impact += scale_trend[sql_id]
            scores.append(
                HsqlScores(
                    sql_id=sql_id,
                    trend=trend[sql_id],
                    scale=scale[sql_id],
                    scale_trend=scale_trend[sql_id],
                    impact=float(impact),
                )
            )
        scores.sort(key=lambda s: s.impact, reverse=True)
        return HsqlRanking(scores=scores, alpha=float(alpha), beta=float(beta))
