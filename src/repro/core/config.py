"""PinSQL hyperparameters and ablation switches.

Defaults follow the paper's Implementation Details (Section VIII-A):
δs = 30 min of pre-anomaly context, smooth factor ks = 30, clustering
threshold τ = 0.8, cluster count cap Kc = 5, cumulative threshold
τc = 0.95, and K = 10 buckets for active-session estimation.

Every ablation of the paper's Fig. 6 is a configuration flag here, so
the ablation benchmark runs variants without code forks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["SessionEstimationMode", "PinSQLConfig"]


class SessionEstimationMode(enum.Enum):
    """How individual active sessions are obtained (Table III variants)."""

    BUCKETS = "buckets"             # full method, K buckets per second
    NO_BUCKETS = "no_buckets"       # expectation over the whole second
    RESPONSE_TIME = "response_time"  # total response time per second / 1000


@dataclass(frozen=True)
class PinSQLConfig:
    """Complete configuration of a PinSQL pipeline instance."""

    # ------------------------------------------------------------------
    # Data collection
    # ------------------------------------------------------------------
    #: δs — how much pre-anomaly context is analysed (seconds).
    delta_start_s: int = 1800
    #: Granularity used for #execution clustering and history data.
    clustering_interval_s: int = 60

    # ------------------------------------------------------------------
    # Individual active-session estimation (Section IV-C)
    # ------------------------------------------------------------------
    session_estimation: SessionEstimationMode = SessionEstimationMode.BUCKETS
    #: K — buckets one second is split into.
    session_buckets: int = 10

    # ------------------------------------------------------------------
    # H-SQL identification (Section V)
    # ------------------------------------------------------------------
    #: ks — smooth factor of the sigmoid anomaly weight.
    smooth_factor: float = 30.0
    use_trend_score: bool = True
    use_scale_score: bool = True
    use_scale_trend_score: bool = True
    #: When False, α and β are pinned to 1 (ablation "w/o Weighted Final
    #: Score"); when True they adapt to the largest template's correlation.
    use_weighted_final_score: bool = True

    # ------------------------------------------------------------------
    # R-SQL identification (Section VI)
    # ------------------------------------------------------------------
    #: τ — correlation threshold of the clustering adjacency.
    cluster_threshold: float = 0.8
    #: Whether performance metrics join the graph as temporary nodes.
    use_metric_temp_nodes: bool = True
    #: Kc — maximum clusters examined by the cumulative threshold.
    max_clusters: int = 5
    #: τc — cumulative correlation threshold.
    cumulative_threshold: float = 0.95
    #: When False, only the single top cluster is kept (ablation).
    use_cumulative_threshold: bool = True
    #: When False, clusters are ranked by Top-RT instead of H-SQL impact
    #: (ablation "w/o Direct Cause SQL Ranking").
    use_direct_cause_ranking: bool = True
    #: When False, the history-trend verification step is skipped.
    use_history_verification: bool = True
    #: Nd values — how many days back history is compared.
    history_days: tuple[int, ...] = (1, 3, 7)
    #: Tukey fence multiplier of the history anomaly detector.
    tukey_k: float = 3.0

    # ------------------------------------------------------------------
    # Validation and ablation helpers
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.delta_start_s < 0:
            raise ValueError("delta_start_s must be non-negative")
        if self.session_buckets < 1:
            raise ValueError("session_buckets must be at least 1")
        if self.smooth_factor <= 0:
            raise ValueError("smooth_factor must be positive")
        if not -1.0 <= self.cluster_threshold <= 1.0:
            raise ValueError("cluster_threshold must lie in [-1, 1]")
        if self.max_clusters < 1:
            raise ValueError("max_clusters must be at least 1")
        if not -1.0 <= self.cumulative_threshold <= 1.0:
            raise ValueError("cumulative_threshold must lie in [-1, 1]")
        if self.clustering_interval_s < 1:
            raise ValueError("clustering_interval_s must be at least 1")

    def without(self, ablation: str) -> "PinSQLConfig":
        """Return a copy with one named component disabled (Fig. 6).

        Recognised names: ``estimate_session``, ``trend_score``,
        ``scale_score``, ``scale_trend_score``, ``weighted_final_score``,
        ``cumulative_threshold``, ``direct_cause_ranking``,
        ``history_verification``, ``buckets``, ``metric_temp_nodes``.
        """
        mapping = {
            "estimate_session": {"session_estimation": SessionEstimationMode.RESPONSE_TIME},
            "buckets": {"session_estimation": SessionEstimationMode.NO_BUCKETS},
            "trend_score": {"use_trend_score": False},
            "scale_score": {"use_scale_score": False},
            "scale_trend_score": {"use_scale_trend_score": False},
            "weighted_final_score": {"use_weighted_final_score": False},
            "cumulative_threshold": {"use_cumulative_threshold": False},
            "direct_cause_ranking": {"use_direct_cause_ranking": False},
            "history_verification": {"use_history_verification": False},
            "metric_temp_nodes": {"use_metric_temp_nodes": False},
        }
        if ablation not in mapping:
            raise ValueError(f"unknown ablation {ablation!r}")
        return replace(self, **mapping[ablation])
