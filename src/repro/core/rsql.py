"""Root-cause SQL identification (paper Section VI).

Pipeline: cluster templates by their ``#execution`` trends (plus the
performance metrics as temporary graph nodes) → rank clusters by the
highest H-SQL impact they contain → select clusters with the cumulative
correlation threshold → verify candidates against their history trends
(Tukey's rule) → rank the survivors by the correlation of their
execution counts with the instance active session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.case import AnomalyCase
from repro.core.hsql import HsqlRanking
from repro.core.session_estimation import SessionEstimate
from repro.telemetry import Tracer, get_tracer
from repro.timeseries import TukeyDetector, pearson

__all__ = ["Cluster", "RsqlResult", "RsqlIdentifier"]


@dataclass
class Cluster:
    """One business cluster of templates."""

    sql_ids: list[str]
    impact: float = float("-inf")

    def __len__(self) -> int:
        return len(self.sql_ids)


@dataclass
class RsqlResult:
    """Ranked R-SQL identification result with diagnostics."""

    ranked: list[tuple[str, float]]        # (sql_id, final score), descending
    clusters: list[Cluster] = field(default_factory=list)
    selected_clusters: int = 0
    candidates: list[str] = field(default_factory=list)
    verified: list[str] = field(default_factory=list)
    #: Whether the candidate set had to be widened to the full top-Kc
    #: clusters because verification rejected every initial candidate.
    widened: bool = False
    #: Wall-clock seconds: clustering + cluster selection, and history
    #: verification + final ranking (the paper reports both).
    clustering_seconds: float = 0.0
    verification_seconds: float = 0.0

    @property
    def ranked_ids(self) -> list[str]:
        return [sql_id for sql_id, _ in self.ranked]


class RsqlIdentifier:
    """Implements the clustering-based R-SQL selection."""

    def __init__(
        self,
        cluster_threshold: float = 0.8,
        clustering_interval_s: int = 60,
        use_metric_temp_nodes: bool = True,
        max_clusters: int = 5,
        cumulative_threshold: float = 0.95,
        use_cumulative_threshold: bool = True,
        use_direct_cause_ranking: bool = True,
        use_history_verification: bool = True,
        history_days: tuple[int, ...] = (1, 3, 7),
        tukey_k: float = 3.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.tracer = tracer or get_tracer()
        self.cluster_threshold = float(cluster_threshold)
        self.clustering_interval_s = int(clustering_interval_s)
        self.use_metric_temp_nodes = use_metric_temp_nodes
        self.max_clusters = int(max_clusters)
        self.cumulative_threshold = float(cumulative_threshold)
        self.use_cumulative_threshold = use_cumulative_threshold
        self.use_direct_cause_ranking = use_direct_cause_ranking
        self.use_history_verification = use_history_verification
        self.history_days = tuple(history_days)
        self._tukey = TukeyDetector(k=tukey_k)

    # ------------------------------------------------------------------
    # Stage 1: clustering by #execution trends
    # ------------------------------------------------------------------
    def cluster_templates(self, case: AnomalyCase) -> list[Cluster]:
        """Connected components of the trend-correlation graph."""
        interval = self.clustering_interval_s
        store = (
            case.templates.resample(interval)
            if interval > 1
            else case.templates
        )
        sql_ids = [sid for sid in store.sql_ids]
        rows: list[np.ndarray] = [store.executions(sid).values for sid in sql_ids]
        node_names: list[str] = list(sql_ids)
        n_templates = len(sql_ids)
        if self.use_metric_temp_nodes:
            for name, series in case.metrics.series.items():
                resampled = series.resample(interval, how="mean") if interval > 1 else series
                rows.append(resampled.values[: len(rows[0])] if rows else resampled.values)
                node_names.append(f"__metric__{name}")
        if not rows:
            return []
        length = min(len(r) for r in rows)
        matrix = np.vstack([r[:length] for r in rows])
        corr = _safe_corrcoef(matrix)
        adj = corr > self.cluster_threshold
        graph = nx.Graph()
        graph.add_nodes_from(range(len(node_names)))
        edge_idx = np.argwhere(np.triu(adj, k=1))
        graph.add_edges_from((int(i), int(j)) for i, j in edge_idx)
        clusters: list[Cluster] = []
        for component in nx.connected_components(graph):
            members = [node_names[i] for i in component if i < n_templates]
            if members:
                clusters.append(Cluster(sql_ids=members))
        return clusters

    # ------------------------------------------------------------------
    # Stage 2: rank clusters (by H-SQL impact or Top-RT for ablation)
    # ------------------------------------------------------------------
    def rank_clusters(
        self, case: AnomalyCase, clusters: list[Cluster], hsql: HsqlRanking
    ) -> list[Cluster]:
        if self.use_direct_cause_ranking:
            impact = {s.sql_id: s.impact for s in hsql.scores}
            default = float("-inf")
        else:
            lo, hi = case.anomaly_indices()
            impact = {
                sid: float(case.templates.total_response_time(sid).values[lo:hi].sum())
                for sid in case.sql_ids
            }
            default = 0.0
        for cluster in clusters:
            cluster.impact = max(
                (impact.get(sid, default) for sid in cluster.sql_ids),
                default=default,
            )
        clusters.sort(key=lambda c: c.impact, reverse=True)
        return clusters

    # ------------------------------------------------------------------
    # Stage 3: cumulative-threshold cluster selection
    # ------------------------------------------------------------------
    def select_clusters(
        self,
        case: AnomalyCase,
        clusters: list[Cluster],
        sessions: SessionEstimate,
    ) -> list[str]:
        """Candidate template ids from the selected top clusters."""
        if not clusters:
            return []
        if not self.use_cumulative_threshold:
            return list(clusters[0].sql_ids)
        session = case.active_session.values
        cumulative = np.zeros(len(session))
        selected: list[str] = []
        for i, cluster in enumerate(clusters[: self.max_clusters]):
            for sql_id in cluster.sql_ids:
                cumulative = cumulative + sessions.get(sql_id).values
                selected.append(sql_id)
            if pearson(cumulative, session) >= self.cumulative_threshold:
                break
        return selected

    # ------------------------------------------------------------------
    # Stage 4: history-trend verification
    # ------------------------------------------------------------------
    def verify_history(self, case: AnomalyCase, candidates: list[str]) -> list[str]:
        """Keep templates whose execution surge is new (paper's two rules)."""
        if not self.use_history_verification:
            return list(candidates)
        interval = self.clustering_interval_s
        store = (
            case.templates.resample(interval) if interval > 1 else case.templates
        )
        lo = (case.anomaly_start - case.ts) // interval
        hi = max(lo + 1, (case.anomaly_end - case.ts) // interval)
        verified: list[str] = []
        for sql_id in candidates:
            current = store.executions(sql_id)
            # Rule (i): an upward execution anomaly during the window,
            # judged against pre-anomaly fences.
            if not self._tukey.has_anomaly_vs_baseline(current, window=(lo, hi)):
                continue
            # Rule (ii): no such anomaly in the same relative window of
            # any history day.  Missing history means a brand-new SQL,
            # which passes trivially.
            recurred = False
            for days in self.history_days:
                past = case.history_of(sql_id, days)
                if past is None:
                    continue
                if self._tukey.has_anomaly_vs_baseline(past, window=(lo, hi)):
                    recurred = True
                    break
            if not recurred:
                verified.append(sql_id)
        return verified

    # ------------------------------------------------------------------
    # Stage 5: final ranking
    # ------------------------------------------------------------------
    def rank_candidates(self, case: AnomalyCase, candidates: list[str]) -> list[tuple[str, float]]:
        """Rank by correlation of #execution with the active session."""
        session = case.active_session.values
        scored = [
            (sql_id, pearson(case.templates.executions(sql_id).values, session))
            for sql_id in candidates
        ]
        scored.sort(key=lambda item: item[1], reverse=True)
        return scored

    # ------------------------------------------------------------------
    # Full module
    # ------------------------------------------------------------------
    def identify(
        self,
        case: AnomalyCase,
        hsql: HsqlRanking,
        sessions: SessionEstimate,
    ) -> RsqlResult:
        with self.tracer.span("clustering_and_filtering") as s_cluster:
            clusters = self.cluster_templates(case)
            clusters = self.rank_clusters(case, clusters, hsql)
            candidates = self.select_clusters(case, clusters, sessions)
        with self.tracer.span("history_verification") as s_verify:
            verified = self.verify_history(case, candidates)
            widened = False
            if not verified and self.use_history_verification:
                # Verification rejected every candidate: the root cause is
                # likely in a cluster the cumulative threshold stopped short
                # of (its H-SQLs explained the session on their own, but none
                # of them shows the execution surge a root cause must have).
                # Fall back to verifying every template — at this point the
                # history filter itself is what narrows the range.
                widened = True
                wide = [sql_id for cluster in clusters for sql_id in cluster.sql_ids]
                verified = self.verify_history(case, wide)
            # Last-resort fallback: never answer with nothing when candidates
            # existed — production systems page a DBA with *something* ranked.
            effective = verified if verified else candidates
            ranked = self.rank_candidates(case, effective)
        return RsqlResult(
            ranked=ranked,
            clusters=clusters,
            selected_clusters=len(clusters),
            candidates=candidates,
            verified=verified,
            widened=widened,
            clustering_seconds=s_cluster.elapsed,
            verification_seconds=s_verify.elapsed,
        )


def _safe_corrcoef(matrix: np.ndarray) -> np.ndarray:
    """Row-wise correlation with zero-variance rows mapped to 0."""
    matrix = np.asarray(matrix, dtype=np.float64)
    means = matrix.mean(axis=1, keepdims=True)
    centered = matrix - means
    norms = np.sqrt((centered**2).sum(axis=1))
    safe = norms > 1e-12
    denom = np.where(safe, norms, 1.0)
    normalised = centered / denom[:, None]
    corr = normalised @ normalised.T
    corr[~safe, :] = 0.0
    corr[:, ~safe] = 0.0
    np.clip(corr, -1.0, 1.0, out=corr)
    return corr
