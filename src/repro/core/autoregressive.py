"""Autoregressive (Granger-causality) baseline — extension.

The paper discusses autoregressive root-cause methods (cMLP/cLSTM,
SCGL) and reports that, at SQL-template scale, they face a huge
dependency-function space and fail to produce reasonable results; it
therefore skips them in the evaluation.  To make that comparison
concrete, this module implements the *linear* member of the family: a
pairwise Granger-causality ranker.

For each template Q, two ridge-regularised autoregressive models of the
active session are fit — one on the session's own lags, one additionally
on Q's ``#execution`` lags — and the score is the log-ratio of their
residual variances (how much Q's past helps predict the session beyond
the session's own past).  Templates are ranked by the score.

The weaknesses the paper predicts are visible here: the per-template fit
cost scales linearly with the template count, and on collinear business
traffic (every template of one business shares a trend) the attribution
is arbitrary — which the scalability test in the test suite demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.core.case import AnomalyCase

__all__ = ["GrangerRanker"]


def _lag_matrix(series: np.ndarray, lags: int) -> np.ndarray:
    """Columns of lagged values: X[t] = (x[t-1], ..., x[t-lags])."""
    n = len(series) - lags
    return np.column_stack([series[lags - k - 1 : lags - k - 1 + n] for k in range(lags)])


def _ridge_residual_variance(X: np.ndarray, y: np.ndarray, alpha: float) -> float:
    """Residual variance of a ridge regression fit."""
    n, d = X.shape
    gram = X.T @ X + alpha * np.eye(d)
    coef = np.linalg.solve(gram, X.T @ y)
    resid = y - X @ coef
    return float(resid.var()) + 1e-12


class GrangerRanker:
    """Ranks templates by pairwise linear Granger causality on the session.

    Parameters
    ----------
    lags:
        Autoregressive order (in samples of ``interval_s``).
    interval_s:
        Series granularity; 1-minute keeps the problem tractable.
    alpha:
        Ridge regularisation strength.
    max_templates:
        Safety cap: beyond this, only the highest-traffic templates are
        scored (the method's cost is linear in the template count, and
        its answers stop being meaningful long before the cost hurts).
    """

    name = "Granger"

    def __init__(
        self,
        lags: int = 5,
        interval_s: int = 60,
        alpha: float = 1.0,
        max_templates: int | None = None,
    ) -> None:
        if lags < 1:
            raise ValueError("lags must be at least 1")
        self.lags = int(lags)
        self.interval_s = int(interval_s)
        self.alpha = float(alpha)
        self.max_templates = max_templates

    def causality_score(self, session: np.ndarray, execution: np.ndarray) -> float:
        """Granger score of one template's execution series."""
        lags = self.lags
        if len(session) <= 2 * lags + 2:
            return 0.0
        y = session[lags:]
        own = _lag_matrix(session, lags)
        var_restricted = _ridge_residual_variance(own, y, self.alpha)
        full = np.hstack([own, _lag_matrix(execution, lags)])
        var_full = _ridge_residual_variance(full, y, self.alpha)
        return float(np.log(var_restricted / var_full))

    def rank(self, case: AnomalyCase) -> list[str]:
        interval = self.interval_s
        store = case.templates.resample(interval) if interval > 1 else case.templates
        session = (
            case.active_session.resample(interval, how="mean")
            if interval > 1
            else case.active_session
        ).values
        sql_ids = store.sql_ids
        if self.max_templates is not None and len(sql_ids) > self.max_templates:
            sql_ids = sorted(
                sql_ids,
                key=lambda sid: store.executions(sid).total(),
                reverse=True,
            )[: self.max_templates]
        scores: dict[str, float] = {}
        for sql_id in sql_ids:
            execution = store.executions(sql_id).values[: len(session)]
            scores[sql_id] = self.causality_score(session[: len(execution)], execution)
        ranked = sorted(scores, key=scores.get, reverse=True)
        # Templates excluded by the cap rank last, in traffic order.
        rest = [sid for sid in store.sql_ids if sid not in scores]
        return ranked + rest
