"""Top-SQL baselines (paper Section VIII-A competitors).

Each baseline ranks templates by one aggregated metric over the anomaly
window — the "sort the Top SQL page" workflow of cloud diagnosing
products:

* **Top-EN** — by execution count;
* **Top-RT** — by total response time (equivalent to ranking average
  active session, the metric Performance Insights surfaces);
* **Top-ER** — by examined rows (a CPU-usage proxy).

``Top-All`` is not a separate ranker: the paper defines it as the best
result among the three variants per case, which the evaluation harness
computes from these rankings.
"""

from __future__ import annotations

from typing import Protocol

from repro.core.case import AnomalyCase

__all__ = ["Ranker", "TopMetricRanker", "top_en", "top_rt", "top_er", "BASELINES"]


class Ranker(Protocol):
    """Anything that ranks a case's templates (most suspicious first)."""

    name: str

    def rank(self, case: AnomalyCase) -> list[str]:
        ...


class TopMetricRanker:
    """Ranks templates by one aggregated template metric over [as, ae)."""

    def __init__(self, name: str, metric: str) -> None:
        self.name = name
        self.metric = metric

    def rank(self, case: AnomalyCase) -> list[str]:
        lo, hi = case.anomaly_indices()
        totals = {
            sql_id: float(case.templates.get(sql_id, self.metric).values[lo:hi].sum())
            for sql_id in case.sql_ids
        }
        return sorted(totals, key=totals.get, reverse=True)


def top_en() -> TopMetricRanker:
    """Top SQLs of #execution."""
    return TopMetricRanker("Top-EN", "#execution")


def top_rt() -> TopMetricRanker:
    """Top SQLs of total response time."""
    return TopMetricRanker("Top-RT", "total_tres")


def top_er() -> TopMetricRanker:
    """Top SQLs of #examined rows."""
    return TopMetricRanker("Top-ER", "total_examined_rows")


def BASELINES() -> list[TopMetricRanker]:
    """The three Top-SQL baselines evaluated by the paper."""
    return [top_rt(), top_er(), top_en()]
