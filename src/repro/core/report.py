"""Human-readable diagnosis reports.

Renders a :class:`~repro.core.pipeline.PinSQLResult` the way the DAS
console would present it to a DBA: the anomaly summary, the pinpointed
root-cause SQLs with their statements, the high-impact SQLs with their
level scores, the propagation-chain evidence, and the suggested repair
actions.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.case import AnomalyCase
from repro.core.pipeline import PinSQLResult
from repro.core.repair.engine import RepairPlan

__all__ = [
    "DiagnosisReport",
    "render_report",
    "html_escape",
    "html_table",
    "render_html_document",
]


@dataclass(frozen=True)
class DiagnosisReport:
    """A rendered diagnosis."""

    text: str
    top_r_sql: str | None
    top_h_sql: str | None

    def __str__(self) -> str:
        return self.text


# ----------------------------------------------------------------------
# HTML building blocks (shared with the incident flight recorder)
# ----------------------------------------------------------------------
_HTML_STYLE = """\
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 1.6rem; color: #16324f; }
table { border-collapse: collapse; width: 100%; margin: .6rem 0; }
th, td { border: 1px solid #c9d4e0; padding: .3rem .55rem;
         text-align: left; font-size: .9rem; }
th { background: #eef3f8; }
pre { background: #f5f6fa; border: 1px solid #d8dce6; padding: .7rem;
      overflow-x: auto; font-size: .8rem; }
.kv { color: #5a6b7f; }
"""


def html_escape(text: object) -> str:
    """Escape arbitrary text for safe embedding in HTML."""
    return html.escape(str(text), quote=True)


def html_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain HTML table; every cell is escaped."""
    head = "".join(f"<th>{html_escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html_escape(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def render_html_document(title: str, sections: Sequence[tuple[str, str]]) -> str:
    """A self-contained HTML document from ``(heading, body_html)`` pairs.

    Section bodies are raw HTML (build them with :func:`html_table` /
    :func:`html_escape`); headings are escaped here.
    """
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html_escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{html_escape(title)}</h1>",
    ]
    for heading, body in sections:
        if heading:
            parts.append(f"<h2>{html_escape(heading)}</h2>")
        parts.append(body)
    parts.append("</body></html>")
    return "\n".join(parts)


def _statement_of(case: AnomalyCase, sql_id: str, width: int = 64) -> str:
    info = case.catalog.get(sql_id)
    if info is None:
        return "(statement unavailable)"
    text = info.template
    return text if len(text) <= width else text[: width - 1] + "…"


def _session_summary(case: AnomalyCase) -> tuple[float, float]:
    session = case.active_session.values
    lo, hi = case.anomaly_indices()
    baseline = float(session[:lo].mean()) if lo > 0 else 0.0
    during = float(session[lo:hi].mean()) if hi > lo else 0.0
    return baseline, during


def render_report(
    case: AnomalyCase,
    result: PinSQLResult,
    plan: RepairPlan | None = None,
    top_k: int = 5,
) -> DiagnosisReport:
    """Render the diagnosis of one anomaly case as text."""
    lines: list[str] = []
    baseline, during = _session_summary(case)
    duration = case.anomaly_duration

    lines.append("=" * 72)
    lines.append("PinSQL diagnosis report")
    lines.append("=" * 72)
    lines.append(
        f"anomaly window : [{case.anomaly_start}, {case.anomaly_end}) "
        f"({duration} s; data window [{case.ts}, {case.te}))"
    )
    lines.append(
        f"active session : baseline ~{baseline:.1f} -> anomaly ~{during:.1f} "
        f"({during / baseline:.1f}x)" if baseline > 0 else
        f"active session : anomaly ~{during:.1f}"
    )
    lines.append(
        f"templates seen : {len(case.sql_ids)}  "
        f"(analysis took {result.timings.total:.2f} s)"
    )

    lines.append("")
    lines.append("Root cause SQLs (act on these):")
    if result.rsql.ranked:
        for i, (sql_id, score) in enumerate(result.rsql.ranked[:top_k], start=1):
            lines.append(
                f"  {i}. [{sql_id}] corr(#exec, session)={score:+.2f}"
            )
            lines.append(f"     {_statement_of(case, sql_id)}")
    else:
        lines.append("  (none pinpointed — escalate to a DBA)")
    if result.rsql.widened:
        lines.append(
            "  note: cluster selection was widened — the top clusters'"
            " H-SQLs showed no execution surge of their own."
        )

    lines.append("")
    lines.append("High-impact SQLs (symptoms — their sessions drive the anomaly):")
    for i, s in enumerate(result.hsql.scores[:top_k], start=1):
        lines.append(
            f"  {i}. [{s.sql_id}] impact={s.impact:+.2f} "
            f"(trend={s.trend:+.2f}, scale={s.scale:+.2f}, "
            f"scale-trend={s.scale_trend:+.2f})"
        )
        lines.append(f"     {_statement_of(case, s.sql_id)}")

    lines.append("")
    lines.append("Propagation-chain evidence:")
    top_r = result.rsql_ids[0] if result.rsql_ids else None
    top_h = result.hsql_ids[0] if result.hsql_ids else None
    if top_r and top_h:
        r_info = case.catalog.get(top_r)
        h_info = case.catalog.get(top_h)
        shared_tables = (
            set(r_info.tables) & set(h_info.tables)
            if r_info is not None and h_info is not None
            else set()
        )
        if top_r == top_h:
            lines.append(
                f"  [{top_r}] is both root cause and top H-SQL: its own"
                " sessions drive the anomaly directly."
            )
        elif shared_tables:
            lines.append(
                f"  [{top_r}] and the top H-SQL [{top_h}] touch shared"
                f" table(s) {sorted(shared_tables)} — consistent with"
                " lock-based blocking."
            )
        else:
            lines.append(
                f"  [{top_r}] correlates with the session anomaly while"
                f" [{top_h}] carries the session load — consistent with a"
                " resource-level (CPU/IO) propagation."
            )
        cluster = next(
            (c for c in result.rsql.clusters if top_r in c.sql_ids), None
        )
        if cluster is not None and len(cluster) > 1:
            lines.append(
                f"  the root cause clusters with {len(cluster) - 1} other"
                " template(s) of the same business trend."
            )

    if plan is not None:
        lines.append("")
        lines.append("Suggested repair actions:")
        if plan.actions:
            for action in plan.actions:
                lines.append(f"  - {action.kind} on [{action.sql_id or 'instance'}]")
                for item in getattr(action, "evidence", ()):
                    lines.append(f"      evidence: {item}")
        else:
            lines.append("  - none (thresholds not reached)")
        for skip in getattr(plan, "skips", ()):
            lines.append(f"  - skipped [{skip.sql_id}]: {skip.reason}")
        if plan.executed:
            lines.append(f"  executed: {[a.kind for a in plan.executed]}")

    lines.append("=" * 72)
    return DiagnosisReport(
        text="\n".join(lines),
        top_r_sql=top_r,
        top_h_sql=top_h,
    )
