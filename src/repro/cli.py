"""Command-line interface.

Five subcommands cover the adoption path:

* ``repro generate``  — synthesise a labelled anomaly case to a file;
* ``repro diagnose``  — run PinSQL on a saved case and print the report;
* ``repro evaluate``  — run the Table-I comparison over a corpus;
* ``repro demo``      — generate-and-diagnose in one go;
* ``repro obs``       — exercise the pipeline and dump its self-telemetry
  (metrics snapshot as summary / JSON / Prometheus text exposition).

``demo`` and ``evaluate`` additionally accept ``--telemetry`` to print
the metrics snapshot and the span tree of the run.

Invoke as ``python -m repro <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PinSQL reproduction: pinpoint root-cause SQLs in cloud databases.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a labelled anomaly case")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--category",
        choices=["business_spike", "poor_sql", "mdl_lock", "row_lock", "random"],
        default="random",
    )
    gen.add_argument("--delta-start", type=int, default=900,
                     help="seconds of pre-anomaly context (δs)")
    gen.add_argument("--anomaly-length", type=int, default=450)
    gen.add_argument("--businesses", type=int, default=8)
    gen.add_argument("--out", type=Path, required=True, help="output .npz path")

    diag = sub.add_parser("diagnose", help="diagnose a saved anomaly case")
    diag.add_argument("case", type=Path, help=".npz case file")
    diag.add_argument("--top-k", type=int, default=5)
    diag.add_argument("--no-buckets", action="store_true",
                      help="disable bucketized session estimation")
    diag.add_argument("--suggest-repairs", action="store_true")

    ev = sub.add_parser("evaluate", help="run the Table-I comparison")
    group = ev.add_mutually_exclusive_group(required=True)
    group.add_argument("--cases", type=Path, help="directory of saved cases")
    group.add_argument("--generate", type=int, metavar="N",
                       help="generate N cases on the fly")
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument("--telemetry", action="store_true",
                    help="print the metrics snapshot and span tree afterwards")

    demo = sub.add_parser("demo", help="generate and diagnose one case")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument(
        "--category",
        choices=["business_spike", "poor_sql", "mdl_lock", "row_lock"],
        default="row_lock",
    )
    demo.add_argument("--telemetry", action="store_true",
                      help="print the metrics snapshot and span tree afterwards")

    obs = sub.add_parser(
        "obs", help="exercise the pipeline and dump its self-telemetry"
    )
    obs.add_argument("--seed", type=int, default=42)
    obs.add_argument(
        "--category",
        choices=["business_spike", "poor_sql", "mdl_lock", "row_lock"],
        default="row_lock",
    )
    obs.add_argument(
        "--format",
        choices=["summary", "json", "prometheus"],
        default="summary",
        help="metrics output format",
    )
    obs.add_argument("--log-format", choices=["kv", "json"], default="kv",
                     help="structured-log line format on stderr")
    return parser


def _corpus_config(args) -> "CorpusConfig":
    from repro.evaluation import CorpusConfig

    return CorpusConfig(
        delta_start_s=getattr(args, "delta_start", 900),
        anomaly_length_s=(
            getattr(args, "anomaly_length", 450),
            getattr(args, "anomaly_length", 450) + 1,
        ),
        n_businesses=(getattr(args, "businesses", 8),) * 2,
    )


def _category(name: str):
    from repro.workload import AnomalyCategory

    return None if name == "random" else AnomalyCategory(name)


def cmd_generate(args) -> int:
    from repro.evaluation import generate_case
    from repro.evaluation.persistence import save_case

    labeled = generate_case(args.seed, _corpus_config(args), category=_category(args.category))
    path = save_case(labeled, args.out)
    case = labeled.case
    print(f"wrote {path}")
    print(
        f"  category={labeled.category.value} templates={len(case.sql_ids)} "
        f"window=[{case.anomaly_start}, {case.anomaly_end}) "
        f"queries={case.logs.total_queries():,}"
    )
    print(f"  ground-truth R-SQLs: {sorted(labeled.r_sqls)}")
    return 0


def cmd_diagnose(args) -> int:
    from repro.core import PinSQL, PinSQLConfig, RepairEngine
    from repro.core.report import render_report
    from repro.evaluation.persistence import load_case

    labeled = load_case(args.case)
    config = PinSQLConfig()
    if args.no_buckets:
        config = config.without("buckets")
    result = PinSQL(config).analyze(labeled.case)
    plan = None
    if args.suggest_repairs:
        plan = RepairEngine().plan(labeled.case, result)
    report = render_report(labeled.case, result, plan=plan, top_k=args.top_k)
    print(report.text)
    if labeled.r_sqls:
        hit = report.top_r_sql in labeled.r_sqls
        print(f"ground truth check: top-1 R-SQL is {'CORRECT' if hit else 'WRONG'}")
    return 0


def _print_telemetry() -> None:
    """Dump the global registry and last span tree (the --telemetry flag)."""
    from repro.telemetry import get_registry, get_tracer, render_summary

    print("\n=== telemetry: metrics snapshot ===")
    print(render_summary(get_registry()))
    print("\n=== telemetry: span tree (last trace) ===")
    print(get_tracer().format_tree())


def cmd_evaluate(args) -> int:
    from repro.evaluation import CorpusConfig, evaluate_competition, generate_corpus
    from repro.evaluation.persistence import load_corpus

    if getattr(args, "telemetry", False):
        from repro.telemetry import configure_telemetry

        configure_telemetry()
    if args.cases is not None:
        corpus = load_corpus(args.cases)
        if not corpus:
            print(f"no case_*.npz files under {args.cases}", file=sys.stderr)
            return 1
    else:
        corpus = generate_corpus(CorpusConfig(n_cases=args.generate, seed=args.seed))
    reports = evaluate_competition(corpus)
    print(
        f"{'Method':<10} {'R-H@1':>6} {'R-H@5':>6} {'R-MRR':>6} {'R-Time':>9}   "
        f"{'H-H@1':>6} {'H-H@5':>6} {'H-MRR':>6} {'H-Time':>9}"
    )
    for report in reports:
        print(report.table_row())
    if getattr(args, "telemetry", False):
        _print_telemetry()
    return 0


def cmd_demo(args) -> int:
    from repro.core import PinSQL
    from repro.core.report import render_report
    from repro.evaluation import CorpusConfig, generate_case
    from repro.workload import AnomalyCategory

    if getattr(args, "telemetry", False):
        from repro.telemetry import configure_telemetry

        configure_telemetry()
    cfg = CorpusConfig(delta_start_s=600, anomaly_length_s=(240, 360))
    print(f"generating a {args.category} anomaly case (seed {args.seed}) ...")
    labeled = generate_case(args.seed, cfg, category=AnomalyCategory(args.category))
    result = PinSQL().analyze(labeled.case)
    print(render_report(labeled.case, result).text)
    hit = result.rsql_ids and result.rsql_ids[0] in labeled.r_sqls
    print(f"ground truth check: top-1 R-SQL is {'CORRECT' if hit else 'WRONG'}")
    if getattr(args, "telemetry", False):
        _print_telemetry()
    return 0


def cmd_obs(args) -> int:
    """Exercise the full pipeline, then dump the self-telemetry."""
    import json

    from repro.core import PinSQL
    from repro.evaluation import CorpusConfig, generate_case
    from repro.telemetry import (
        configure_telemetry,
        get_registry,
        get_tracer,
        render_summary,
        reset_telemetry,
    )
    from repro.workload import AnomalyCategory

    configure_telemetry(fmt=args.log_format)
    reset_telemetry()  # metrics below describe this run only
    cfg = CorpusConfig(delta_start_s=600, anomaly_length_s=(240, 360))
    labeled = generate_case(args.seed, cfg, category=AnomalyCategory(args.category))
    PinSQL().analyze(labeled.case)
    registry = get_registry()
    if args.format == "prometheus":
        sys.stdout.write(registry.render_prometheus())
    elif args.format == "json":
        print(json.dumps(registry.snapshot(), indent=2))
    else:
        print("=== metrics snapshot ===")
        print(render_summary(registry))
        print("\n=== span tree (last trace) ===")
        print(get_tracer().format_tree())
    return 0


_COMMANDS = {
    "generate": cmd_generate,
    "diagnose": cmd_diagnose,
    "evaluate": cmd_evaluate,
    "demo": cmd_demo,
    "obs": cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
