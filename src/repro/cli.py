"""Command-line interface.

Seven subcommands cover the adoption path:

* ``repro generate``   — synthesise a labelled anomaly case to a file;
* ``repro diagnose``   — run PinSQL on a saved case and print the report;
* ``repro evaluate``   — run the Table-I comparison over a corpus;
* ``repro demo``       — generate-and-diagnose in one go;
* ``repro fleet-demo`` — simulate a fleet of instances on one broker and
  diagnose them concurrently with the sharded worker pool;
  ``--record DIR`` persists every diagnosis to an incident store;
  ``--processes N`` drains over the columnar dataplane in N worker
  processes, with spans and telemetry merged back into the parent;
* ``repro obs``        — exercise the pipeline and dump its self-telemetry
  (metrics snapshot as summary / JSON / Prometheus text exposition);
  ``--fleet N`` exercises a fleet instead and ``--instance ID`` restricts
  the dump to one instance's labelled series;
* ``repro incidents``  — query a recorded incident store:
  ``list`` the index, ``show`` one evidence chain as text, ``report``
  one as self-contained HTML, ``health`` for the fleet-wide rollup;
* ``repro trace``      — render one incident's cross-process span tree
  as a time waterfall: ``show`` (ASCII) or ``report`` (HTML);
* ``repro lint``       — static anti-pattern analysis over SQL templates:
  the default scenario catalog (with planted-label precision/recall), a
  saved case corpus (``--cases DIR``) or one statement (``--sql``);
  exits non-zero when findings reach ``--fail-on`` (the CI contract);
* ``repro advise``     — workload-level cross-statement analysis: the
  lock-conflict graph, traffic-weighted index advisor and join/fan-out
  passes over the default scenario catalog (with planted-label
  precision/recall); shares the ``repro lint`` exit contract;
* ``repro health``     — proactive fleet health sweeps (the automated
  DBA): ``sweep`` runs the check suite (offline over incident stores,
  or live over a simulated fleet with ``--fleet N``) and persists the
  findings, ``findings`` queries the persisted store, ``report``
  renders the daily fleet report as text or HTML; ``sweep`` shares the
  ``repro lint`` exit contract (0 clean, 1 findings at ``--fail-on``,
  2 usage/data error).

``demo`` and ``evaluate`` additionally accept ``--telemetry`` to print
the metrics snapshot and the span tree of the run.

Invoke as ``python -m repro <subcommand>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PinSQL reproduction: pinpoint root-cause SQLs in cloud databases.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a labelled anomaly case")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--category",
        choices=["business_spike", "poor_sql", "mdl_lock", "row_lock", "random"],
        default="random",
    )
    gen.add_argument("--delta-start", type=int, default=900,
                     help="seconds of pre-anomaly context (δs)")
    gen.add_argument("--anomaly-length", type=int, default=450)
    gen.add_argument("--businesses", type=int, default=8)
    gen.add_argument("--out", type=Path, required=True, help="output .npz path")

    diag = sub.add_parser("diagnose", help="diagnose a saved anomaly case")
    diag.add_argument("case", type=Path, help=".npz case file")
    diag.add_argument("--top-k", type=int, default=5)
    diag.add_argument("--no-buckets", action="store_true",
                      help="disable bucketized session estimation")
    diag.add_argument("--suggest-repairs", action="store_true")

    ev = sub.add_parser("evaluate", help="run the Table-I comparison")
    group = ev.add_mutually_exclusive_group(required=True)
    group.add_argument("--cases", type=Path, help="directory of saved cases")
    group.add_argument("--generate", type=int, metavar="N",
                       help="generate N cases on the fly")
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument("--telemetry", action="store_true",
                    help="print the metrics snapshot and span tree afterwards")

    demo = sub.add_parser("demo", help="generate and diagnose one case")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument(
        "--category",
        choices=["business_spike", "poor_sql", "mdl_lock", "row_lock"],
        default="row_lock",
    )
    demo.add_argument("--telemetry", action="store_true",
                      help="print the metrics snapshot and span tree afterwards")

    fleet = sub.add_parser(
        "fleet-demo",
        help="simulate and diagnose a fleet of instances concurrently",
    )
    fleet.add_argument("--instances", type=int, default=8,
                       help="monitored database instances to simulate")
    fleet.add_argument("--workers", type=int, default=4,
                       help="diagnosis worker threads (instances are sharded)")
    fleet.add_argument("--anomalous", type=int, default=None,
                       help="instances given an injected anomaly "
                            "(default: half, at least one)")
    fleet.add_argument("--duration", type=int, default=900,
                       help="simulated seconds per instance")
    fleet.add_argument("--seed", type=int, default=7)
    fleet.add_argument("--no-prune", action="store_true",
                       help="keep consumed broker messages instead of "
                            "pruning acknowledged ones")
    fleet.add_argument("--telemetry", action="store_true",
                       help="print the metrics snapshot afterwards")
    fleet.add_argument("--record", type=Path, default=None, metavar="DIR",
                       help="persist every diagnosis to an incident store "
                            "under DIR (query with `repro incidents`)")
    fleet.add_argument("--health", action="store_true",
                       help="attach a proactive health sweeper (scheduled "
                            "sweeps during the run plus a final one); with "
                            "--record, findings persist under DIR/health")
    fleet.add_argument("--processes", type=int, default=0, metavar="N",
                       help="diagnose in N worker processes over the "
                            "columnar dataplane instead of in-process "
                            "threads; worker spans and telemetry merge back "
                            "into the parent (recorded incidents carry "
                            "cross-process traces)")

    obs = sub.add_parser(
        "obs", help="exercise the pipeline and dump its self-telemetry"
    )
    obs.add_argument("--seed", type=int, default=42)
    obs.add_argument(
        "--category",
        choices=["business_spike", "poor_sql", "mdl_lock", "row_lock"],
        default="row_lock",
    )
    obs.add_argument(
        "--format",
        choices=["summary", "json", "prometheus"],
        default="summary",
        help="metrics output format",
    )
    obs.add_argument("--log-format", choices=["kv", "json"], default="kv",
                     help="structured-log line format on stderr")
    obs.add_argument("--fleet", type=int, default=0, metavar="N",
                     help="exercise an N-instance fleet instead of a "
                          "single pipeline run")
    obs.add_argument("--instance", default="",
                     help="restrict the dump to series labelled with this "
                          "instance id (fleet mode)")

    inc = sub.add_parser(
        "incidents", help="query and render a recorded incident store"
    )
    inc_sub = inc.add_subparsers(dest="incidents_command", required=True)

    def _add_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", type=Path, default=Path("incidents"),
                       help="incident store directory (default: ./incidents)")

    inc_list = inc_sub.add_parser("list", help="list recorded incidents")
    _add_dir(inc_list)
    inc_list.add_argument("--instance", default=None,
                          help="only incidents on this instance id")
    inc_list.add_argument("--verdict", default=None,
                          help="only incidents typed with this verdict")
    inc_list.add_argument("--template", default=None,
                          help="only incidents ranking this R-SQL id")
    inc_list.add_argument("--since", type=int, default=None,
                          help="only anomalies ending after this stream time")
    inc_list.add_argument("--until", type=int, default=None,
                          help="only anomalies starting before this stream time")
    inc_list.add_argument("--limit", type=int, default=20)

    inc_show = inc_sub.add_parser(
        "show", help="render one incident's full evidence chain as text"
    )
    _add_dir(inc_show)
    inc_show.add_argument("id", nargs="?", default=None,
                          help="incident id (omit with --latest)")
    inc_show.add_argument("--latest", action="store_true",
                          help="show the most recent incident")

    inc_report = inc_sub.add_parser(
        "report", help="render one incident as a self-contained HTML page"
    )
    _add_dir(inc_report)
    inc_report.add_argument("id", nargs="?", default=None,
                            help="incident id (omit with --latest)")
    inc_report.add_argument("--latest", action="store_true",
                            help="report the most recent incident")
    inc_report.add_argument("--out", type=Path, default=None,
                            help="write HTML here (default: stdout)")

    inc_health = inc_sub.add_parser(
        "health", help="fleet-wide rollup across one or many stores"
    )
    _add_dir(inc_health)
    inc_health.add_argument("--top", type=int, default=10,
                            help="recurring R-SQL templates to list")
    inc_health.add_argument("--json", action="store_true",
                            help="emit the rollup as JSON")

    trace = sub.add_parser(
        "trace",
        help="render an incident's cross-process trace as a waterfall",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    tr_show = trace_sub.add_parser(
        "show", help="ASCII waterfall of one incident's span tree"
    )
    _add_dir(tr_show)
    tr_show.add_argument("id", nargs="?", default=None,
                         help="incident id (omit with --latest)")
    tr_show.add_argument("--latest", action="store_true",
                         help="show the most recent incident's trace")

    tr_report = trace_sub.add_parser(
        "report", help="self-contained HTML waterfall of one incident's trace"
    )
    _add_dir(tr_report)
    tr_report.add_argument("id", nargs="?", default=None,
                           help="incident id (omit with --latest)")
    tr_report.add_argument("--latest", action="store_true",
                           help="report the most recent incident's trace")
    tr_report.add_argument("--out", type=Path, default=None,
                           help="write HTML here (default: stdout)")

    lint = sub.add_parser(
        "lint", help="static anti-pattern analysis over SQL templates"
    )
    lint_src = lint.add_mutually_exclusive_group()
    lint_src.add_argument("--cases", type=Path, metavar="DIR",
                          help="lint the template catalogs of saved cases")
    lint_src.add_argument("--sql", metavar="STATEMENT",
                          help="lint one raw SQL statement")
    lint.add_argument("--seed", type=int, default=0,
                      help="seed of the default scenario catalog")
    lint.add_argument("--format", choices=["text", "json"], default="text")
    lint.add_argument("--out", type=Path, default=None,
                      help="write the report here instead of stdout")
    lint.add_argument(
        "--fail-on",
        choices=["info", "warning", "high", "critical", "never"],
        default="warning",
        help="exit 1 when any finding reaches this severity "
             "(default: warning; 'never' always exits 0)",
    )

    advise = sub.add_parser(
        "advise",
        help="workload-level cross-statement analysis (locks, indexes, joins)",
    )
    advise.add_argument("--seed", type=int, default=0,
                        help="seed of the default scenario catalog")
    advise.add_argument("--format", choices=["text", "json"], default="text")
    advise.add_argument("--out", type=Path, default=None,
                        help="write the report here instead of stdout")
    advise.add_argument(
        "--fail-on",
        choices=["info", "warning", "high", "critical", "never"],
        default="warning",
        help="exit 1 when any advisory reaches this severity "
             "(default: warning; 'never' always exits 0)",
    )

    health = sub.add_parser(
        "health",
        help="proactive fleet health sweeps: surface problems before "
             "the anomaly fires",
    )
    health_sub = health.add_subparsers(dest="health_command", required=True)

    def _health_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dir", type=Path, default=Path("health"),
                       help="findings store directory (default: ./health)")

    h_sweep = health_sub.add_parser(
        "sweep", help="run the check suite once and persist its findings"
    )
    _health_dir(h_sweep)
    h_sweep.add_argument("--incidents", type=Path, default=Path("incidents"),
                         metavar="DIR",
                         help="incident store(s) feeding the incident-backed "
                              "checks (default: ./incidents)")
    h_sweep.add_argument("--fleet", type=int, default=0, metavar="N",
                         help="simulate an N-instance fleet and sweep it "
                              "live on schedule (default: offline sweep "
                              "over --incidents)")
    h_sweep.add_argument("--duration", type=int, default=600,
                         help="simulated seconds per instance (--fleet mode)")
    h_sweep.add_argument("--workers", type=int, default=2,
                         help="diagnosis workers (--fleet mode)")
    h_sweep.add_argument("--seed", type=int, default=7)
    h_sweep.add_argument("--json", action="store_true",
                         help="emit the sweep result as JSON")
    h_sweep.add_argument(
        "--fail-on",
        choices=["info", "warning", "high", "critical", "never"],
        default="warning",
        help="exit 1 when any finding reaches this severity "
             "(default: warning; 'never' always exits 0)",
    )

    h_findings = health_sub.add_parser(
        "findings", help="query the persisted findings store"
    )
    _health_dir(h_findings)
    h_findings.add_argument("--instance", default=None,
                            help="only findings on this instance id "
                                 "(use '' for fleet-scope findings)")
    h_findings.add_argument("--check", default=None,
                            help="only findings from this check id")
    h_findings.add_argument(
        "--min-severity",
        choices=["info", "warning", "high", "critical"],
        default="info",
    )
    h_findings.add_argument("--since", type=int, default=None,
                            help="only findings detected at/after this "
                                 "stream time")
    h_findings.add_argument("--until", type=int, default=None,
                            help="only findings detected before this "
                                 "stream time")
    h_findings.add_argument("--limit", type=int, default=20)
    h_findings.add_argument("--json", action="store_true",
                            help="emit matching findings as JSON")

    h_report = health_sub.add_parser(
        "report", help="render the daily fleet health report"
    )
    _health_dir(h_report)
    h_report.add_argument("--incidents", type=Path, default=None,
                          metavar="DIR",
                          help="also roll up this incident store as "
                               "reactive context")
    h_report.add_argument("--format", choices=["text", "html"],
                          default="text")
    h_report.add_argument("--out", type=Path, default=None,
                          help="write the report here (default: stdout)")
    h_report.add_argument("--incident-report", default=None, metavar="HREF",
                          help="link the HTML report to this reactive "
                               "incident report")

    chaos = sub.add_parser(
        "chaos",
        help="run the fleet under fault injection; print the resilience "
             "scorecard",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault plan and workload seed (same seed = "
                            "identical run)")
    chaos.add_argument("--instances", type=int, default=3)
    chaos.add_argument("--anomalous", type=int, default=None,
                       help="instances with an injected anomaly "
                            "(default: ceil(instances * 2/3))")
    chaos.add_argument("--duration", type=int, default=480,
                       help="simulated seconds per instance")
    chaos.add_argument("--workers", type=int, default=2)
    chaos_src = chaos.add_mutually_exclusive_group()
    chaos_src.add_argument(
        "--faults", default=None, metavar="KIND[,KIND...]",
        help="comma-separated fault classes to run "
             "(default: all; see `repro chaos --list-faults`)")
    chaos_src.add_argument("--plan", type=Path, default=None, metavar="FILE",
                           help="run one composite FaultPlan from a JSON file "
                                "instead of per-class single-fault plans")
    chaos.add_argument("--list-faults", action="store_true",
                       help="print the known fault classes and exit")
    chaos.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                       help="per-diagnosis stage-watchdog budget")
    chaos.add_argument("--record", type=Path, default=None, metavar="DIR",
                       help="persist each run's incidents under DIR/<fault> "
                            "(degraded diagnoses become durable records)")
    chaos.add_argument("--json", action="store_true",
                       help="print the scorecard as JSON instead of text")
    chaos.add_argument("--out", type=Path, default=None,
                       help="also write the JSON scorecard here (CI artifact)")

    fuzz = sub.add_parser(
        "fuzz",
        help="coverage-guided scenario fuzzing: discover workloads and "
             "fault plans that break attribution",
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    fz_run = fuzz_sub.add_parser(
        "run", help="run the mutation fuzzer from the default seed specs"
    )
    fz_run.add_argument("--seed", type=int, default=7,
                        help="fuzzer seed (same seed + budget = identical "
                             "mutants, survivors and corpus)")
    fz_run.add_argument("--budget", type=int, default=8,
                        help="number of mutants to generate and evaluate")
    fz_run.add_argument("--max-mutations", type=int, default=3,
                        help="max mutator applications per mutant")
    fz_run.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed clean-vs-fault Hits@k drop before a "
                             "mutant counts as a failure")
    fz_run.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging of failing mutants")
    fz_run.add_argument("--corpus", type=Path, default=None, metavar="DIR",
                        help="write minimized failing entries here as "
                             "<entry-id>.json")
    fz_run.add_argument("--out", type=Path, default=None,
                        help="write the JSON fuzz report here (CI artifact)")
    fz_run.add_argument("--fail-on", choices=["failure", "never"],
                        default="failure",
                        help="exit 1 when failures were found (default) or "
                             "never (CI smoke)")

    fz_replay = fuzz_sub.add_parser(
        "replay", help="re-run every corpus entry against the current build"
    )
    fz_replay.add_argument("--corpus", type=Path,
                           default=Path("tests/fuzz/corpus"), metavar="DIR",
                           help="corpus directory "
                                "(default: tests/fuzz/corpus)")
    fz_replay.add_argument("--tolerance", type=float, default=0.5)
    fz_replay.add_argument("--json", action="store_true",
                           help="print results as JSON")
    fz_replay.add_argument("--out", type=Path, default=None,
                           help="also write the JSON results here")

    fz_min = fuzz_sub.add_parser(
        "minimize", help="re-minimize one corpus entry file in place"
    )
    fz_min.add_argument("entry", type=Path, help="corpus entry JSON file")
    fz_min.add_argument("--tolerance", type=float, default=0.5)
    fz_min.add_argument("--out", type=Path, default=None,
                        help="write the minimized entry here instead of "
                             "in place")
    return parser


def _corpus_config(args) -> "CorpusConfig":
    from repro.evaluation import CorpusConfig

    return CorpusConfig(
        delta_start_s=getattr(args, "delta_start", 900),
        anomaly_length_s=(
            getattr(args, "anomaly_length", 450),
            getattr(args, "anomaly_length", 450) + 1,
        ),
        n_businesses=(getattr(args, "businesses", 8),) * 2,
    )


def _category(name: str):
    from repro.workload import AnomalyCategory

    return None if name == "random" else AnomalyCategory(name)


def cmd_generate(args) -> int:
    from repro.evaluation import generate_case
    from repro.evaluation.persistence import save_case

    labeled = generate_case(args.seed, _corpus_config(args), category=_category(args.category))
    path = save_case(labeled, args.out)
    case = labeled.case
    print(f"wrote {path}")
    print(
        f"  category={labeled.category.value} templates={len(case.sql_ids)} "
        f"window=[{case.anomaly_start}, {case.anomaly_end}) "
        f"queries={case.logs.total_queries():,}"
    )
    print(f"  ground-truth R-SQLs: {sorted(labeled.r_sqls)}")
    return 0


def cmd_diagnose(args) -> int:
    from repro.core import PinSQL, PinSQLConfig, RepairEngine
    from repro.core.report import render_report
    from repro.evaluation.persistence import load_case

    labeled = load_case(args.case)
    config = PinSQLConfig()
    if args.no_buckets:
        config = config.without("buckets")
    result = PinSQL(config).analyze(labeled.case)
    plan = None
    if args.suggest_repairs:
        from repro.sqlanalysis import SqlAnalyzer

        plan = RepairEngine(analyzer=SqlAnalyzer()).plan(labeled.case, result)
    report = render_report(labeled.case, result, plan=plan, top_k=args.top_k)
    print(report.text)
    if labeled.r_sqls:
        hit = report.top_r_sql in labeled.r_sqls
        print(f"ground truth check: top-1 R-SQL is {'CORRECT' if hit else 'WRONG'}")
    return 0


def _print_telemetry() -> None:
    """Dump the global registry and last span tree (the --telemetry flag)."""
    from repro.telemetry import get_registry, get_tracer, render_summary

    print("\n=== telemetry: metrics snapshot ===")
    print(render_summary(get_registry()))
    print("\n=== telemetry: span tree (last trace) ===")
    print(get_tracer().format_tree())


def cmd_evaluate(args) -> int:
    from repro.evaluation import CorpusConfig, evaluate_competition, generate_corpus
    from repro.evaluation.persistence import load_corpus

    if getattr(args, "telemetry", False):
        from repro.telemetry import configure_telemetry

        configure_telemetry()
    if args.cases is not None:
        corpus = load_corpus(args.cases)
        if not corpus:
            print(f"no case_*.npz files under {args.cases}", file=sys.stderr)
            return 1
    else:
        corpus = generate_corpus(CorpusConfig(n_cases=args.generate, seed=args.seed))
    reports = evaluate_competition(corpus)
    print(
        f"{'Method':<10} {'R-H@1':>6} {'R-H@5':>6} {'R-MRR':>6} {'R-Time':>9}   "
        f"{'H-H@1':>6} {'H-H@5':>6} {'H-MRR':>6} {'H-Time':>9}"
    )
    for report in reports:
        print(report.table_row())
    if getattr(args, "telemetry", False):
        _print_telemetry()
    return 0


def cmd_demo(args) -> int:
    from repro.core import PinSQL
    from repro.core.report import render_report
    from repro.evaluation import CorpusConfig, generate_case
    from repro.workload import AnomalyCategory

    if getattr(args, "telemetry", False):
        from repro.telemetry import configure_telemetry

        configure_telemetry()
    cfg = CorpusConfig(delta_start_s=600, anomaly_length_s=(240, 360))
    print(f"generating a {args.category} anomaly case (seed {args.seed}) ...")
    labeled = generate_case(args.seed, cfg, category=AnomalyCategory(args.category))
    result = PinSQL().analyze(labeled.case)
    print(render_report(labeled.case, result).text)
    hit = result.rsql_ids and result.rsql_ids[0] in labeled.r_sqls
    print(f"ground truth check: top-1 R-SQL is {'CORRECT' if hit else 'WRONG'}")
    if getattr(args, "telemetry", False):
        _print_telemetry()
    return 0


def _fleet_instance_ids(n_instances: int) -> list[str]:
    """The deterministic instance ids `_run_fleet` will register."""
    return [f"db-{i:02d}" for i in range(n_instances)]


def _simulate_fleet(n_instances: int, anomalous: int, duration: int, seed: int):
    """Simulate a fleet onto one broker; returns (broker, truths,
    populations, onset).

    The first ``anomalous`` instances get an injected row-lock anomaly
    at two-thirds of the run; the rest stay healthy.  Shared by the
    in-process drain (:func:`_run_fleet`) and the multiprocess
    columnar-dataplane path of ``fleet-demo --processes N``.
    """
    import numpy as np

    from repro.collection import Broker, MetricsCollector, QueryLogCollector
    from repro.dbsim import DatabaseInstance
    from repro.workload import (
        AnomalyCategory,
        WorkloadGenerator,
        build_population,
        inject_anomaly,
    )

    onset = max(120, (duration * 2) // 3)
    broker = Broker()
    truths, populations = {}, {}
    for i, instance_id in enumerate(_fleet_instance_ids(n_instances)):
        rng = np.random.default_rng(seed * 1009 + i)
        population = build_population(duration, rng, n_businesses=5)
        truth = None
        if i < anomalous:
            truth = inject_anomaly(
                population, rng, AnomalyCategory.ROW_LOCK, onset, duration,
                target_rate=(25.0, 35.0), lock_hold_ms=(300.0, 400.0),
            )
        db = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=seed + i)
        run = db.run(WorkloadGenerator(population), duration=duration)
        QueryLogCollector(broker, instance_id=instance_id).collect_blocks(
            run.query_log
        )
        MetricsCollector(broker, instance_id=instance_id).collect_blocks(run.metrics)
        truths[instance_id] = truth
        populations[instance_id] = population
    return broker, truths, populations, onset


def _run_fleet(
    n_instances: int,
    workers: int,
    anomalous: int,
    duration: int,
    seed: int,
    prune: bool,
    record_dir: "Path | None" = None,
    sweeper=None,
):
    """Simulate a fleet onto one broker and drain it; returns (service, truths).

    The first ``anomalous`` instances get an injected row-lock anomaly
    at two-thirds of the run; the rest stay healthy (the cross-instance
    isolation check of the demo).  ``sweeper`` optionally attaches a
    :class:`~repro.health.HealthSweeper` whose scheduled sweeps run
    during the drain; when incidents are recorded the sweeper's
    incident-backed checks read the same store.
    """
    from repro.fleet import FleetConfig, FleetDiagnosisService, ServiceConfig

    broker, truths, populations, onset = _simulate_fleet(
        n_instances, anomalous, duration, seed
    )
    config = FleetConfig(
        service=ServiceConfig(
            delta_start_s=min(500, onset - 60), detector_window_s=duration
        ),
        workers=workers,
        prune_broker=prune,
    )
    recorder = None
    if record_dir is not None:
        from repro.incidents import IncidentRecorder, IncidentStore

        recorder = IncidentRecorder(IncidentStore(record_dir))
    if sweeper is not None and recorder is not None and sweeper.incident_store is None:
        sweeper.incident_store = recorder.store
    service = FleetDiagnosisService(broker, config, recorder=recorder, sweeper=sweeper)
    for instance_id, population in populations.items():
        engine = service.register_instance(instance_id)
        for spec in population.specs.values():
            # Prefer the raw exemplar: literals matter to static analysis.
            engine.register_statement(spec.exemplar or spec.template.replace("?", "1"))
    service.run_until_drained()
    service.close()
    return service, truths


def _fleet_demo_multiprocess(args, anomalous: int, record_dir) -> int:
    """``fleet-demo --processes N``: drain over the columnar dataplane.

    Feeds are captured from the broker as encoded block frames and
    diagnosed by long-lived worker processes
    (:class:`~repro.fleet.workers.PersistentWorkerPool`); each worker
    ships its spans and telemetry back, so the parent's registry and
    tracer show the whole fleet and recorded incidents carry
    cross-process traces (``repro trace show --latest``).
    """
    from repro.fleet import ServiceConfig, run_sharded
    from repro.fleet.workers import block_feed_from_broker
    from repro.telemetry import get_registry

    broker, truths, populations, onset = _simulate_fleet(
        args.instances, anomalous, args.duration, args.seed
    )
    feeds = []
    for instance_id, population in populations.items():
        feed = block_feed_from_broker(broker, instance_id)
        # Prefer the raw exemplar: literals matter to static analysis.
        feed.statements = [
            spec.exemplar or spec.template.replace("?", "1")
            for spec in population.specs.values()
        ]
        feeds.append(feed)
    shipped = sum(f.nbytes for f in feeds)
    print(
        f"columnar dataplane: {sum(f.n_blocks for f in feeds)} block(s), "
        f"{shipped:,} bytes shipped to {args.processes} worker process(es)"
    )
    config = ServiceConfig(
        delta_start_s=min(500, onset - 60), detector_window_s=args.duration
    )
    counts = run_sharded(
        feeds,
        processes=args.processes,
        config=config,
        incident_dir=str(record_dir) if record_dir is not None else None,
    )
    top_rsql = {}
    if record_dir is not None:
        from repro.incidents import IncidentStore, discover_stores

        for root in discover_stores(record_dir):
            for meta in IncidentStore(root).metas():
                top_rsql[meta.instance_id] = meta.top_r_sql or "-"
    print(f"{'instance':<10} {'injected':>8} {'diagnoses':>9}  top R-SQL  verdict")
    missed, spurious, wrong = [], [], []
    for instance_id in sorted(truths):
        truth = truths[instance_id]
        n = counts.get(instance_id, 0)
        top = top_rsql.get(instance_id, "-")
        if truth is None:
            verdict = "clean" if not n else "SPURIOUS"
            if n:
                spurious.append(instance_id)
        elif not n:
            verdict = "MISSED"
            missed.append(instance_id)
        elif top != "-":
            verdict = "hit" if top in truth.r_sql_ids else "wrong-sql"
            if verdict == "wrong-sql":
                wrong.append(instance_id)
        else:
            verdict = "diagnosed"
        print(
            f"{instance_id:<10} {'yes' if truth else 'no':>8} "
            f"{n:>9}  {top:<9}  {verdict}"
        )
    imported = 0.0
    for name, kind, _key, inst in get_registry():
        if name == "fleet_spans_imported_total" and kind == "counter":
            imported += inst.value
    print(f"spans imported from workers: {int(imported)}")
    if record_dir is not None:
        print(
            f"incidents recorded under {record_dir} (waterfall: "
            f"`repro trace show --latest --dir {record_dir}`)"
        )
    if getattr(args, "telemetry", False):
        _print_telemetry()
    if missed or spurious:
        if missed:
            print(f"FAIL: anomalies missed on {missed}", file=sys.stderr)
        if spurious:
            print(f"FAIL: spurious diagnoses on {spurious}", file=sys.stderr)
        return 1
    print("attribution check: every diagnosis on the right instance, no bleed")
    return 0


def cmd_fleet_demo(args) -> int:
    anomalous = args.anomalous
    if anomalous is None:
        anomalous = max(1, args.instances // 2)
    anomalous = min(anomalous, args.instances)
    record_dir = getattr(args, "record", None)
    processes = getattr(args, "processes", 0)
    if processes > 1:
        print(
            f"simulating {args.instances} instances ({anomalous} anomalous) "
            f"for {args.duration}s, diagnosing in {processes} processes ..."
        )
        if getattr(args, "health", False):
            print(
                "note: --health is ignored with --processes "
                "(sweeps run in-process)",
                file=sys.stderr,
            )
        return _fleet_demo_multiprocess(args, anomalous, record_dir)
    print(
        f"simulating {args.instances} instances ({anomalous} anomalous) "
        f"for {args.duration}s, diagnosing with {args.workers} workers ..."
    )
    sweeper = None
    if getattr(args, "health", False):
        from repro.health import FindingsStore, HealthSweeper

        findings_store = None
        if record_dir is not None:
            findings_store = FindingsStore(Path(record_dir) / "health")
        sweeper = HealthSweeper(store=findings_store)
    service, truths = _run_fleet(
        args.instances, args.workers, anomalous,
        args.duration, args.seed, prune=not args.no_prune,
        record_dir=record_dir, sweeper=sweeper,
    )
    print(f"{'instance':<10} {'injected':>8} {'diagnoses':>9}  top R-SQL  verdict")
    misattributed = 0
    missed, spurious = [], []
    for instance_id in service.instance_ids:
        diagnoses = service.diagnoses_for(instance_id)
        misattributed += sum(1 for d in diagnoses if d.instance_id != instance_id)
        truth = truths[instance_id]
        top = diagnoses[0].result.rsql_ids[0] if diagnoses and diagnoses[0].result.rsql_ids else "-"
        if truth is not None and not diagnoses:
            missed.append(instance_id)
        if truth is None and diagnoses:
            spurious.append(instance_id)
        if truth is None:
            verdict = "clean" if not diagnoses else "SPURIOUS"
        elif not diagnoses:
            verdict = "MISSED"
        else:
            verdict = "hit" if top in truth.r_sql_ids else "wrong-sql"
        print(
            f"{instance_id:<10} {'yes' if truth else 'no':>8} "
            f"{len(diagnoses):>9}  {top:<9}  {verdict}"
        )
    broker = service.broker
    retained = sum(broker.retained(t) for t in broker.topics)
    published = sum(broker.size(t) for t in broker.topics)
    print(
        f"\nbroker: {published:,} messages published, {retained:,} retained "
        f"({'pruning on' if not args.no_prune else 'pruning off'})"
    )
    if record_dir is not None and service.recorder is not None:
        store = service.recorder.store
        print(
            f"incident store: {store.record_count} record(s) in "
            f"{store.segment_count} segment(s) under {record_dir} "
            f"(inspect with `repro incidents list --dir {record_dir}`)"
        )
    if sweeper is not None:
        # A final sweep gives the end-of-run snapshot on top of whatever
        # the schedule fired during the drain.
        final = sweeper.sweep_fleet(service)
        total = sum(len(s.findings) for s in sweeper.sweeps)
        worst = final.worst
        print(
            f"health: {len(sweeper.sweeps)} sweep(s), {total} finding(s); "
            f"final sweep worst severity: "
            f"{worst.label if worst is not None else 'none'}"
        )
        for finding in sorted(
            final.findings, key=lambda f: -int(f.severity)
        )[:8]:
            scope = finding.instance_id or "(fleet)"
            print(
                f"  [{finding.severity.label.upper():<8}] {scope:<10} "
                f"{finding.check:<24} {finding.message}"
            )
        if sweeper.store is not None:
            print(
                f"health findings persisted under {sweeper.store.root} "
                f"(inspect with `repro health findings --dir "
                f"{sweeper.store.root}`)"
            )
    if getattr(args, "telemetry", False):
        _print_telemetry()
    if misattributed or missed or spurious:
        if misattributed:
            print(f"FAIL: {misattributed} diagnoses mis-attributed", file=sys.stderr)
        if missed:
            print(f"FAIL: anomalies missed on {missed}", file=sys.stderr)
        if spurious:
            print(f"FAIL: spurious diagnoses on {spurious}", file=sys.stderr)
        return 1
    print("attribution check: every diagnosis on the right instance, no bleed")
    return 0


def _filter_prometheus(text: str, instance: str) -> str:
    """Keep only families/samples labelled ``instance="<id>"``."""
    needle = f'instance="{instance}"'
    out: list[str] = []
    pending: list[str] = []
    for line in text.splitlines():
        if line.startswith("# HELP"):
            pending = [line]
        elif line.startswith("#"):
            pending.append(line)
        elif needle in line:
            out.extend(pending)
            pending = []
            out.append(line)
    return "\n".join(out) + "\n" if out else ""


def cmd_obs(args) -> int:
    """Exercise the pipeline (or a fleet), then dump the self-telemetry."""
    import json

    from repro.telemetry import (
        configure_telemetry,
        filter_snapshot,
        get_registry,
        get_tracer,
        render_summary,
        reset_telemetry,
    )

    if args.instance and args.fleet <= 0:
        print(
            "error: --instance requires --fleet N (single-pipeline runs "
            "carry no instance labels)",
            file=sys.stderr,
        )
        return 2
    if args.instance and args.fleet > 0:
        # Validate BEFORE the expensive fleet simulation: the ids
        # _run_fleet registers are deterministic.
        known = _fleet_instance_ids(args.fleet)
        if args.instance not in known:
            print(
                f"error: unknown instance id {args.instance!r}; "
                f"--fleet {args.fleet} registers: {', '.join(known)}",
                file=sys.stderr,
            )
            return 2
    configure_telemetry(fmt=args.log_format)
    reset_telemetry()  # metrics below describe this run only
    if args.fleet > 0:
        _run_fleet(
            args.fleet,
            workers=min(4, args.fleet),
            anomalous=max(1, args.fleet // 2),
            duration=600,
            seed=args.seed,
            prune=True,
        )
    else:
        from repro.core import PinSQL
        from repro.evaluation import CorpusConfig, generate_case
        from repro.workload import AnomalyCategory

        cfg = CorpusConfig(delta_start_s=600, anomaly_length_s=(240, 360))
        labeled = generate_case(args.seed, cfg, category=AnomalyCategory(args.category))
        PinSQL().analyze(labeled.case)
    registry = get_registry()
    if args.format == "prometheus":
        text = registry.render_prometheus()
        if args.instance:
            text = _filter_prometheus(text, args.instance)
        sys.stdout.write(text)
    elif args.format == "json":
        snap = registry.snapshot()
        if args.instance:
            snap = filter_snapshot(snap, instance=args.instance)
        print(json.dumps(snap, indent=2))
    else:
        snap = registry.snapshot()
        if args.instance:
            snap = filter_snapshot(snap, instance=args.instance)
            print(f"=== metrics snapshot (instance={args.instance}) ===")
        else:
            print("=== metrics snapshot ===")
        print(render_summary(snap))
        if args.fleet:
            _print_freshness(snap)
        else:
            print("\n=== span tree (last trace) ===")
            print(get_tracer().format_tree())
    return 0


def _print_freshness(snap: dict) -> None:
    """Fleet watermarks: per-instance staleness and per-stage lag p95."""
    freshness = [
        e for e in snap["gauges"] if e["name"] == "data_freshness_seconds"
    ]
    lags = [
        e for e in snap["histograms"] if e["name"] == "pipeline_lag_seconds"
    ]
    if not freshness and not lags:
        return
    print("\n=== pipeline freshness & lag ===")
    for entry in sorted(
        freshness, key=lambda e: e["labels"].get("instance", "")
    ):
        print(
            f"  {entry['labels'].get('instance') or '(local)':<10} "
            f"staleness {entry['value']:.0f} s (stream time vs newest event)"
        )
    for entry in sorted(
        lags,
        key=lambda e: (e["labels"].get("stage", ""),
                       e["labels"].get("instance", "")),
    ):
        q = entry.get("quantiles") or {}
        print(
            f"  {entry['labels'].get('stage', '-'):<9} "
            f"{entry['labels'].get('instance') or '(local)':<10} "
            f"count={entry['count']:<5} p95={q.get('p95', 0.0):.4g} s"
        )


def _open_stores(args):
    """Every incident store under ``args.dir`` (a store directory, or a
    parent holding one per shard); [] with a message when none exist."""
    from repro.incidents import IncidentStore, discover_stores

    roots = discover_stores(args.dir)
    if not roots:
        print(
            f"error: no incident store under {args.dir} "
            "(record one with `repro fleet-demo --record DIR`)",
            file=sys.stderr,
        )
    return [IncidentStore(root) for root in roots]


def _resolve_incident(stores, args):
    """The full record for ``args.id`` / ``--latest``; None + message."""
    if args.latest:
        metas = [m for s in stores for m in [s.latest()] if m is not None]
        if not metas:
            print("error: store is empty", file=sys.stderr)
            return None
        newest = max(metas, key=lambda m: (m.created_at, m.incident_id))
        for store in stores:
            record = store.get(newest.incident_id)
            if record is not None:
                return record
        return None
    if not args.id:
        print("error: give an incident id or --latest", file=sys.stderr)
        return None
    for store in stores:
        record = store.get(args.id)
        if record is not None:
            return record
    recent = sorted(
        (m for s in stores for m in s.metas()),
        key=lambda m: (m.created_at, m.incident_id),
    )[-5:]
    known = ", ".join(m.incident_id for m in recent)
    print(
        f"error: unknown incident id {args.id!r} (most recent: {known})",
        file=sys.stderr,
    )
    return None


def cmd_incidents(args) -> int:
    """Dispatch the ``repro incidents`` subcommands."""
    if args.incidents_command == "health":
        import json

        from repro.incidents import discover_stores, load_health, render_health_text

        if not discover_stores(args.dir):
            print(
                f"error: no incident store under {args.dir} "
                "(record one with `repro fleet-demo --record DIR`)",
                file=sys.stderr,
            )
            return 1
        health = load_health(args.dir, top_k=args.top)
        if args.json:
            print(json.dumps(health.to_dict(), indent=2))
        else:
            print(render_health_text(health))
        return 0

    stores = _open_stores(args)
    if not stores:
        return 1
    if args.incidents_command == "list":
        metas = sorted(
            (
                m
                for s in stores
                for m in s.query(
                    instance=args.instance,
                    since=args.since,
                    until=args.until,
                    verdict=args.verdict,
                    template=args.template,
                )
            ),
            key=lambda m: (m.created_at, m.incident_id),
            reverse=True,
        )[: args.limit]
        if not metas:
            print("no incidents match")
            return 0
        print(
            f"{'incident':<28} {'instance':<10} {'window':<16} "
            f"{'verdict':<16} {'top R-SQL':<10} repair"
        )
        for meta in metas:
            window = f"[{meta.anomaly_start}, {meta.anomaly_end})"
            print(
                f"{meta.incident_id:<28} {meta.instance_id or '-':<10} "
                f"{window:<16} {meta.verdict or '-':<16} "
                f"{meta.top_r_sql or '-':<10} {meta.repair_outcome}"
            )
        total = sum(s.record_count for s in stores)
        print(f"{len(metas)} incident(s); store holds {total}")
        return 0

    record = _resolve_incident(stores, args)
    if record is None:
        return 1
    if args.incidents_command == "show":
        from repro.incidents import render_incident_text

        print(render_incident_text(record))
        return 0
    # report
    from repro.incidents import render_incident_html

    html_text = render_incident_html(record)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(html_text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(html_text)
    return 0


def cmd_trace(args) -> int:
    """Dispatch the ``repro trace`` subcommands."""
    stores = _open_stores(args)
    if not stores:
        return 1
    record = _resolve_incident(stores, args)
    if record is None:
        return 1
    if args.trace_command == "show":
        from repro.incidents import render_trace_text

        print(render_trace_text(record))
        return 0
    # report
    from repro.incidents import render_trace_html

    html_text = render_trace_html(record)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(html_text, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(html_text)
    return 0


def _lint_default_catalog(seed: int):
    """Lint the default scenario catalog with planted anti-patterns."""
    import numpy as np

    from repro.evaluation.analysis import analyzer_for_population, evaluate_analyzer
    from repro.sqlanalysis import LintEntry, LintReport
    from repro.workload import build_population, plant_antipatterns

    rng = np.random.default_rng(seed)
    population = build_population(600, rng, n_businesses=6)
    planted = plant_antipatterns(population, rng)
    analyzer = analyzer_for_population(population)
    report = LintReport()
    for spec in population.specs.values():
        report.analyzed += 1
        findings = analyzer.analyze_spec(spec)
        if findings:
            report.entries.append(
                LintEntry(
                    sql_id=spec.sql_id,
                    statement=spec.exemplar or spec.template,
                    findings=findings,
                )
            )
    evaluation = evaluate_analyzer(analyzer, population, planted)
    report.evaluation = evaluation.to_dict()
    return report


def _lint_cases(cases_dir: Path):
    """Lint the template catalogs of a saved-case corpus."""
    from repro.evaluation.persistence import load_corpus
    from repro.sqlanalysis import LintEntry, LintReport, SqlAnalyzer

    corpus = load_corpus(cases_dir)
    if not corpus:
        return None
    analyzer = SqlAnalyzer()
    report = LintReport()
    seen: set[str] = set()
    for labeled in corpus:
        for info in labeled.case.catalog:
            if info.sql_id in seen:
                continue
            seen.add(info.sql_id)
            report.analyzed += 1
            findings = analyzer.analyze_template(info)
            if findings:
                report.entries.append(
                    LintEntry(
                        sql_id=info.sql_id,
                        statement=info.exemplar or info.template,
                        findings=findings,
                    )
                )
    return report


def cmd_lint(args) -> int:
    """Static anti-pattern lint; exit code per the --fail-on contract."""
    import json

    from repro.sqlanalysis import LintEntry, LintReport, SqlAnalyzer, lint_failed

    if args.sql is not None:
        from repro.sqltemplate import fingerprint

        fp = fingerprint(args.sql)
        findings = SqlAnalyzer().analyze_statement(args.sql, sql_id=fp.sql_id)
        report = LintReport(analyzed=1)
        if findings:
            report.entries.append(
                LintEntry(sql_id=fp.sql_id, statement=args.sql, findings=findings)
            )
    elif args.cases is not None:
        report = _lint_cases(args.cases)
        if report is None:
            print(f"error: no case_*.npz files under {args.cases}", file=sys.stderr)
            return 2
    else:
        report = _lint_default_catalog(args.seed)

    text = (
        json.dumps(report.to_dict(), indent=2)
        if args.format == "json"
        else report.render_text()
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 1 if lint_failed(report, args.fail_on) else 0


def _advise_default_catalog(seed: int):
    """Advise over the default scenario catalog with planted baits."""
    import numpy as np

    from repro.evaluation.advisories import (
        advisor_for_population,
        evaluate_advisor,
        population_weights,
    )
    from repro.workload import build_population, plant_advisory_baits

    rng = np.random.default_rng(seed)
    population = build_population(600, rng, n_businesses=6)
    planted = plant_advisory_baits(population, rng)
    analyzer = advisor_for_population(population)
    report = analyzer.analyze(
        population.specs.values(), population_weights(population)
    )
    evaluation = evaluate_advisor(analyzer, population, planted, report=report)
    report.evaluation = evaluation.to_dict()
    return report


def cmd_advise(args) -> int:
    """Workload-level advisory analysis; exit per the --fail-on contract."""
    import json

    from repro.sqlanalysis.workload import advise_failed

    report = _advise_default_catalog(args.seed)
    text = (
        json.dumps(report.to_dict(), indent=2)
        if args.format == "json"
        else report.render_text()
    )
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 1 if advise_failed(report, args.fail_on) else 0


def _finding_lines(findings) -> list[str]:
    """Console lines for a batch of health findings."""
    lines = []
    for f in findings:
        scope = f.instance_id or "(fleet)"
        subject = f.sql_id or f.metric or "-"
        lines.append(
            f"t={f.detected_at:<7} [{f.severity.label.upper():<8}] "
            f"{f.check:<24} {scope:<12} {subject:<14} {f.message}"
        )
    return lines


def _health_failed(findings, fail_on: str) -> bool:
    """The ``--fail-on`` exit contract shared with ``repro lint``."""
    from repro.sqlanalysis import Severity

    if fail_on == "never":
        return False
    threshold = Severity.from_label(fail_on)
    return any(f.severity >= threshold for f in findings)


def _health_sweep(args) -> int:
    import json

    from repro.health import FindingsStore, HealthSweeper

    store = FindingsStore(args.dir)
    if args.fleet > 0:
        anomalous = max(1, args.fleet // 2)
        sweeper = HealthSweeper(store=store)
        print(
            f"simulating {args.fleet} instances ({anomalous} anomalous) "
            f"for {args.duration}s, sweeping on schedule ...",
            flush=True,
        )
        service, _ = _run_fleet(
            args.fleet, args.workers, anomalous, args.duration,
            args.seed, prune=True, sweeper=sweeper,
        )
        # Scheduled sweeps already ran during the replay; one more final
        # sweep reflects the fleet's state at shutdown, and only its
        # findings drive the display and the exit code.
        result = sweeper.sweep_fleet(service)
        findings = result.findings
    else:
        from repro.incidents import discover_stores

        if not discover_stores(args.incidents):
            print(
                f"error: no incident store under {args.incidents} "
                "(record one with `repro fleet-demo --record DIR`, or "
                "sweep a simulated fleet with `--fleet N`)",
                file=sys.stderr,
            )
            return 2
        sweeper = HealthSweeper(store=store)
        result = sweeper.sweep_stores(args.incidents)
        findings = result.findings
    if args.json:
        print(json.dumps(
            {
                "sweep_id": result.sweep_id,
                "checks_run": result.checks_run,
                "check_failures": result.check_failures,
                "findings": [f.to_dict() for f in findings],
            },
            indent=2,
        ))
    else:
        print(
            f"sweep {result.sweep_id}: {len(findings)} finding(s), "
            f"{result.checks_run} check run(s), "
            f"{result.check_failures} check failure(s)"
        )
        for line in _finding_lines(findings):
            print(line)
        print(
            f"{store.record_count} finding(s) persisted under {store.root}"
        )
    return 1 if _health_failed(findings, args.fail_on) else 0


def _open_findings_stores(path: Path):
    """Findings stores under ``path``; [] for empty, None + message for
    a directory that is not a store at all."""
    from repro.health import FindingsStore, discover_findings_stores

    roots = discover_findings_stores(path)
    if roots:
        return [FindingsStore(root) for root in roots]
    if Path(path).is_dir():
        return []  # an empty store: a clean sweep wrote no segment yet
    print(
        f"error: no findings store under {path} "
        "(run `repro health sweep` first)",
        file=sys.stderr,
    )
    return None


def cmd_health(args) -> int:
    """Dispatch the ``repro health`` subcommands."""
    if args.health_command == "sweep":
        return _health_sweep(args)

    stores = _open_findings_stores(args.dir)
    if stores is None:
        return 2

    if args.health_command == "findings":
        import json

        from repro.sqlanalysis import Severity

        matches = []
        for store in stores:
            matches.extend(store.query(
                instance=args.instance,
                check=args.check,
                min_severity=Severity.from_label(args.min_severity),
                since=args.since,
                until=args.until,
                limit=args.limit,
            ))
        matches.sort(key=lambda f: -f.detected_at)
        matches = matches[: args.limit]
        if args.json:
            print(json.dumps([f.to_dict() for f in matches], indent=2))
            return 0
        if not matches:
            print("no findings match")
            return 0
        for line in _finding_lines(matches):
            print(line)
        total = sum(s.record_count for s in stores)
        print(f"{len(matches)} finding(s); store holds {total}")
        return 0

    # report
    from repro.health import (
        build_health_report,
        render_health_report_html,
        render_health_report_text,
    )

    fleet = None
    if args.incidents is not None:
        from repro.incidents import discover_stores, load_health

        if discover_stores(args.incidents):
            fleet = load_health(args.incidents)
    findings = [f for store in stores for f in store.findings()]
    report = build_health_report(findings, fleet=fleet)
    if args.format == "html":
        text = render_health_report_html(
            report, incident_report_href=args.incident_report
        )
    else:
        text = render_health_report_text(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_chaos(args) -> int:
    from repro.chaos import FAULT_KINDS, FaultPlan
    from repro.evaluation.chaos import ChaosHarnessConfig, run_chaos_suite

    if args.list_faults:
        for kind in FAULT_KINDS:
            print(kind)
        return 0
    kinds = FAULT_KINDS
    if args.faults is not None:
        kinds = tuple(k.strip() for k in args.faults.split(",") if k.strip())
    plan = FaultPlan.load(args.plan) if args.plan is not None else None
    anomalous = args.anomalous
    if anomalous is None:
        anomalous = max(1, -(-args.instances * 2 // 3))  # ceil(2/3)
    anomalous = min(anomalous, args.instances)
    try:
        cfg = ChaosHarnessConfig(
            seed=args.seed,
            n_instances=args.instances,
            anomalous=anomalous,
            duration_s=args.duration,
            workers=args.workers,
            fault_kinds=kinds,
            diagnosis_budget_s=args.budget,
            record_dir=str(args.record) if args.record is not None else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runs = 1 + (1 if plan is not None else len(kinds))
    print(
        f"chaos: simulating {cfg.n_instances} instances "
        f"({cfg.anomalous} anomalous) for {cfg.duration_s}s, "
        f"then {runs} diagnosis runs (clean + "
        + (f"plan {plan.name!r}" if plan is not None else f"{len(kinds)} fault classes")
        + ") ...",
        flush=True,
    )
    scorecard = run_chaos_suite(cfg, plan=plan)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(scorecard.to_json() + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    print(scorecard.to_json() if args.json else scorecard.render_text())
    if cfg.record_dir is not None:
        print(
            f"incident records per run under {cfg.record_dir}/<fault> "
            f"(inspect with `repro incidents list --dir {cfg.record_dir}/drop`)"
        )
    return 0 if scorecard.all_completed else 1


def _fuzz_run(args) -> int:
    from repro.fuzz import CoverageFuzzer, FuzzConfig

    try:
        cfg = FuzzConfig(
            seed=args.seed,
            budget=args.budget,
            max_mutations=args.max_mutations,
            tolerance=args.tolerance,
            shrink=not args.no_shrink,
            corpus_dir=str(args.corpus) if args.corpus is not None else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"fuzz: seed={cfg.seed} budget={cfg.budget} "
        f"(evaluating seeds + mutants through the chaos harness) ...",
        flush=True,
    )
    report = CoverageFuzzer(cfg).run()
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.to_json() + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    for failure in report.seed_failures:
        print(f"seed failure: {failure}")
    for mutant in report.mutants:
        marks = []
        if mutant.survived:
            marks.append("survived")
        if mutant.novel:
            marks.append(
                f"novel(+{len(mutant.new_coverage)} cov, "
                f"+{len(mutant.new_outcomes)} outcomes, "
                f"+{len(mutant.new_signals)} signals)"
            )
        if mutant.failures:
            marks.append(f"FAILED: {mutant.failures[0]}")
        chain = ">".join(s.mutator for s in mutant.steps) or "no-op"
        print(f"  {mutant.name} <- {mutant.parent} [{chain}] "
              + ("; ".join(marks) or "no novelty"))
    print(
        f"fuzz: {len(report.mutants)} mutants, {report.survivors} survivors, "
        f"{report.novelty_mutants} novelty-increasing, "
        f"{report.failures_found} failing; coverage {report.coverage_size} "
        f"keys, {report.outcome_size} outcome combos"
    )
    for path in report.written:
        print(f"wrote {path}")
    found = report.failures_found + len(report.seed_failures)
    if found and args.fail_on == "failure":
        return 1
    return 0


def _fuzz_replay(args) -> int:
    import json as _json

    from repro.fuzz import ScenarioRunner, load_corpus, replay_entry

    try:
        entries = load_corpus(args.corpus)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"no corpus entries under {args.corpus}")
        return 0
    runner = ScenarioRunner(tolerance=args.tolerance)
    results = [replay_entry(entry, runner) for entry in entries]
    payload = [
        {
            "entry_id": r.entry.entry_id,
            "ok": r.ok,
            "note": r.note,
            "xfail": r.entry.xfail,
            "failures": list(r.failures),
        }
        for r in results
    ]
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(
            _json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.out}")
    if args.json:
        print(_json.dumps(payload, indent=2))
    else:
        for r in results:
            status = "ok " if r.ok else "FAIL"
            print(f"  {status} {r.entry.entry_id}: {r.note}")
    bad = sum(1 for r in results if not r.ok)
    print(f"fuzz replay: {len(results) - bad}/{len(results)} entries ok")
    return 1 if bad else 0


def _fuzz_minimize(args) -> int:
    from repro.fuzz import (
        CorpusEntry,
        ScenarioRunner,
        default_seeds,
        entry_id_for,
        minimize_steps,
    )

    try:
        entry = CorpusEntry.from_json(
            args.entry.read_text(encoding="utf-8"), source=str(args.entry)
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not entry.steps:
        print(f"{entry.entry_id}: no mutation chain recorded; already minimal")
        return 0
    base = next((s for s in default_seeds() if s.name == entry.base), None)
    if base is None:
        print(
            f"error: base seed spec {entry.base!r} is not a default seed; "
            "cannot re-derive the mutation chain",
            file=sys.stderr,
        )
        return 2
    runner = ScenarioRunner(tolerance=args.tolerance)
    kinds = frozenset(r.split(":", 1)[0] for r in entry.reason)

    def still_failing(candidate) -> bool:
        return bool(runner.evaluate(candidate).failure_kinds & kinds)

    outcome = runner.evaluate(entry.spec)
    if not outcome.failure_kinds & kinds:
        print(
            f"{entry.entry_id}: recorded failure no longer reproduces; "
            "nothing to minimize (consider promoting the entry to green)"
        )
        return 0
    from repro.fuzz import apply_steps

    steps = minimize_steps(base, entry.steps, still_failing)
    spec = apply_steps(base, steps)
    if spec is None:
        print(f"{entry.entry_id}: chain already minimal")
        return 0
    final = runner.evaluate(spec)
    new_id = entry_id_for(spec, final.failure_kinds)
    minimized = CorpusEntry(
        entry_id=new_id,
        spec=spec.with_name(f"{entry.base}-{new_id}"),
        reason=final.failures,
        base=entry.base,
        steps=steps,
        fuzz_seed=entry.fuzz_seed,
        xfail=entry.xfail,
    )
    out = args.out if args.out is not None else args.entry
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(minimized.to_json() + "\n", encoding="utf-8")
    print(
        f"minimized {entry.entry_id}: {len(entry.steps)} -> "
        f"{len(steps)} steps; wrote {out}"
    )
    return 0


def cmd_fuzz(args) -> int:
    if args.fuzz_command == "run":
        return _fuzz_run(args)
    if args.fuzz_command == "replay":
        return _fuzz_replay(args)
    return _fuzz_minimize(args)


_COMMANDS = {
    "generate": cmd_generate,
    "diagnose": cmd_diagnose,
    "evaluate": cmd_evaluate,
    "demo": cmd_demo,
    "fleet-demo": cmd_fleet_demo,
    "obs": cmd_obs,
    "incidents": cmd_incidents,
    "trace": cmd_trace,
    "lint": cmd_lint,
    "advise": cmd_advise,
    "health": cmd_health,
    "chaos": cmd_chaos,
    "fuzz": cmd_fuzz,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
