"""Append-only, size-bounded incident store (JSONL segments).

Records are appended to numbered segment files
(``incidents-000001.jsonl``); a segment rolls over once it exceeds the
byte bound, and retention drops whole cold segments by record count and
by age — the same log-structured shape as the collection LogStore, at
DBA-forensics rather than raw-query granularity.

An in-memory index (one light :class:`IncidentMeta` per record) makes
``list``/``health`` queries cheap without re-reading segments; the full
record is re-parsed from its segment only on :meth:`get`.  Reopening a
store rebuilds the index from the segments on disk, tolerating a
truncated final line (a recorder killed mid-write): the partial tail is
cut back to the last complete record and appending resumes after it.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.incidents.record import IncidentRecord
from repro.telemetry import MetricsRegistry, get_logger

__all__ = ["IncidentMeta", "IncidentStore", "discover_stores"]

_log = get_logger("incidents")

SEGMENT_GLOB = "incidents-*.jsonl"
_SEGMENT_FMT = "incidents-{:06d}.jsonl"


@dataclass(frozen=True)
class IncidentMeta:
    """Light index entry: enough for queries and the health rollup."""

    incident_id: str
    instance_id: str
    created_at: int
    anomaly_start: int
    anomaly_end: int
    types: tuple[str, ...]
    verdict: str | None
    rsql_ids: tuple[str, ...]
    top_h_sql: str | None
    repair_outcome: str
    planned_actions: int
    segment: str
    #: Evidence confidence the diagnosis was stamped with ("full"/"degraded").
    confidence: str = "full"
    #: Machine-readable degradation reasons, e.g. ``quarantined_logs:3``.
    degraded_reasons: tuple[str, ...] = ()

    @property
    def quarantined_messages(self) -> int:
        """Messages quarantined before this diagnosis (from the reasons)."""
        total = 0
        for reason in self.degraded_reasons:
            if reason.startswith("quarantined_logs:"):
                try:
                    total += int(reason.rsplit(":", 1)[1])
                except ValueError:
                    continue
        return total

    @property
    def duration(self) -> int:
        return self.anomaly_end - self.anomaly_start

    @property
    def top_r_sql(self) -> str | None:
        return self.rsql_ids[0] if self.rsql_ids else None


def _meta_from_dict(data: dict, segment: str) -> IncidentMeta:
    anomaly = data.get("anomaly", {})
    repair = data.get("repair", {})
    planned = repair.get("planned", ())
    if repair.get("executed"):
        outcome = "executed"
    elif planned:
        outcome = "planned_only"
    else:
        outcome = "no_action"
    return IncidentMeta(
        incident_id=data["incident_id"],
        instance_id=data.get("instance_id", ""),
        created_at=int(data["created_at"]),
        anomaly_start=int(anomaly.get("start", 0)),
        anomaly_end=int(anomaly.get("end", 0)),
        types=tuple(anomaly.get("types", ())),
        verdict=data.get("verdict_category"),
        rsql_ids=tuple(r["sql_id"] for r in data.get("rsql", ())),
        top_h_sql=(data["hsql"][0]["sql_id"] if data.get("hsql") else None),
        repair_outcome=outcome,
        planned_actions=len(planned),
        segment=segment,
        confidence=data.get("confidence", "full"),
        degraded_reasons=tuple(data.get("degraded_reasons", ())),
    )


@dataclass
class _Segment:
    path: Path
    records: int = 0
    size: int = 0
    #: Largest created_at among the segment's records (age retention).
    newest: int | None = None


class IncidentStore:
    """Durable incident records under one directory.

    Parameters
    ----------
    root:
        Store directory (created if missing).  One store per diagnosis
        process — multiprocess shard runners give each shard its own
        directory and :func:`discover_stores` merges them at read time.
    max_segment_bytes:
        Roll to a new segment once the active one exceeds this size.
    max_records:
        Retention by count: whole cold segments are dropped, oldest
        first, while the total exceeds this (the active segment is
        never dropped).
    max_age_s:
        Retention by age, in stream time: cold segments whose newest
        record is older than ``newest_appended - max_age_s`` are dropped.
        ``None`` disables age-based pruning.
    registry:
        Optional metrics registry; the store exports its occupancy as
        ``incident_store_{records,segments,bytes}`` gauges.
    """

    def __init__(
        self,
        root: str | Path,
        max_segment_bytes: int = 1 << 20,
        max_records: int = 10_000,
        max_age_s: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_segment_bytes <= 0 or max_records <= 0:
            raise ValueError("max_segment_bytes and max_records must be positive")
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError("max_age_s must be positive (or None)")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = int(max_segment_bytes)
        self.max_records = int(max_records)
        self.max_age_s = max_age_s
        self._lock = threading.Lock()
        self._index: dict[str, IncidentMeta] = {}
        self._segments: list[_Segment] = []
        self._registry = registry
        self._recover()
        self._export_gauges()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        paths = sorted(self.root.glob(SEGMENT_GLOB))
        for i, path in enumerate(paths):
            segment = _Segment(path=path)
            last_is_final = i == len(paths) - 1
            good_bytes = 0
            with open(path, "rb") as f:
                raw = f.read()
            offset = 0
            for line in raw.splitlines(keepends=True):
                complete = line.endswith(b"\n")
                try:
                    data = json.loads(line)
                except (json.JSONDecodeError, UnicodeDecodeError):
                    if last_is_final and not complete and offset + len(line) == len(raw):
                        # Truncated tail of the final segment: a recorder
                        # died mid-write.  Cut back to the last complete
                        # record so appends resume cleanly.
                        _log.warning(
                            "truncated incident record dropped on recovery",
                            extra={"segment": path.name, "bytes": len(line)},
                        )
                        break
                    _log.warning(
                        "corrupt incident record skipped on recovery",
                        extra={"segment": path.name, "offset": offset},
                    )
                    offset += len(line)
                    good_bytes = offset
                    continue
                offset += len(line)
                good_bytes = offset
                meta = _meta_from_dict(data, segment=path.name)
                self._index[meta.incident_id] = meta
                segment.records += 1
                if segment.newest is None or meta.created_at > segment.newest:
                    segment.newest = meta.created_at
            if good_bytes < len(raw):
                with open(path, "r+b") as f:
                    f.truncate(good_bytes)
            elif raw and not raw.endswith(b"\n"):
                # Final line parsed but lost its newline: restore the
                # separator so the next append stays on its own line.
                with open(path, "ab") as f:
                    f.write(b"\n")
                good_bytes += 1
            segment.size = good_bytes
            self._segments.append(segment)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: IncidentRecord) -> IncidentRecord:
        """Persist one record; returns it (re-keyed on id collision)."""
        with self._lock:
            if record.incident_id in self._index:
                suffix = 2
                while f"{record.incident_id}-{suffix}" in self._index:
                    suffix += 1
                record = IncidentRecord.from_dict(
                    {**record.to_dict(), "incident_id": f"{record.incident_id}-{suffix}"}
                )
            segment = self._active_segment()
            data = record.to_dict()  # serialised once: line AND index entry
            line = json.dumps(data, separators=(",", ":")) + "\n"
            payload = line.encode("utf-8")
            with open(segment.path, "ab") as f:
                f.write(payload)
            segment.records += 1
            segment.size += len(payload)
            if segment.newest is None or record.created_at > segment.newest:
                segment.newest = record.created_at
            self._index[record.incident_id] = _meta_from_dict(
                data, segment=segment.path.name
            )
            self._retain(record.created_at)
            self._export_gauges()
        return record

    def _active_segment(self) -> _Segment:
        if self._segments and self._segments[-1].size < self.max_segment_bytes:
            return self._segments[-1]
        number = 1
        if self._segments:
            last = self._segments[-1].path.stem  # incidents-000007
            number = int(last.rsplit("-", 1)[1]) + 1
        segment = _Segment(path=self.root / _SEGMENT_FMT.format(number))
        segment.path.touch()
        self._segments.append(segment)
        return segment

    def _retain(self, now: int) -> None:
        """Drop whole cold segments that violate count or age bounds."""
        dropped: list[_Segment] = []
        while (
            len(self._segments) > 1
            and self.record_count - self._segments[0].records >= self.max_records
        ):
            dropped.append(self._segments.pop(0))
        if self.max_age_s is not None:
            cutoff = now - self.max_age_s
            while (
                len(self._segments) > 1
                and self._segments[0].newest is not None
                and self._segments[0].newest < cutoff
            ):
                dropped.append(self._segments.pop(0))
        for segment in dropped:
            gone = {
                mid
                for mid, meta in self._index.items()
                if meta.segment == segment.path.name
            }
            for mid in gone:
                del self._index[mid]
            try:
                os.remove(segment.path)
            except OSError:
                pass
            _log.info(
                "incident segment pruned",
                extra={"segment": segment.path.name, "records": segment.records},
            )

    def _export_gauges(self) -> None:
        if self._registry is None:
            return
        self._registry.gauge(
            "incident_store_records", help="Incident records resident in the store."
        ).set(self.record_count)
        self._registry.gauge(
            "incident_store_segments", help="JSONL segments in the incident store."
        ).set(len(self._segments))
        self._registry.gauge(
            "incident_store_bytes", help="Bytes held by the incident store."
        ).set(self.total_bytes)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return sum(s.records for s in self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments)

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, incident_id: str) -> bool:
        return incident_id in self._index

    def metas(self) -> list[IncidentMeta]:
        """Every indexed record, oldest first by (created_at, id)."""
        return sorted(
            self._index.values(), key=lambda m: (m.created_at, m.incident_id)
        )

    def latest(self) -> IncidentMeta | None:
        metas = self.metas()
        return metas[-1] if metas else None

    def query(
        self,
        instance: str | None = None,
        since: int | None = None,
        until: int | None = None,
        verdict: str | None = None,
        template: str | None = None,
        limit: int | None = None,
    ) -> list[IncidentMeta]:
        """Filter the index; newest first.

        ``since``/``until`` bound the anomaly window (inclusive start,
        exclusive end, stream time); ``template`` matches any ranked
        R-SQL id; ``verdict`` matches the typed category.
        """
        out = []
        for meta in reversed(self.metas()):
            if instance is not None and meta.instance_id != instance:
                continue
            if since is not None and meta.anomaly_end <= since:
                continue
            if until is not None and meta.anomaly_start >= until:
                continue
            if verdict is not None and meta.verdict != verdict:
                continue
            if template is not None and template not in meta.rsql_ids:
                continue
            out.append(meta)
            if limit is not None and len(out) >= limit:
                break
        return out

    def get(self, incident_id: str) -> IncidentRecord | None:
        """The full record, re-read from its segment; None if unknown."""
        meta = self._index.get(incident_id)
        if meta is None:
            return None
        path = self.root / meta.segment
        try:
            with open(path, "r", encoding="utf-8") as f:
                for line in f:
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if data.get("incident_id") == incident_id:
                        return IncidentRecord.from_dict(data)
        except OSError:
            return None
        return None


def discover_stores(path: str | Path) -> list[Path]:
    """Store directories under ``path`` (itself, or one level down).

    Multiprocess shard runners write one store per shard
    (``<dir>/shard-00``, ``<dir>/shard-01``, ...); the health rollup
    reads them all.  A directory counts as a store when it holds at
    least one segment file.
    """
    path = Path(path)
    if not path.is_dir():
        return []
    if any(path.glob(SEGMENT_GLOB)):
        return [path]
    return sorted(
        child for child in path.iterdir()
        if child.is_dir() and any(child.glob(SEGMENT_GLOB))
    )
