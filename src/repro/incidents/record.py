"""The incident record: one diagnosis as a durable evidence chain.

PinSQL's value to a DBA is not just the R-SQL verdict but the chain of
evidence behind it — which the paper validates against DBA-labelled
ADAC cases.  An :class:`IncidentRecord` freezes that chain for one
detected anomaly: the anomaly window with the raw metric samples that
triggered it, the H-SQL candidates with their per-template level
scores, the R-SQL attribution with clustering/verification evidence,
the repair decision and its outcome, the trace-span tree of the
diagnosis run, and the per-stage wall-clock timings.

Records are plain data: every field round-trips through ``to_dict`` /
``from_dict`` as strict JSON, because the store persists them as JSONL
lines and the renderer, health rollup and CLI all consume the same
serialised shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.sqlanalysis import Advisory, Finding

__all__ = [
    "AnomalyWindow",
    "MetricTrace",
    "HsqlEvidence",
    "RsqlEvidence",
    "ClusterSummary",
    "RepairOutcome",
    "SpanNode",
    "IncidentRecord",
]


@dataclass(frozen=True)
class AnomalyWindow:
    """The detected anomaly window and its phenomenon types."""

    start: int
    end: int
    types: tuple[str, ...] = ()
    detected_at: int | None = None

    @property
    def duration(self) -> int:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "types": list(self.types),
            "detected_at": self.detected_at,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "AnomalyWindow":
        return cls(
            start=int(data["start"]),
            end=int(data["end"]),
            types=tuple(data.get("types", ())),
            detected_at=data.get("detected_at"),
        )


@dataclass(frozen=True)
class MetricTrace:
    """Raw samples of one metric over the evidence window.

    These are the *triggering* samples — what the real-time detector's
    buffers held, not the forward-filled series the pipeline consumed —
    so a DBA replaying the incident sees exactly what the detector saw.
    """

    name: str
    samples: tuple[tuple[int, float], ...] = ()

    def to_dict(self) -> dict:
        return {"name": self.name, "samples": [[t, v] for t, v in self.samples]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricTrace":
        return cls(
            name=data["name"],
            samples=tuple((int(t), float(v)) for t, v in data.get("samples", ())),
        )


@dataclass(frozen=True)
class HsqlEvidence:
    """One H-SQL candidate with its per-template level scores (Sec. V)."""

    sql_id: str
    trend: float
    scale: float
    scale_trend: float
    impact: float
    statement: str = ""

    def to_dict(self) -> dict:
        return {
            "sql_id": self.sql_id,
            "trend": self.trend,
            "scale": self.scale,
            "scale_trend": self.scale_trend,
            "impact": self.impact,
            "statement": self.statement,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HsqlEvidence":
        return cls(
            sql_id=data["sql_id"],
            trend=float(data["trend"]),
            scale=float(data["scale"]),
            scale_trend=float(data["scale_trend"]),
            impact=float(data["impact"]),
            statement=data.get("statement", ""),
        )


@dataclass(frozen=True)
class RsqlEvidence:
    """One ranked R-SQL with its propagation evidence (Sec. VI)."""

    sql_id: str
    #: Final score: corr(#execution, active session).
    score: float
    #: Whether history-trend verification kept this template.
    verified: bool = False
    statement: str = ""

    def to_dict(self) -> dict:
        return {
            "sql_id": self.sql_id,
            "score": self.score,
            "verified": self.verified,
            "statement": self.statement,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RsqlEvidence":
        return cls(
            sql_id=data["sql_id"],
            score=float(data["score"]),
            verified=bool(data.get("verified", False)),
            statement=data.get("statement", ""),
        )


@dataclass(frozen=True)
class ClusterSummary:
    """One business cluster from the R-SQL clustering stage."""

    size: int
    impact: float
    sql_ids: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        return {"size": self.size, "impact": self.impact, "sql_ids": list(self.sql_ids)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ClusterSummary":
        return cls(
            size=int(data["size"]),
            impact=float(data["impact"]),
            sql_ids=tuple(data.get("sql_ids", ())),
        )


@dataclass(frozen=True)
class RepairOutcome:
    """The repair decision: planned actions and what actually ran."""

    session_lift: float = 0.0
    planned: tuple[dict, ...] = ()
    executed_kinds: tuple[str, ...] = ()
    executed: bool = False
    #: Deliberate non-actions (``{"sql_id", "reason"}``) — e.g. templates
    #: the optimizer found already index-backed.
    skipped: tuple[dict, ...] = ()

    @property
    def outcome(self) -> str:
        if self.executed:
            return "executed"
        if self.planned:
            return "planned_only"
        return "no_action"

    def to_dict(self) -> dict:
        return {
            "session_lift": self.session_lift,
            "planned": [dict(a) for a in self.planned],
            "executed_kinds": list(self.executed_kinds),
            "executed": self.executed,
            "skipped": [dict(s) for s in self.skipped],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RepairOutcome":
        return cls(
            session_lift=float(data.get("session_lift", 0.0)),
            planned=tuple(dict(a) for a in data.get("planned", ())),
            executed_kinds=tuple(data.get("executed_kinds", ())),
            executed=bool(data.get("executed", False)),
            skipped=tuple(dict(s) for s in data.get("skipped", ())),
        )


@dataclass(frozen=True)
class SpanNode:
    """Serialised trace span: the diagnosis run's timing tree."""

    name: str
    elapsed: float | None = None
    attrs: dict = field(default_factory=dict)
    children: tuple["SpanNode", ...] = ()

    @classmethod
    def from_span(cls, span) -> "SpanNode":
        """Freeze a live :class:`~repro.telemetry.tracing.Span` subtree."""
        return cls(
            name=span.name,
            elapsed=span.elapsed,
            attrs={str(k): _jsonable(v) for k, v in span.attrs.items()},
            children=tuple(cls.from_span(c) for c in span.children),
        )

    def walk(self):
        """Yield ``(depth, node)`` over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            stack.extend((depth + 1, c) for c in reversed(node.children))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed": self.elapsed,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SpanNode":
        return cls(
            name=data["name"],
            elapsed=data.get("elapsed"),
            attrs=dict(data.get("attrs", {})),
            children=tuple(cls.from_dict(c) for c in data.get("children", ())),
        )


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass(frozen=True)
class IncidentRecord:
    """One diagnosed anomaly as a durable, queryable evidence chain."""

    incident_id: str
    instance_id: str
    #: Detector stream time when the diagnosis completed.
    created_at: int
    anomaly: AnomalyWindow
    #: Raw metric samples over the evidence window ``[ts, te)``.
    metric_traces: tuple[MetricTrace, ...] = ()
    #: H-SQL candidates, best first, with the fusion weights.
    hsql: tuple[HsqlEvidence, ...] = ()
    hsql_alpha: float = 0.0
    hsql_beta: float = 0.0
    #: R-SQL attribution, best first.
    rsql: tuple[RsqlEvidence, ...] = ()
    clusters: tuple[ClusterSummary, ...] = ()
    rsql_widened: bool = False
    #: Rule-based anomaly typing.
    verdict_category: str | None = None
    verdict_evidence: str | None = None
    repair: RepairOutcome = field(default_factory=RepairOutcome)
    #: Static-analysis findings on the top-ranked templates, most severe
    #: first (the structural "why is this SQL slow" evidence).
    analysis: tuple[Finding, ...] = ()
    #: Workload-level advisories (lock-conflict graph, index advisor,
    #: join/fan-out) computed over the case catalog, most severe first.
    advisories: tuple[Advisory, ...] = ()
    #: Per-stage wall-clock seconds (StageTimings fields + total).
    timings: dict = field(default_factory=dict)
    #: The diagnosis run's span tree, when the tracer retained it.
    trace: SpanNode | None = None
    #: The rendered DBA-facing report (core.report).
    report_text: str = ""
    templates_seen: int = 0
    #: Unix wall-clock at recording time (stream times above are simulated).
    recorded_at_unix: float = 0.0
    #: Evidence confidence of the diagnosis: ``"full"`` or ``"degraded"``
    #: (gappy metric windows, shrunken context, quarantined log batches).
    confidence: str = "full"
    #: Machine-readable reasons when degraded, e.g.
    #: ``metric_gap:active_session:0.41`` or ``quarantined_logs:3``.
    degraded_reasons: tuple[str, ...] = ()
    #: Pipeline freshness when the diagnosis completed: newest ingested
    #: event second, detector stream time, staleness and the publish →
    #: ingest wall-clock lag (see ``InstanceDiagnosisEngine.freshness_snapshot``).
    data_freshness: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def top_r_sql(self) -> str | None:
        return self.rsql[0].sql_id if self.rsql else None

    @property
    def top_h_sql(self) -> str | None:
        return self.hsql[0].sql_id if self.hsql else None

    @property
    def rsql_ids(self) -> list[str]:
        return [e.sql_id for e in self.rsql]

    def to_dict(self) -> dict:
        return {
            "incident_id": self.incident_id,
            "instance_id": self.instance_id,
            "created_at": self.created_at,
            "anomaly": self.anomaly.to_dict(),
            "metric_traces": [t.to_dict() for t in self.metric_traces],
            "hsql": [h.to_dict() for h in self.hsql],
            "hsql_alpha": self.hsql_alpha,
            "hsql_beta": self.hsql_beta,
            "rsql": [r.to_dict() for r in self.rsql],
            "clusters": [c.to_dict() for c in self.clusters],
            "rsql_widened": self.rsql_widened,
            "verdict_category": self.verdict_category,
            "verdict_evidence": self.verdict_evidence,
            "repair": self.repair.to_dict(),
            "analysis": [f.to_dict() for f in self.analysis],
            "advisories": [a.to_dict() for a in self.advisories],
            "timings": dict(self.timings),
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "report_text": self.report_text,
            "templates_seen": self.templates_seen,
            "recorded_at_unix": self.recorded_at_unix,
            "confidence": self.confidence,
            "degraded_reasons": list(self.degraded_reasons),
            "data_freshness": dict(self.data_freshness),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "IncidentRecord":
        return cls(
            incident_id=data["incident_id"],
            instance_id=data.get("instance_id", ""),
            created_at=int(data["created_at"]),
            anomaly=AnomalyWindow.from_dict(data["anomaly"]),
            metric_traces=tuple(
                MetricTrace.from_dict(t) for t in data.get("metric_traces", ())
            ),
            hsql=tuple(HsqlEvidence.from_dict(h) for h in data.get("hsql", ())),
            hsql_alpha=float(data.get("hsql_alpha", 0.0)),
            hsql_beta=float(data.get("hsql_beta", 0.0)),
            rsql=tuple(RsqlEvidence.from_dict(r) for r in data.get("rsql", ())),
            clusters=tuple(
                ClusterSummary.from_dict(c) for c in data.get("clusters", ())
            ),
            rsql_widened=bool(data.get("rsql_widened", False)),
            verdict_category=data.get("verdict_category"),
            verdict_evidence=data.get("verdict_evidence"),
            repair=RepairOutcome.from_dict(data.get("repair", {})),
            analysis=tuple(
                Finding.from_dict(f) for f in data.get("analysis", ())
            ),
            advisories=tuple(
                Advisory.from_dict(a) for a in data.get("advisories", ())
            ),
            timings=dict(data.get("timings", {})),
            trace=(
                SpanNode.from_dict(data["trace"])
                if data.get("trace") is not None
                else None
            ),
            report_text=data.get("report_text", ""),
            templates_seen=int(data.get("templates_seen", 0)),
            recorded_at_unix=float(data.get("recorded_at_unix", 0.0)),
            confidence=data.get("confidence", "full"),
            degraded_reasons=tuple(data.get("degraded_reasons", ())),
            data_freshness=dict(data.get("data_freshness", {})),
        )
