"""Fleet-wide health rollup over one or many incident stores.

The per-incident records answer "what happened here"; this module
answers "how is the fleet doing": incidents per instance, the top
recurring root-cause templates (the paper's repeat offenders that make
throttling insufficient and optimization necessary), repair success
rates, and detector false-trigger candidates — incidents that produced
no pinpointed R-SQL or barely cleared the duration floor, the cases a
DBA would audit when tuning detector thresholds.

The rollup reads :class:`IncidentMeta` only, so it scales to stores it
never loads fully, and it merges multiple store directories — the
multiprocess shard runner writes one store per shard.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.incidents.store import IncidentMeta, IncidentStore, discover_stores
from repro.telemetry import MetricsRegistry

__all__ = [
    "FalseTriggerCandidate",
    "FleetHealth",
    "compute_health",
    "load_health",
    "publish_health",
    "render_health_text",
]

#: Incidents at or below this anomaly duration are flagged as potential
#: detector false triggers (just past the min-duration floor).
SHORT_ANOMALY_S = 60


@dataclass(frozen=True)
class FalseTriggerCandidate:
    """One incident a DBA should audit when tuning the detector."""

    incident_id: str
    instance_id: str
    reason: str


@dataclass
class FleetHealth:
    """Aggregated view over every incident in scope."""

    total_incidents: int = 0
    stores: int = 0
    per_instance: dict[str, int] = field(default_factory=dict)
    #: Incidents diagnosed on degraded evidence, per instance.
    degraded_per_instance: dict[str, int] = field(default_factory=dict)
    #: Messages quarantined/dead-lettered before diagnoses, per instance
    #: (summed from the records' ``quarantined_logs:N`` reasons).
    quarantined_per_instance: dict[str, int] = field(default_factory=dict)
    #: (sql_id, occurrences as top-ranked R-SQL), most recurrent first.
    top_rsql_templates: list[tuple[str, int]] = field(default_factory=list)
    verdicts: dict[str, int] = field(default_factory=dict)
    repairs_planned: int = 0
    repairs_executed: int = 0
    false_triggers: list[FalseTriggerCandidate] = field(default_factory=list)

    @property
    def repair_success_rate(self) -> float:
        """Executed repairs over incidents with any planned action."""
        if self.repairs_planned == 0:
            return 0.0
        return self.repairs_executed / self.repairs_planned

    @property
    def degraded_incidents(self) -> int:
        return sum(self.degraded_per_instance.values())

    @property
    def quarantined_messages(self) -> int:
        return sum(self.quarantined_per_instance.values())

    def to_dict(self) -> dict:
        return {
            "total_incidents": self.total_incidents,
            "stores": self.stores,
            "per_instance": dict(self.per_instance),
            "degraded_per_instance": dict(self.degraded_per_instance),
            "degraded_incidents": self.degraded_incidents,
            "quarantined_per_instance": dict(self.quarantined_per_instance),
            "quarantined_messages": self.quarantined_messages,
            "top_rsql_templates": [list(t) for t in self.top_rsql_templates],
            "verdicts": dict(self.verdicts),
            "repairs_planned": self.repairs_planned,
            "repairs_executed": self.repairs_executed,
            "repair_success_rate": self.repair_success_rate,
            "false_triggers": [
                {"incident_id": f.incident_id, "instance_id": f.instance_id,
                 "reason": f.reason}
                for f in self.false_triggers
            ],
        }


def compute_health(
    metas: list[IncidentMeta],
    stores: int = 1,
    top_k: int = 10,
    short_anomaly_s: int = SHORT_ANOMALY_S,
) -> FleetHealth:
    """Roll up index entries into a :class:`FleetHealth`."""
    health = FleetHealth(total_incidents=len(metas), stores=stores)
    per_instance: Counter[str] = Counter()
    degraded: Counter[str] = Counter()
    quarantined: Counter[str] = Counter()
    templates: Counter[str] = Counter()
    verdicts: Counter[str] = Counter()
    for meta in metas:
        instance = meta.instance_id or "(single-instance)"
        per_instance[instance] += 1
        if meta.confidence == "degraded":
            degraded[instance] += 1
        if meta.quarantined_messages:
            quarantined[instance] += meta.quarantined_messages
        verdicts[meta.verdict or "untyped"] += 1
        if meta.top_r_sql is not None:
            templates[meta.top_r_sql] += 1
        if meta.planned_actions > 0:
            health.repairs_planned += 1
            if meta.repair_outcome == "executed":
                health.repairs_executed += 1
        if not meta.rsql_ids:
            health.false_triggers.append(
                FalseTriggerCandidate(
                    incident_id=meta.incident_id,
                    instance_id=meta.instance_id,
                    reason="no R-SQL pinpointed",
                )
            )
        elif meta.duration <= short_anomaly_s:
            health.false_triggers.append(
                FalseTriggerCandidate(
                    incident_id=meta.incident_id,
                    instance_id=meta.instance_id,
                    reason=f"short anomaly ({meta.duration} s)",
                )
            )
    health.per_instance = dict(sorted(per_instance.items()))
    health.degraded_per_instance = dict(sorted(degraded.items()))
    health.quarantined_per_instance = dict(sorted(quarantined.items()))
    health.top_rsql_templates = templates.most_common(top_k)
    health.verdicts = dict(sorted(verdicts.items()))
    return health


def load_health(path: str | Path, top_k: int = 10) -> FleetHealth:
    """Compute health over every store under ``path`` (merged).

    ``path`` may be a single store directory or a parent holding one
    store per shard (``shard-00``, ``shard-01``, ...).
    """
    roots = discover_stores(path)
    metas: list[IncidentMeta] = []
    for root in roots:
        metas.extend(IncidentStore(root).metas())
    return compute_health(metas, stores=len(roots), top_k=top_k)


def publish_health(health: FleetHealth, registry: MetricsRegistry) -> None:
    """Expose the rollup as gauges in the telemetry registry."""
    for instance, count in health.per_instance.items():
        registry.gauge(
            "fleet_incidents",
            help="Incidents recorded, per instance.",
            instance=instance,
        ).set(count)
    registry.gauge(
        "fleet_incidents_total", help="Incidents recorded fleet-wide."
    ).set(health.total_incidents)
    registry.gauge(
        "fleet_repair_success_ratio",
        help="Executed repairs over incidents with planned actions.",
    ).set(health.repair_success_rate)
    registry.gauge(
        "fleet_false_trigger_candidates",
        help="Incidents flagged as potential detector false triggers.",
    ).set(len(health.false_triggers))
    for instance, count in health.degraded_per_instance.items():
        registry.gauge(
            "fleet_degraded_incidents",
            help="Incidents diagnosed with degraded confidence, per instance.",
            instance=instance,
        ).set(count)
    registry.gauge(
        "fleet_degraded_incidents_total",
        help="Degraded-confidence incidents fleet-wide.",
    ).set(health.degraded_incidents)
    for instance, count in health.quarantined_per_instance.items():
        registry.gauge(
            "fleet_quarantined_messages",
            help="Quarantined/dead-lettered collector messages, per instance.",
            instance=instance,
        ).set(count)
    registry.gauge(
        "fleet_quarantined_messages_total",
        help="Quarantined/dead-lettered collector messages fleet-wide.",
    ).set(health.quarantined_messages)


def render_health_text(health: FleetHealth) -> str:
    """The rollup as console text (``repro incidents health``)."""
    lines = [
        "=" * 60,
        "Fleet incident health",
        "=" * 60,
        f"incidents : {health.total_incidents} across {health.stores} store(s)",
        "",
        "Per instance:",
    ]
    if health.per_instance:
        for instance, count in health.per_instance.items():
            extras = []
            degraded = health.degraded_per_instance.get(instance, 0)
            quarantined = health.quarantined_per_instance.get(instance, 0)
            if degraded:
                extras.append(f"{degraded} degraded")
            if quarantined:
                extras.append(f"{quarantined} quarantined msg(s)")
            suffix = f"  ({', '.join(extras)})" if extras else ""
            lines.append(f"  {instance:<20} {count:>5}{suffix}")
    else:
        lines.append("  (no incidents)")
    lines += ["", "Top recurring R-SQL templates:"]
    if health.top_rsql_templates:
        for sql_id, count in health.top_rsql_templates:
            lines.append(f"  {sql_id:<20} {count:>5}")
    else:
        lines.append("  (none)")
    lines += ["", "Verdicts:"]
    for verdict, count in health.verdicts.items():
        lines.append(f"  {verdict:<20} {count:>5}")
    lines += [
        "",
        f"Repairs: {health.repairs_executed}/{health.repairs_planned} executed "
        f"({health.repair_success_rate:.0%} of planned)",
        f"Degraded-confidence incidents: {health.degraded_incidents}",
        f"Quarantined collector messages: {health.quarantined_messages}",
        f"False-trigger candidates: {len(health.false_triggers)}",
    ]
    for candidate in health.false_triggers[:10]:
        lines.append(
            f"  {candidate.incident_id}  [{candidate.instance_id or '-'}]  "
            f"{candidate.reason}"
        )
    lines.append("=" * 60)
    return "\n".join(lines)
