"""Incident flight recorder: persisted evidence chains for diagnoses.

PinSQL's pipeline computes a rich evidence chain for every diagnosis —
anomaly window, triggering metric samples, H-SQL level scores, R-SQL
propagation evidence, repair decision — and, before this package,
threw the intermediates away.  Here every diagnosis becomes a durable,
queryable, human-renderable artifact:

* :class:`IncidentRecord` — the frozen evidence chain (JSON-roundtrip);
* :class:`IncidentStore` — append-only JSONL segments with an in-memory
  index, size-bounded rollover, count/age retention and crash recovery;
* :class:`IncidentRecorder` — hooks into the diagnosis engines and
  persists each completed diagnosis without ever failing the loop;
* renderers — per-incident text and self-contained HTML reports, plus
  trace waterfalls (:func:`render_trace_text` / :func:`render_trace_html`)
  that draw the cross-process span tree against time;
* :func:`load_health` — fleet-wide rollup (incidents per instance, top
  recurring R-SQLs, repair success rates, detector false-trigger
  candidates), merging per-shard stores.

CLI: ``repro incidents list|show|report|health`` and
``repro trace show|report``.
"""

from repro.incidents.health import (
    FalseTriggerCandidate,
    FleetHealth,
    compute_health,
    load_health,
    publish_health,
    render_health_text,
)
from repro.incidents.record import (
    AnomalyWindow,
    ClusterSummary,
    HsqlEvidence,
    IncidentRecord,
    MetricTrace,
    RepairOutcome,
    RsqlEvidence,
    SpanNode,
)
from repro.incidents.recorder import IncidentRecorder
from repro.incidents.render import render_incident_html, render_incident_text
from repro.incidents.store import IncidentMeta, IncidentStore, discover_stores
from repro.incidents.waterfall import (
    render_trace_html,
    render_trace_text,
    trace_rows,
)

__all__ = [
    "AnomalyWindow",
    "ClusterSummary",
    "FalseTriggerCandidate",
    "FleetHealth",
    "HsqlEvidence",
    "IncidentMeta",
    "IncidentRecord",
    "IncidentRecorder",
    "IncidentStore",
    "MetricTrace",
    "RepairOutcome",
    "RsqlEvidence",
    "SpanNode",
    "compute_health",
    "discover_stores",
    "load_health",
    "publish_health",
    "render_health_text",
    "render_incident_html",
    "render_incident_text",
    "render_trace_html",
    "render_trace_text",
    "trace_rows",
]
