"""Trace waterfalls: render an incident's span tree against time.

The incident record already carries the diagnosis trace as a
:class:`~repro.incidents.record.SpanNode` tree — with cross-process
propagation, the root may be a synthetic ``broker.publish_block`` node
from the publishing process, with the worker's ``service.diagnose``
subtree parented under it.  The plain tree rendering shows *structure*;
a waterfall shows *where the time went*: each span is drawn as a bar
offset by the elapsed time of the siblings before it, so serial stages
read as a staircase and a dominant stage is visually obvious.

Spans carry durations, not wall-clock start stamps, so offsets are
reconstructed: a span starts where its previous sibling ended, at its
parent's start.  That is exact for the sequential diagnosis pipeline
(stages run back-to-back under one parent) and a documented
approximation for anything concurrent.  Spans without a duration (the
synthetic remote publish node, crash placeholders) render as markers
with an unknown width.
"""

from __future__ import annotations

from repro.core.report import html_escape, render_html_document
from repro.incidents.record import IncidentRecord, SpanNode

__all__ = ["render_trace_text", "render_trace_html", "trace_rows"]

_BAR_WIDTH = 32


def trace_rows(trace: SpanNode) -> list[tuple[int, SpanNode, float]]:
    """Flatten a span tree to ``(depth, node, start_s)`` rows, pre-order.

    ``start_s`` is the reconstructed offset from the trace root: the
    parent's start plus the elapsed time of every previous sibling.
    """
    rows: list[tuple[int, SpanNode, float]] = []

    def visit(node: SpanNode, depth: int, start: float) -> None:
        rows.append((depth, node, start))
        offset = start
        for child in node.children:
            visit(child, depth + 1, offset)
            offset += child.elapsed or 0.0

    visit(trace, 0, 0.0)
    return rows


def _total_seconds(rows: list[tuple[int, SpanNode, float]]) -> float:
    return max((start + (node.elapsed or 0.0) for _, node, start in rows),
               default=0.0)


def _bar(start: float, elapsed: float | None, total: float) -> str:
    """One fixed-width ASCII waterfall bar."""
    if total <= 0:
        return "·" * _BAR_WIDTH
    lead = min(_BAR_WIDTH - 1, int(round(start / total * _BAR_WIDTH)))
    if elapsed is None:
        return " " * lead + "?" + " " * (_BAR_WIDTH - lead - 1)
    span = max(1, int(round(elapsed / total * _BAR_WIDTH)))
    span = min(span, _BAR_WIDTH - lead)
    return " " * lead + "#" * span + " " * (_BAR_WIDTH - lead - span)


def _label(record: IncidentRecord) -> str:
    trace_id = record.trace.attrs.get("trace_id") if record.trace else None
    base = f"incident {record.incident_id}"
    return f"trace {trace_id} — {base}" if trace_id else base


def render_trace_text(record: IncidentRecord) -> str:
    """The incident's span tree as an ASCII waterfall."""
    if record.trace is None:
        return f"incident {record.incident_id}: no trace recorded"
    rows = trace_rows(record.trace)
    total = _total_seconds(rows)
    rule = "=" * 72
    lines = [
        rule,
        _label(record),
        f"instance {record.instance_id or '(single-instance)'}; "
        f"critical path {total * 1000:.2f} ms over {len(rows)} span(s)",
        rule,
        f"{'span':<40} {'proc':>4} {'start':>10} {'took':>10}  waterfall",
    ]
    for depth, node, start in rows:
        name = "  " * depth + node.name
        proc = node.attrs.get("process")
        took = "?" if node.elapsed is None else f"{node.elapsed * 1000:.2f}ms"
        error = ""
        if node.attrs.get("status") == "error":
            error = f"  !! {node.attrs.get('error', 'error')}"
        lines.append(
            f"{name:<40} {'-' if proc is None else proc:>4} "
            f"{start * 1000:>8.2f}ms {took:>10}  "
            f"|{_bar(start, node.elapsed, total)}|{error}"
        )
    lines.append(rule)
    return "\n".join(lines)


def render_trace_html(record: IncidentRecord) -> str:
    """The incident's span tree as a self-contained HTML waterfall."""
    if record.trace is None:
        body = f"<p>incident {html_escape(record.incident_id)}: no trace recorded</p>"
        return render_html_document(
            f"PinSQL trace — incident {record.incident_id}",
            [("Waterfall", body)],
        )
    rows = trace_rows(record.trace)
    total = _total_seconds(rows)
    cells = []
    for depth, node, start in rows:
        left = 0.0 if total <= 0 else min(100.0, start / total * 100.0)
        if node.elapsed is None:
            bar = (
                f'<div style="position:absolute;left:{left:.2f}%;'
                'top:1px;color:#888;font-size:10px">?</div>'
            )
        else:
            width = 0.0 if total <= 0 else min(100.0 - left,
                                               node.elapsed / total * 100.0)
            color = "#b33" if node.attrs.get("status") == "error" else "#47a"
            bar = (
                f'<div style="position:absolute;left:{left:.2f}%;'
                f'width:{max(width, 0.4):.2f}%;top:2px;bottom:2px;'
                f'background:{color};border-radius:2px"></div>'
            )
        name = html_escape(node.name)
        indent = depth * 14
        proc = node.attrs.get("process")
        took = "?" if node.elapsed is None else f"{node.elapsed * 1000:.2f} ms"
        error = ""
        if node.attrs.get("status") == "error":
            error = (
                ' <span style="color:#b33">!! '
                + html_escape(node.attrs.get("error", "error"))
                + "</span>"
            )
        cells.append(
            "<tr>"
            f'<td style="padding-left:{indent}px">{name}{error}</td>'
            f"<td>{'-' if proc is None else html_escape(proc)}</td>"
            f"<td>{start * 1000:.2f} ms</td>"
            f"<td>{html_escape(took)}</td>"
            '<td style="width:45%"><div style="position:relative;height:16px;'
            f'background:#eee;border-radius:2px">{bar}</div></td>'
            "</tr>"
        )
    table = (
        "<table><thead><tr><th>span</th><th>proc</th><th>start</th>"
        "<th>took</th><th>waterfall</th></tr></thead><tbody>"
        + "".join(cells)
        + "</tbody></table>"
    )
    trace_id = record.trace.attrs.get("trace_id")
    summary = (
        f"<p class=\"kv\">{html_escape(_label(record))} · instance "
        f"{html_escape(record.instance_id or '(single-instance)')} · "
        f"critical path {total * 1000:.2f} ms over {len(rows)} span(s)</p>"
    )
    return render_html_document(
        f"PinSQL trace — incident {record.incident_id}"
        + (f" ({trace_id})" if trace_id else ""),
        [("Waterfall", summary + table)],
    )
