"""The incident recorder: diagnosis in, durable evidence chain out.

Hooks into the diagnosis loop (``InstanceDiagnosisEngine`` and the
``PinSqlService`` facade accept a ``recorder=``): each completed
:class:`~repro.fleet.engine.Diagnosis` is flattened into an
:class:`~repro.incidents.record.IncidentRecord` and appended to the
:class:`~repro.incidents.store.IncidentStore`.  One recorder may serve
a whole fleet — the store serialises appends — and recording failures
never propagate into the diagnosis loop: the flight recorder must not
take down the plane.
"""

from __future__ import annotations

import hashlib
import time

from repro.core.pipeline import PinSQLResult
from repro.incidents.record import (
    AnomalyWindow,
    ClusterSummary,
    HsqlEvidence,
    IncidentRecord,
    MetricTrace,
    RepairOutcome,
    RsqlEvidence,
    SpanNode,
)
from repro.incidents.store import IncidentStore
from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = ["IncidentRecorder"]

_log = get_logger("incidents")


class IncidentRecorder:
    """Assembles and persists incident records for completed diagnoses.

    Parameters
    ----------
    store:
        The destination incident store.
    registry:
        Metrics registry for the recorder's own counters
        (``incidents_recorded_total`` / ``incident_record_failures_total``).
    max_hsql / max_rsql:
        Evidence depth kept per incident (candidates beyond these ranks
        rarely matter to a DBA and would bloat the JSONL lines).
    max_samples_per_metric:
        Bound on raw samples kept per metric trace; longer windows are
        decimated evenly so the trace stays renderable.
    max_findings:
        Bound on static-analysis findings kept per incident.
    max_advisories:
        Bound on workload advisories kept per incident.
    """

    def __init__(
        self,
        store: IncidentStore,
        registry: MetricsRegistry | None = None,
        max_hsql: int = 10,
        max_rsql: int = 10,
        max_samples_per_metric: int = 240,
        max_findings: int = 40,
        max_advisories: int = 20,
    ) -> None:
        self.store = store
        self.registry = registry or get_registry()
        self.max_hsql = int(max_hsql)
        self.max_rsql = int(max_rsql)
        self.max_samples_per_metric = int(max_samples_per_metric)
        self.max_findings = int(max_findings)
        self.max_advisories = int(max_advisories)

    # ------------------------------------------------------------------
    def record(self, diagnosis, engine=None) -> IncidentRecord | None:
        """Persist one diagnosis; returns the stored record.

        ``engine`` (an :class:`InstanceDiagnosisEngine`) supplies the
        live context — the detector's raw metric samples for the
        evidence window and the tracer's span tree; without it the
        record falls back to the case's forward-filled series and
        carries no trace.  Failures are counted and logged, never
        raised: a lost record must not cost a diagnosis.
        """
        try:
            record = self.build(diagnosis, engine=engine)
            record = self.store.append(record)
        except Exception as exc:  # pragma: no cover - defensive guard
            self.registry.counter(
                "incident_record_failures_total",
                help="Incident records dropped by recorder errors.",
            ).inc()
            _log.warning(
                "incident record dropped",
                extra={"error": type(exc).__name__, "detail": str(exc)[:200]},
            )
            return None
        self.registry.counter(
            "incidents_recorded_total",
            help="Incident records persisted.",
            **({"instance": record.instance_id} if record.instance_id else {}),
        ).inc()
        if diagnosis is not None and hasattr(diagnosis, "incident_id"):
            diagnosis.incident_id = record.incident_id
        return record

    # ------------------------------------------------------------------
    def build(self, diagnosis, engine=None) -> IncidentRecord:
        """Flatten a diagnosis (+ engine context) into a record."""
        case = diagnosis.case
        anomaly = AnomalyWindow(
            start=int(diagnosis.anomaly.start),
            end=int(diagnosis.anomaly.end),
            types=tuple(diagnosis.anomaly.types),
            detected_at=(
                engine.detector.stream_time
                if engine is not None and engine.detector.stream_time is not None
                else None
            ),
        )
        created_at = (
            anomaly.detected_at if anomaly.detected_at is not None else anomaly.end
        )
        instance_id = getattr(diagnosis, "instance_id", "") or ""
        trace = None
        if engine is not None:
            root = engine.tracer.last_root()
            if root is not None and root.name == "service.diagnose":
                trace = SpanNode.from_span(root)
                ctx = getattr(engine, "ingest_trace", None)
                if (
                    ctx is not None
                    and trace.attrs.get("parent_span_id") == ctx.span_id
                ):
                    # The diagnosis parented under a remote publish
                    # span; wrap the tree in a synthetic node for it so
                    # the record shows the full cross-process trace.
                    trace = SpanNode(
                        name="broker.publish_block",
                        elapsed=None,
                        attrs={
                            "trace_id": ctx.trace_id,
                            "span_id": ctx.span_id,
                            "process": ctx.process,
                            "remote": True,
                        },
                        children=(trace,),
                    )
        return IncidentRecord(
            incident_id=self._incident_id(instance_id, anomaly),
            instance_id=instance_id,
            created_at=int(created_at),
            anomaly=anomaly,
            metric_traces=self._metric_traces(case, engine),
            hsql=self._hsql_evidence(case, diagnosis.result),
            hsql_alpha=float(diagnosis.result.hsql.alpha),
            hsql_beta=float(diagnosis.result.hsql.beta),
            rsql=self._rsql_evidence(case, diagnosis.result),
            clusters=tuple(
                ClusterSummary(
                    size=len(c),
                    impact=float(c.impact),
                    sql_ids=tuple(c.sql_ids[:5]),
                )
                for c in diagnosis.result.rsql.clusters[:10]
            ),
            rsql_widened=bool(diagnosis.result.rsql.widened),
            verdict_category=(
                diagnosis.verdict.category.value
                if diagnosis.verdict is not None
                else None
            ),
            verdict_evidence=(
                diagnosis.verdict.evidence if diagnosis.verdict is not None else None
            ),
            repair=self._repair_outcome(diagnosis),
            analysis=self._analysis(diagnosis),
            advisories=self._advisories(diagnosis),
            timings=diagnosis.result.timings.as_dict(),
            trace=trace,
            report_text=diagnosis.report.text,
            templates_seen=len(case.sql_ids),
            recorded_at_unix=time.time(),
            confidence=getattr(diagnosis, "confidence", "full") or "full",
            degraded_reasons=tuple(getattr(diagnosis, "degraded_reasons", ())),
            data_freshness=dict(getattr(diagnosis, "data_freshness", {}) or {}),
        )

    # ------------------------------------------------------------------
    def _incident_id(self, instance_id: str, anomaly: AnomalyWindow) -> str:
        digest = hashlib.blake2b(
            f"{instance_id}|{anomaly.start}|{anomaly.end}|{'|'.join(anomaly.types)}".encode(),
            digest_size=4,
        ).hexdigest()
        prefix = instance_id or "local"
        return f"{prefix}-{anomaly.start}-{digest}"

    def _metric_traces(self, case, engine) -> tuple[MetricTrace, ...]:
        cap = self.max_samples_per_metric
        traces = []
        if engine is not None:
            window = engine.metric_window_snapshot(case.ts, case.te)
            for name in sorted(window):
                samples = window[name]
                if len(samples) > cap:
                    stride = -(-len(samples) // cap)  # ceil division
                    samples = samples[::stride]
                traces.append(
                    MetricTrace(
                        name=name,
                        samples=tuple((int(t), float(v)) for t, v in samples),
                    )
                )
        else:
            # Fallback: the case's forward-filled series.  Decimate by
            # stride *before* materialising tuples — these series span
            # the whole stream, far past the per-metric cap.
            series_map = case.metrics.series
            for name in sorted(series_map):
                series = series_map[name]
                stamps, values = series.timestamps, series.values
                stride = -(-len(stamps) // cap) if len(stamps) > cap else 1
                traces.append(
                    MetricTrace(
                        name=name,
                        samples=tuple(
                            (int(stamps[i]), float(values[i]))
                            for i in range(0, len(stamps), stride)
                        ),
                    )
                )
        return tuple(traces)

    def _hsql_evidence(self, case, result: PinSQLResult) -> tuple[HsqlEvidence, ...]:
        return tuple(
            HsqlEvidence(
                sql_id=s.sql_id,
                trend=float(s.trend),
                scale=float(s.scale),
                scale_trend=float(s.scale_trend),
                impact=float(s.impact),
                statement=self._statement(case, s.sql_id),
            )
            for s in result.hsql.scores[: self.max_hsql]
        )

    def _rsql_evidence(self, case, result: PinSQLResult) -> tuple[RsqlEvidence, ...]:
        verified = set(result.rsql.verified)
        return tuple(
            RsqlEvidence(
                sql_id=sql_id,
                score=float(score),
                verified=sql_id in verified,
                statement=self._statement(case, sql_id),
            )
            for sql_id, score in result.rsql.ranked[: self.max_rsql]
        )

    @staticmethod
    def _statement(case, sql_id: str, width: int = 120) -> str:
        info = case.catalog.get(sql_id)
        if info is None:
            return ""
        text = info.template
        return text if len(text) <= width else text[: width - 1] + "…"

    def _analysis(self, diagnosis):
        """Flatten per-template findings, most severe first (bounded)."""
        findings_map = getattr(diagnosis, "findings", None) or {}
        flat = [f for fs in findings_map.values() for f in fs]
        flat.sort(key=lambda f: (-int(f.severity), f.sql_id, f.rule))
        return tuple(flat[: self.max_findings])

    def _advisories(self, diagnosis):
        """Workload advisories, most severe first (bounded)."""
        advisories = list(getattr(diagnosis, "advisories", ()) or ())
        advisories.sort(key=lambda a: a.sort_key())
        return tuple(advisories[: self.max_advisories])

    @staticmethod
    def _repair_outcome(diagnosis) -> RepairOutcome:
        plan = diagnosis.plan
        planned = []
        for action in plan.actions:
            entry = {"kind": action.kind, "sql_id": action.sql_id}
            for key, value in vars(action).items():
                if key != "sql_id":
                    # Strict JSON: tuples (e.g. optimization evidence)
                    # round-trip as lists.
                    entry[key] = list(value) if isinstance(value, tuple) else value
            planned.append(entry)
        skipped = tuple(
            {"sql_id": skip.sql_id, "reason": skip.reason}
            for skip in getattr(plan, "skips", ())
        )
        return RepairOutcome(
            session_lift=float(plan.session_lift),
            planned=tuple(planned),
            executed_kinds=tuple(a.kind for a in plan.executed),
            executed=bool(diagnosis.executed),
            skipped=skipped,
        )
