"""Render incident records for humans: full-chain text and HTML.

The text renderer is what ``repro incidents show`` prints: the complete
evidence chain — anomaly window → triggering metrics → H-SQL scores →
R-SQL attribution → repair outcome → stage timings and span tree — in
the DAS-console style of :mod:`repro.core.report`.  The HTML renderer
produces a self-contained document (no external assets) suitable for
attaching to a ticket or a CI artifact.
"""

from __future__ import annotations

from repro.core.report import html_escape, html_table, render_html_document
from repro.incidents.record import IncidentRecord, MetricTrace, SpanNode

__all__ = ["render_incident_text", "render_incident_html"]

_RULE = "=" * 72


def _trace_summary(trace: MetricTrace) -> tuple[float, float, float]:
    values = [v for _, v in trace.samples]
    if not values:
        return 0.0, 0.0, 0.0
    return min(values), sum(values) / len(values), max(values)


def _freshness_summary(df: dict) -> str:
    """One-line rendering of a record's ``data_freshness`` dict."""
    if not df:
        return "-"
    parts = []
    if "staleness_s" in df:
        parts.append(f"staleness {df['staleness_s']} s (stream)")
    if "ingest_lag_s" in df:
        parts.append(f"ingest lag {float(df['ingest_lag_s']):.3f} s")
    if "event_time_s" in df:
        parts.append(f"newest event t={df['event_time_s']}")
    return ", ".join(parts) or "-"


def _span_lines(node: SpanNode) -> list[str]:
    lines = []
    for depth, span in node.walk():
        elapsed = "?" if span.elapsed is None else f"{span.elapsed * 1000:.2f} ms"
        label = "  " * depth + span.name
        status = ""
        if span.attrs.get("status") == "error":
            status = f"  !! {span.attrs.get('error', 'error')}"
        lines.append(f"{label:<44} {elapsed:>12}{status}")
    return lines


def render_incident_text(record: IncidentRecord) -> str:
    """The full evidence chain of one incident as console text."""
    r = record
    lines = [
        _RULE,
        f"Incident {r.incident_id}",
        _RULE,
        f"instance       : {r.instance_id or '(single-instance)'}",
        f"anomaly window : [{r.anomaly.start}, {r.anomaly.end}) "
        f"({r.anomaly.duration} s)",
        f"anomaly types  : {', '.join(r.anomaly.types) or '-'}",
        f"detected at    : {r.anomaly.detected_at}"
        + (f"  (recorded at stream t={r.created_at})" if r.created_at else ""),
        f"verdict        : {r.verdict_category or 'untyped'}"
        + (f"  [{r.verdict_evidence}]" if r.verdict_evidence else ""),
        f"confidence     : {r.confidence or 'full'}"
        + (
            f"  ({'; '.join(r.degraded_reasons)})"
            if r.degraded_reasons
            else ""
        ),
        f"data freshness : {_freshness_summary(r.data_freshness)}",
        f"templates seen : {r.templates_seen}",
        "",
        "Triggering metrics (raw detector samples over the evidence window):",
    ]
    if r.metric_traces:
        for trace in r.metric_traces:
            lo, mean, hi = _trace_summary(trace)
            lines.append(
                f"  {trace.name:<24} {len(trace.samples):>5} samples  "
                f"min {lo:10.2f}  mean {mean:10.2f}  max {hi:10.2f}"
            )
    else:
        lines.append("  (no metric samples captured)")

    lines += ["", "H-SQL candidates (symptoms; impact = fused level scores):"]
    if r.hsql:
        lines.append(
            f"  fusion weights: alpha={r.hsql_alpha:+.3f} beta={r.hsql_beta:+.3f}"
        )
        for i, h in enumerate(r.hsql, start=1):
            lines.append(
                f"  {i}. [{h.sql_id}] impact={h.impact:+.3f} "
                f"(trend={h.trend:+.3f}, scale={h.scale:+.3f}, "
                f"scale-trend={h.scale_trend:+.3f})"
            )
            if h.statement:
                lines.append(f"     {h.statement}")
    else:
        lines.append("  (none)")

    lines += ["", "R-SQL attribution (root causes; score = corr(#exec, session)):"]
    if r.rsql:
        for i, c in enumerate(r.rsql, start=1):
            mark = "verified" if c.verified else "unverified"
            lines.append(
                f"  {i}. [{c.sql_id}] score={c.score:+.3f}  ({mark})"
            )
            if c.statement:
                lines.append(f"     {c.statement}")
        if r.rsql_widened:
            lines.append("  note: candidate set was widened past the cumulative"
                         " threshold (initial candidates all failed verification).")
    else:
        lines.append("  (none pinpointed — escalate to a DBA)")
    if r.clusters:
        lines.append(
            "  clusters: "
            + ", ".join(f"size {c.size} (impact {c.impact:+.2f})" for c in r.clusters)
        )

    lines += ["", "Static analysis findings (structural anti-patterns):"]
    if r.analysis:
        for f in r.analysis:
            lines.append(
                f"  [{f.severity.label.upper():>8}] {f.rule} on [{f.sql_id}]: "
                f"{f.message}"
            )
            if f.suggestion:
                lines.append(f"             fix: {f.suggestion}")
    else:
        lines.append("  (none)")

    lines += ["", "Workload advisories (cross-statement analysis):"]
    if r.advisories:
        for a in r.advisories:
            where = f" on {a.table}" if a.table else ""
            lines.append(
                f"  [{a.severity.label.upper():>8}] {a.advisor}{where}: {a.message}"
            )
            if a.sql_ids:
                lines.append(f"             templates: {', '.join(a.sql_ids[:6])}")
            if a.suggestion:
                lines.append(f"             fix: {a.suggestion}")
    else:
        lines.append("  (none)")

    lines += ["", f"Repair outcome: {r.repair.outcome} "
              f"(session lift {r.repair.session_lift:.2f}x)"]
    for action in r.repair.planned:
        extras = {
            k: v for k, v in action.items() if k not in ("kind", "sql_id", "evidence")
        }
        detail = f" {extras}" if extras else ""
        lines.append(
            f"  - {action.get('kind')} on [{action.get('sql_id') or 'instance'}]{detail}"
        )
        for item in action.get("evidence") or ():
            lines.append(f"      evidence: {item}")
    for skip in r.repair.skipped:
        lines.append(
            f"  - skipped [{skip.get('sql_id')}]: {skip.get('reason')}"
        )
    if r.repair.executed_kinds:
        lines.append(f"  executed: {list(r.repair.executed_kinds)}")

    lines += ["", "Stage timings:"]
    for stage, seconds in r.timings.items():
        lines.append(f"  {stage:<28} {seconds * 1000:10.2f} ms")

    if r.trace is not None:
        trace_id = r.trace.attrs.get("trace_id")
        header = (
            f"Diagnosis trace (span tree, trace {trace_id}):"
            if trace_id
            else "Diagnosis trace (span tree):"
        )
        lines += ["", header]
        lines += ["  " + line for line in _span_lines(r.trace)]
    lines.append(_RULE)
    return "\n".join(lines)


def render_incident_html(record: IncidentRecord) -> str:
    """One incident as a self-contained HTML document."""
    r = record
    summary = html_table(
        ["field", "value"],
        [
            ("incident id", r.incident_id),
            ("instance", r.instance_id or "(single-instance)"),
            ("anomaly window",
             f"[{r.anomaly.start}, {r.anomaly.end})  ({r.anomaly.duration} s)"),
            ("anomaly types", ", ".join(r.anomaly.types) or "-"),
            ("detected at", r.anomaly.detected_at),
            ("verdict", r.verdict_category or "untyped"),
            ("verdict evidence", r.verdict_evidence or "-"),
            ("confidence", r.confidence or "full"),
            ("degraded reasons", "; ".join(r.degraded_reasons) or "-"),
            ("data freshness", _freshness_summary(r.data_freshness)),
            ("trace id",
             (r.trace.attrs.get("trace_id") or "-") if r.trace else "-"),
            ("templates seen", r.templates_seen),
            ("repair outcome", r.repair.outcome),
        ],
    )
    metrics = html_table(
        ["metric", "samples", "min", "mean", "max"],
        [
            (t.name, len(t.samples)) + tuple(f"{x:.2f}" for x in _trace_summary(t))
            for t in r.metric_traces
        ],
    )
    hsql = html_table(
        ["#", "sql_id", "impact", "trend", "scale", "scale-trend", "statement"],
        [
            (i, h.sql_id, f"{h.impact:+.3f}", f"{h.trend:+.3f}",
             f"{h.scale:+.3f}", f"{h.scale_trend:+.3f}", h.statement)
            for i, h in enumerate(r.hsql, start=1)
        ],
    )
    rsql = html_table(
        ["#", "sql_id", "score", "verified", "statement"],
        [
            (i, c.sql_id, f"{c.score:+.3f}",
             "yes" if c.verified else "no", c.statement)
            for i, c in enumerate(r.rsql, start=1)
        ],
    )
    rsql_note = (
        "<p class=\"kv\">candidate set widened past the cumulative threshold</p>"
        if r.rsql_widened
        else ""
    )
    analysis = html_table(
        ["severity", "rule", "sql_id", "table", "message", "suggested fix"],
        [
            (f.severity.label, f.rule, f.sql_id, f.table or "-",
             f.message, f.suggestion or "-")
            for f in r.analysis
        ],
    )
    advisories = html_table(
        ["severity", "advisor", "tables", "templates", "message", "suggested fix"],
        [
            (a.severity.label, a.advisor,
             ", ".join(a.tables) or a.table or "-",
             ", ".join(a.sql_ids[:6]) or "-",
             a.message, a.suggestion or "-")
            for a in r.advisories
        ],
    )
    repair_rows = [
        (a.get("kind"), a.get("sql_id") or "instance",
         html_escape({k: v for k, v in a.items()
                      if k not in ("kind", "sql_id", "evidence")}),
         "; ".join(a.get("evidence") or ()) or "-")
        for a in r.repair.planned
    ]
    repair = (
        f"<p>outcome: <b>{html_escape(r.repair.outcome)}</b> "
        f"(session lift {r.repair.session_lift:.2f}x; "
        f"executed: {html_escape(list(r.repair.executed_kinds) or 'none')})</p>"
        + html_table(["action", "target", "parameters", "evidence"], repair_rows)
    )
    if r.repair.skipped:
        repair += html_table(
            ["skipped sql_id", "reason"],
            [(s.get("sql_id"), s.get("reason")) for s in r.repair.skipped],
        )
    timings = html_table(
        ["stage", "milliseconds"],
        [(stage, f"{seconds * 1000:.2f}") for stage, seconds in r.timings.items()],
    )
    sections = [
        ("Summary", summary),
        ("Triggering metrics", metrics),
        (f"H-SQL candidates (α={r.hsql_alpha:+.3f}, β={r.hsql_beta:+.3f})", hsql),
        ("R-SQL attribution", rsql + rsql_note),
        ("Static analysis findings", analysis),
        ("Workload advisories", advisories),
        ("Repair", repair),
        ("Stage timings", timings),
    ]
    if r.trace is not None:
        sections.append(
            ("Diagnosis trace",
             "<pre>" + html_escape("\n".join(_span_lines(r.trace))) + "</pre>")
        )
    if r.report_text:
        sections.append(
            ("DBA report", "<pre>" + html_escape(r.report_text) + "</pre>")
        )
    return render_html_document(f"PinSQL incident {r.incident_id}", sections)
