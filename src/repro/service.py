"""The always-on diagnosis service (DAS-style autonomy loop).

Ties every module together the way the production deployment does
(paper Section III): the service consumes the broker's query-log and
performance-metric topics continuously; the real-time detector watches
the metrics; when an anomaly fires, the service assembles the anomaly
case from the retention-bounded log store (δs seconds of context), runs
PinSQL, renders the diagnosis report, plans repair actions per the
configured rules, and — when an instance handle and auto-execution are
configured — executes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.collection.aggregator import aggregate_logstore
from repro.collection.logstore import LogStore
from repro.collection.stream import Broker
from repro.core.case import AnomalyCase
from repro.core.config import PinSQLConfig
from repro.core.pipeline import PinSQL, PinSQLResult
from repro.core.repair.engine import RepairEngine, RepairPlan
from repro.core.repair.rules import DEFAULT_REPAIR_CONFIG, RepairConfig
from repro.core.report import DiagnosisReport, render_report
from repro.dbsim.instance import DatabaseInstance
from repro.dbsim.monitor import InstanceMetrics
from repro.detection.case_builder import DetectedAnomaly
from repro.detection.realtime import RealtimeAnomalyDetector
from repro.detection.typing import CategoryVerdict, classify_case
from repro.sqltemplate import TemplateCatalog, fingerprint
from repro.timeseries import TimeSeries

import numpy as np

__all__ = ["ServiceConfig", "Diagnosis", "PinSqlService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the autonomy loop (the paper's Fig. 5 knobs)."""

    pinsql: PinSQLConfig = field(default_factory=PinSQLConfig)
    repair: RepairConfig = DEFAULT_REPAIR_CONFIG
    #: δs — context collected before the detected anomaly start.
    delta_start_s: int = 900
    #: Sliding window and cadence of the real-time detector.
    detector_window_s: int = 1800
    evaluation_interval_s: int = 60
    #: Ignore anomalies shorter than this (user-configurable, Sec. IV-B).
    min_anomaly_duration_s: int = 30


@dataclass
class Diagnosis:
    """One completed diagnosis produced by the service."""

    anomaly: DetectedAnomaly
    case: AnomalyCase
    result: PinSQLResult
    report: DiagnosisReport
    plan: RepairPlan
    executed: bool
    #: Rule-based anomaly typing (category + evidence).
    verdict: CategoryVerdict | None = None


class PinSqlService:
    """Consumes the broker topics and diagnoses anomalies autonomously.

    Parameters
    ----------
    broker:
        The message broker carrying ``query_logs`` and
        ``performance_metrics`` topics.
    config:
        Service configuration.
    instance:
        Optional live :class:`DatabaseInstance`; when provided *and* the
        repair config enables auto-execution, planned actions are applied.
    history_provider:
        Optional callable ``(sql_id, days_ago, ts, te) → TimeSeries|None``
        supplying historical execution series for verification.
    notify:
        Optional callback invoked with each completed :class:`Diagnosis`
        (the DingTalk/SMS hook of the paper's Fig. 5).
    """

    def __init__(
        self,
        broker: Broker,
        config: ServiceConfig | None = None,
        instance: DatabaseInstance | None = None,
        history_provider: Callable[[str, int, int, int], TimeSeries | None] | None = None,
        notify: Callable[[Diagnosis], None] | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.broker = broker
        self.instance = instance
        self.history_provider = history_provider
        self.notify = notify
        self.logstore = LogStore()
        self.catalog = TemplateCatalog()
        self._log_consumer = broker.consumer("query_logs")
        self.detector = RealtimeAnomalyDetector(
            broker.consumer("performance_metrics"),
            window_s=self.config.detector_window_s,
            evaluation_interval_s=self.config.evaluation_interval_s,
        )
        self._pinsql = PinSQL(self.config.pinsql)
        self._repair = RepairEngine(self.config.repair)
        #: Per-metric raw samples retained for case assembly.
        self._metric_samples: dict[str, dict[int, float]] = {}
        self.diagnoses: list[Diagnosis] = []

    # ------------------------------------------------------------------
    # Stream consumption
    # ------------------------------------------------------------------
    def _drain_query_logs(self, max_messages: int = 50_000) -> int:
        from repro.dbsim.query import SecondBatch

        handled = 0
        while True:
            messages = self._log_consumer.poll(max_messages)
            if not messages:
                break
            for message in messages:
                record = message.value
                sql_id = record["sql_id"]
                self.logstore.ingest_batch(
                    SecondBatch(
                        sql_id=sql_id,
                        arrive_ms=np.asarray(record["arrive_ms"], dtype=np.int64),
                        response_ms=np.asarray(record["response_ms"], dtype=np.float64),
                        examined_rows=np.asarray(record["examined_rows"], dtype=np.float64),
                    )
                )
                if sql_id not in self.catalog and "statement" in record:
                    self.catalog.register_statement(record["statement"])
                handled += 1
        return handled

    def register_statement(self, sql: str) -> None:
        """Teach the catalog a statement (collectors may also inline them)."""
        fp = fingerprint(sql)
        self.catalog.register_template(fp.sql_id, fp.template, fp.kind, fp.tables)

    def register_catalog(self, catalog: TemplateCatalog) -> None:
        """Merge an external template catalog (e.g. from the workload)."""
        for info in catalog:
            self.catalog.register_template(
                info.sql_id, info.template, info.kind, info.tables
            )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def step(self) -> list[Diagnosis]:
        """Consume available stream data; diagnose any fresh anomalies."""
        self._drain_query_logs()
        events = self.detector.poll()
        self._capture_metric_samples()
        produced: list[Diagnosis] = []
        for event in events:
            if event.is_update:
                continue
            if event.anomaly.duration < self.config.min_anomaly_duration_s:
                continue
            diagnosis = self._diagnose(event.anomaly)
            if diagnosis is not None:
                self.diagnoses.append(diagnosis)
                produced.append(diagnosis)
                if self.notify is not None:
                    self.notify(diagnosis)
        return produced

    def run_until_drained(self) -> list[Diagnosis]:
        """Step until both topics are exhausted."""
        produced: list[Diagnosis] = []
        while self._log_consumer.lag > 0 or self.detector.consumer.lag > 0:
            produced.extend(self.step())
        return produced

    # ------------------------------------------------------------------
    def _capture_metric_samples(self) -> None:
        """Mirror the detector's buffers for case assembly."""
        for name, buffer in self.detector._buffers.items():
            samples = self._metric_samples.setdefault(name, {})
            samples.update(buffer.samples)

    def _metric_series(self, name: str, ts: int, te: int) -> TimeSeries:
        samples = self._metric_samples.get(name, {})
        values = np.zeros(te - ts, dtype=np.float64)
        last = 0.0
        for i, t in enumerate(range(ts, te)):
            if t in samples:
                last = samples[t]
            values[i] = last
        return TimeSeries(values, start=ts, name=name)

    def _diagnose(self, anomaly: DetectedAnomaly) -> Diagnosis | None:
        ts = max(0, anomaly.start - self.config.delta_start_s)
        te = max(anomaly.end, anomaly.start + 1)
        metrics = InstanceMetrics(
            {
                name: self._metric_series(name, ts, te)
                for name in self._metric_samples
            }
        )
        if "active_session" not in metrics:
            return None
        templates = aggregate_logstore(self.logstore, ts, te)
        if not templates.sql_ids:
            return None
        history: dict[str, dict[int, TimeSeries]] = {}
        if self.history_provider is not None:
            for sql_id in templates.sql_ids:
                for days in self.config.pinsql.history_days:
                    series = self.history_provider(sql_id, days, ts, te)
                    if series is not None:
                        history.setdefault(sql_id, {})[days] = series
        case = AnomalyCase(
            metrics=metrics,
            templates=templates,
            logs=self.logstore,
            catalog=self.catalog,
            anomaly_start=anomaly.start,
            anomaly_end=min(anomaly.end, te),
            history=history,
        )
        result = self._pinsql.analyze(case)
        verdict = classify_case(case)
        plan = self._repair.plan(case, result, anomaly_types=anomaly.types)
        executed = False
        if self.instance is not None and self.config.repair.auto_execute:
            self._repair.execute(plan, self.instance, now_s=te)
            executed = bool(plan.executed)
        report = render_report(case, result, plan=plan)
        return Diagnosis(
            anomaly=anomaly,
            case=case,
            result=result,
            report=report,
            plan=plan,
            executed=executed,
            verdict=verdict,
        )
