"""The always-on diagnosis service (DAS-style autonomy loop).

Single-instance facade over the fleet machinery: a
:class:`PinSqlService` is an
:class:`~repro.fleet.engine.InstanceDiagnosisEngine` with an empty
``instance_id`` — the original shared ``query_logs`` /
``performance_metrics`` topics, unlabelled telemetry, and a private
self-monitor — so everything written against the pre-fleet API keeps
working unchanged.  Multi-instance deployments use
:class:`~repro.fleet.service.FleetDiagnosisService`, which runs one
engine per registered instance on a sharded worker pool.

``ServiceConfig`` and ``Diagnosis`` live in :mod:`repro.fleet.engine`
now; they are re-exported here for compatibility.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (incidents → core)
    from repro.incidents.recorder import IncidentRecorder

from repro.collection.stream import Broker
from repro.dbsim.instance import DatabaseInstance
from repro.fleet.engine import Diagnosis, InstanceDiagnosisEngine, ServiceConfig
from repro.telemetry import MetricsRegistry, Tracer
from repro.timeseries import TimeSeries

__all__ = ["ServiceConfig", "Diagnosis", "PinSqlService"]


class PinSqlService(InstanceDiagnosisEngine):
    """Consumes the broker topics and diagnoses anomalies autonomously.

    Parameters
    ----------
    broker:
        The message broker carrying ``query_logs`` and
        ``performance_metrics`` topics.
    config:
        Service configuration.
    instance:
        Optional live :class:`DatabaseInstance`; when provided *and* the
        repair config enables auto-execution, planned actions are applied.
    history_provider:
        Optional callable ``(sql_id, days_ago, ts, te) → TimeSeries|None``
        supplying historical execution series for verification.
    notify:
        Optional callback invoked with each completed :class:`Diagnosis`
        (the DingTalk/SMS hook of the paper's Fig. 5).
    registry / tracer:
        Optional telemetry sinks; by default the process-wide registry
        and tracer from :mod:`repro.telemetry` are used.  Passing a
        fresh registry isolates this service's metrics (and creates a
        matching tracer bound to it unless one is supplied).
    """

    def __init__(
        self,
        broker: Broker,
        config: ServiceConfig | None = None,
        instance: DatabaseInstance | None = None,
        history_provider: Callable[[str, int, int, int], TimeSeries | None] | None = None,
        notify: Callable[[Diagnosis], None] | None = None,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        recorder: "IncidentRecorder | None" = None,
    ) -> None:
        super().__init__(
            broker,
            instance_id="",
            config=config,
            instance=instance,
            history_provider=history_provider,
            notify=notify,
            registry=registry,
            tracer=tracer,
            recorder=recorder,
        )
