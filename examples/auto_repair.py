"""Autonomous repair: detect → pinpoint → act, on a live simulated instance.

Recreates the dynamics of the paper's Fig. 8 case study in miniature: a
poor SQL rolls out and saturates the CPU; PinSQL pinpoints it; the
repairing module first compares throttling (symptomatic relief that hurts
the business) with query optimization (the fundamental fix), then applies
the optimization and the instance recovers.

Run:  python examples/auto_repair.py
"""

import numpy as np

from repro.collection import LogStore, aggregate_query_log
from repro.core import (
    AnomalyCase,
    PinSQL,
    RepairConfig,
    RepairEngine,
    RepairRule,
    validate_plan,
)
from repro.dbsim import DatabaseInstance
from repro.sqltemplate import TemplateCatalog
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)


def build_case(engine, population, anomaly_start):
    """Assemble an AnomalyCase from a live engine's data so far."""
    metrics, _, _ = engine.monitor.finalize(engine.query_log)
    templates = aggregate_query_log(engine.query_log, 0, engine.now)
    logs = LogStore()
    logs.ingest_query_log(engine.query_log)
    catalog = TemplateCatalog()
    for spec in population.specs.values():
        catalog.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
    return AnomalyCase(
        metrics=metrics,
        templates=templates,
        logs=logs,
        catalog=catalog,
        anomaly_start=anomaly_start,
        anomaly_end=engine.now,
    )


def main() -> None:
    horizon, onset = 2000, 400
    rng = np.random.default_rng(11)
    population = build_population(horizon, rng, n_businesses=6)
    truth = inject_anomaly(population, rng, AnomalyCategory.POOR_SQL, onset, horizon)
    generator = WorkloadGenerator(population)
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=5)

    # Phase 1: anomaly develops for 500 s after onset.
    engine = instance.start(generator)
    engine.run(onset + 500)

    # Diagnose on the data collected so far.
    case = build_case(engine, population, onset)
    analysis = PinSQL().analyze(case)
    top_r = analysis.rsql_ids[0]
    correct = top_r in truth.r_sql_ids
    info = case.catalog.get(top_r)
    print(f"t={engine.now}s  PinSQL pinpoints R-SQL [{top_r}] "
          f"({'correct' if correct else 'incorrect'}): {info.template[:60]}")

    # Phase 2: repairing module plans and executes query optimization.
    config = RepairConfig(
        rules=(
            RepairRule(("cpu_anomaly", "active_session_anomaly"), "query_optimization"),
        ),
        auto_execute=True,
        top_k=1,
    )
    repair = RepairEngine(config)
    plan = repair.plan(case, analysis, anomaly_types=("cpu_anomaly",))
    # Counterfactual validation: replay the observed traffic with the
    # plan in place before touching the "production" instance.
    validation = validate_plan(case, plan)
    print(f"t={engine.now}s  plan validation: {validation}")
    executed = repair.execute(plan, instance, now_s=engine.now)
    for action in executed:
        print(f"t={engine.now}s  executed {action.kind}: rows_gain="
              f"{action.rows_gain:.0%}, tres_gain={action.tres_gain:.0%}")

    # Phase 3: run to the horizon and report recovery.
    engine.run(horizon - engine.now)
    result = instance.finish()
    cpu = result.metrics.cpu_usage.values
    session = result.metrics.active_session.values
    phases = {
        "baseline        ": slice(100, onset - 20),
        "anomaly         ": slice(onset + 100, onset + 480),
        "after repair    ": slice(horizon - 300, horizon),
    }
    print("\nphase              cpu%   active session")
    for name, window in phases.items():
        print(f"{name}  {cpu[window].mean():5.1f}   {session[window].mean():8.1f}")
    recovered = cpu[phases["after repair    "]].mean() < cpu[phases["anomaly         "]].mean() * 0.7
    print(f"\ninstance recovered: {recovered}")


if __name__ == "__main__":
    main()
