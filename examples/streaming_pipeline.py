"""The data-collection pipeline: collectors → broker → aggregation → detection.

Shows the full Section-IV plumbing on a simulated instance: the query-log
collector ships per-second batches into the broker (the Kafka stand-in),
the stream aggregator (the Flink stand-in) materialises per-template
metric series at 1-second and 1-minute granularity, the log store applies
retention, and the two perception layers watch the instance metrics.

Run:  python examples/streaming_pipeline.py
"""

import numpy as np

from repro.collection import (
    Broker,
    LogStore,
    MetricsCollector,
    QueryLogCollector,
    StreamAggregator,
)
from repro.dbsim import DatabaseInstance
from repro.detection import BasicPerception, CaseBuilder, PhenomenonPerception
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)


def main() -> None:
    duration, anomaly_start = 900, 600
    rng = np.random.default_rng(3)
    population = build_population(duration, rng, n_businesses=6)
    inject_anomaly(
        population, rng, AnomalyCategory.POOR_SQL, anomaly_start, duration
    )
    print(f"Simulating {len(population.specs)} templates for {duration} s "
          f"(poor SQL rolled out at t={anomaly_start}) ...")
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=1)
    result = instance.run(WorkloadGenerator(population), duration=duration)

    # --- Ship logs and metrics through the broker ----------------------
    broker = Broker()
    n_batches = QueryLogCollector(broker).collect(result.query_log)
    n_points = MetricsCollector(broker).collect(result.metrics)
    print(f"collector shipped {n_batches:,} query-log batches and "
          f"{n_points:,} metric points")

    # --- Stream aggregation (Flink stand-in) ---------------------------
    aggregator = StreamAggregator(broker.consumer("query_logs"), start=0, end=duration)
    polled = 0
    while aggregator.consumer.lag > 0:
        polled += aggregator.poll(max_messages=5_000)
    store_1s = aggregator.snapshot()
    store_1m = store_1s.resample(60)
    print(f"aggregated {polled:,} messages into {len(store_1s)} template series "
          f"({store_1s.length} samples @1s, {store_1m.length} @1min)")

    # --- Retention-bounded raw-log store --------------------------------
    logstore = LogStore(retention_s=3 * 24 * 3600)
    stored = logstore.ingest_query_log(result.query_log)
    print(f"log store holds {stored:,} raw query records "
          f"(retention {logstore.retention_s // 3600} h)")

    # --- Anomaly detection over the shipped metrics ---------------------
    features = BasicPerception().perceive(result.metrics)
    phenomena = PhenomenonPerception().recognise(features)
    anomalies = CaseBuilder(min_duration_s=30).build(phenomena)
    print(f"\nBasic Perception found {len(features)} anomalous features; "
          f"Phenomenon Perception typed {len(phenomena)} phenomena")
    for anomaly in anomalies:
        print(f"  anomaly [{anomaly.start:>4}, {anomaly.end:>4}) s  types={anomaly.types}")

    # --- Peek at the busiest template's aggregated series ---------------
    busiest = max(store_1m.sql_ids, key=lambda sid: store_1m.executions(sid).total())
    series = store_1m.executions(busiest)
    print(f"\nbusiest template {busiest}: #execution per minute "
          f"min={series.values.min():.0f} max={series.values.max():.0f}")


if __name__ == "__main__":
    main()
