"""Diagnosing lock contention: the paper's motivating UPDATE-blocks-SELECT case.

Builds a hand-crafted workload on a SALES table — steady SELECT traffic
plus a batch of row-lock-heavy UPDATEs arriving mid-run — simulates the
instance, detects the anomaly from the metrics, and shows how PinSQL's
propagation chain separates the H-SQLs (the blocked SELECTs that inflate
the active session) from the R-SQL (the UPDATE batch actually causing it).

Run:  python examples/lock_contention_diagnosis.py
"""

import numpy as np

from repro.collection import LogStore, aggregate_query_log
from repro.core import AnomalyCase, PinSQL
from repro.dbsim import DatabaseInstance, TemplateSpec
from repro.detection import BasicPerception, CaseBuilder, PhenomenonPerception
from repro.sqltemplate import TemplateCatalog, fingerprint


class SalesWorkload:
    """Steady SELECTs on `sales` and `orders`; UPDATE batch on `sales`
    during [600, 900)."""

    def __init__(self) -> None:
        select_sales = fingerprint("SELECT * FROM sales WHERE item_id = 42")
        select_orders = fingerprint("SELECT * FROM orders WHERE order_id = 7")
        update_sales = fingerprint("UPDATE sales SET qty = 3 WHERE item_id = 42")
        self._specs = {
            select_sales.sql_id: TemplateSpec(
                select_sales.sql_id, select_sales.template, select_sales.kind,
                select_sales.tables, base_response_ms=3.0, examined_rows_mean=150.0,
            ),
            select_orders.sql_id: TemplateSpec(
                select_orders.sql_id, select_orders.template, select_orders.kind,
                select_orders.tables, base_response_ms=2.0, examined_rows_mean=80.0,
            ),
            update_sales.sql_id: TemplateSpec(
                update_sales.sql_id, update_sales.template, update_sales.kind,
                update_sales.tables, base_response_ms=6.0, examined_rows_mean=400.0,
                lock_hold_ms=250.0,
            ),
        }
        self.select_sales = select_sales.sql_id
        self.select_orders = select_orders.sql_id
        self.update_sales = update_sales.sql_id

    @property
    def specs(self):
        return self._specs

    def rates_at(self, t: int):
        rates = {self.select_sales: 80.0, self.select_orders: 60.0}
        if 600 <= t < 900:
            rates[self.update_sales] = 35.0
        return rates


def main() -> None:
    duration = 1000
    workload = SalesWorkload()
    instance = DatabaseInstance(seed=7)
    print("Simulating 1000 s of SALES traffic with a batch UPDATE at t=600 ...")
    result = instance.run(workload, duration=duration)

    # --- Anomaly detection (Basic + Phenomenon perception layers) -----
    features = BasicPerception().perceive(result.metrics)
    phenomena = PhenomenonPerception().recognise(features)
    anomalies = CaseBuilder(min_duration_s=30).build(phenomena)
    if not anomalies:
        raise SystemExit("no anomaly detected — unexpected for this scenario")
    anomaly = max(anomalies, key=lambda a: a.duration)
    print(f"\nDetected anomaly: [{anomaly.start}, {anomaly.end}) s, types={anomaly.types}")

    # --- Build the case and analyse ------------------------------------
    templates = aggregate_query_log(result.query_log, 0, duration)
    logs = LogStore()
    logs.ingest_query_log(result.query_log)
    catalog = TemplateCatalog()
    for sql_id, spec in workload.specs.items():
        catalog.register_template(sql_id, spec.template, spec.kind, spec.tables)
    case = AnomalyCase(
        metrics=result.metrics,
        templates=templates,
        logs=logs,
        catalog=catalog,
        anomaly_start=anomaly.start,
        anomaly_end=min(anomaly.end, duration),
    )
    analysis = PinSQL().analyze(case)

    names = {
        workload.select_sales: "SELECT on sales (blocked readers)",
        workload.select_orders: "SELECT on orders (innocent bystander)",
        workload.update_sales: "UPDATE on sales (the batch job)",
    }
    print("\nH-SQL ranking (who inflates the active session):")
    for i, s in enumerate(analysis.hsql.scores, start=1):
        print(f"  {i}. {names[s.sql_id]:<42} impact={s.impact:+.2f} "
              f"(trend={s.trend:+.2f} scale={s.scale:+.2f} scale-trend={s.scale_trend:+.2f})")

    print("\nR-SQL ranking (who is the root cause):")
    for i, (sql_id, score) in enumerate(analysis.rsql.ranked, start=1):
        print(f"  {i}. {names[sql_id]:<42} corr(#exec, session)={score:+.2f}")

    top_r = analysis.rsql_ids[0]
    verdict = "CORRECT" if top_r == workload.update_sales else "WRONG"
    print(f"\nPinpointed root cause: {names[top_r]}  [{verdict}]")
    print("Note how the blocked SELECTs top the H-SQL list while the UPDATE")
    print("batch — invisible to response-time Top-SQL pages — tops the R-SQLs.")


if __name__ == "__main__":
    main()
