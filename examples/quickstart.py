"""Quickstart: diagnose a simulated cloud-database anomaly with PinSQL.

Generates one labelled anomaly case end-to-end (microservice workload →
injected root cause → simulated instance → detected anomaly window),
runs the PinSQL pipeline on it, and prints the ranked root-cause and
high-impact SQL templates next to the ground truth.

Run:  python examples/quickstart.py
"""

from repro.core import PinSQL
from repro.evaluation import CorpusConfig, generate_case
from repro.workload import AnomalyCategory


def main() -> None:
    cfg = CorpusConfig(delta_start_s=600, anomaly_length_s=(240, 360))
    labeled = generate_case(seed=42, cfg=cfg, category=AnomalyCategory.ROW_LOCK)
    case = labeled.case

    print("=== Anomaly case ===")
    print(f"category        : {labeled.category.value}")
    print(f"window          : [{case.anomaly_start}, {case.anomaly_end}) s "
          f"(detected by the anomaly-detection module: {labeled.detected})")
    print(f"templates       : {len(case.sql_ids)}")
    print(f"queries logged  : {case.logs.total_queries():,}")
    session = case.active_session.values
    lo, hi = case.anomaly_indices()
    print(f"active session  : baseline ~{session[:lo].mean():.1f} → "
          f"anomaly ~{session[lo:hi].mean():.1f}")

    result = PinSQL().analyze(case)

    print("\n=== PinSQL analysis "
          f"({result.timings.total:.2f} s) ===")
    print("\nTop-5 R-SQLs (root causes):")
    for i, (sql_id, score) in enumerate(result.rsql.ranked[:5], start=1):
        info = case.catalog.get(sql_id)
        marker = " <-- ground truth" if sql_id in labeled.r_sqls else ""
        text = info.template if info else "?"
        print(f"  {i}. [{sql_id}] corr={score:+.2f}  {text[:70]}{marker}")

    print("\nTop-5 H-SQLs (direct causes of the session anomaly):")
    for i, s in enumerate(result.hsql.scores[:5], start=1):
        info = case.catalog.get(s.sql_id)
        marker = " <-- ground truth" if s.sql_id in labeled.h_sqls else ""
        text = info.template if info else "?"
        print(f"  {i}. [{s.sql_id}] impact={s.impact:+.2f}  {text[:68]}{marker}")

    print("\nStage timings:")
    t = result.timings
    print(f"  session estimation      : {t.session_estimation:.3f} s")
    print(f"  H-SQL ranking           : {t.hsql_ranking:.3f} s")
    print(f"  clustering & filtering  : {t.clustering_and_filtering:.3f} s")
    print(f"  history verification    : {t.history_verification:.3f} s")


if __name__ == "__main__":
    main()
