"""Business spike → classify → AutoScale (not throttling).

The paper's category-1 anomalies are intended traffic (Double-11, Black
Friday): the root-cause SQLs are the business's own queries, and the
right remediation is *not* throttling — "increased SQL traffic is a
phenomenon known in advance by the business department ... we recommend
that DBAs turn on AutoScale".  This example shows that routing: the
anomaly is detected, typed as a business spike by the metric-signature
classifier, and repaired by expanding CPU plus adding read-only nodes.

Run:  python examples/business_spike_autoscale.py
"""

import numpy as np

from repro.collection import LogStore, aggregate_query_log
from repro.core import AnomalyCase, PinSQL, RepairConfig, RepairEngine, RepairRule
from repro.dbsim import DatabaseInstance
from repro.detection import classify_case
from repro.sqltemplate import TemplateCatalog
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)


def build_case(engine, population, anomaly_start):
    metrics, _, _ = engine.monitor.finalize(engine.query_log)
    templates = aggregate_query_log(engine.query_log, 0, engine.now)
    logs = LogStore()
    logs.ingest_query_log(engine.query_log)
    catalog = TemplateCatalog()
    for spec in population.specs.values():
        catalog.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
    return AnomalyCase(
        metrics=metrics, templates=templates, logs=logs, catalog=catalog,
        anomaly_start=anomaly_start, anomaly_end=engine.now,
    )


def main() -> None:
    horizon, onset, act_at = 1600, 500, 900
    rng = np.random.default_rng(2024)
    population = build_population(horizon, rng, n_businesses=6)
    truth = inject_anomaly(
        population, rng, AnomalyCategory.BUSINESS_SPIKE, onset, horizon
    )
    print(f"simulating a flash-sale traffic spike on {truth.business} "
          f"from t={onset} ...")
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=7)
    engine = instance.start(WorkloadGenerator(population))
    engine.run(act_at)

    # Diagnose and type the anomaly.
    case = build_case(engine, population, onset)
    verdict = classify_case(case)
    print(f"t={act_at}s  anomaly typed as {verdict.category.value} "
          f"[{verdict.evidence}]")
    analysis = PinSQL().analyze(case)
    top_r = analysis.rsql_ids[0]
    print(f"t={act_at}s  top R-SQL [{top_r}] "
          f"({'business query, as expected' if top_r in truth.r_sql_ids else 'unexpected'})")

    # Route the repair by type: spikes get AutoScale, never throttling.
    if verdict.category is AnomalyCategory.BUSINESS_SPIKE:
        config = RepairConfig(
            rules=(
                RepairRule(
                    ("*",), "autoscale",
                    params=(("new_cores", 32), ("read_offload", 0.5)),
                ),
            ),
            auto_execute=True,
        )
    else:
        config = RepairConfig(
            rules=(RepairRule(("*",), "sql_throttle"),), auto_execute=True
        )
    repair = RepairEngine(config)
    plan = repair.plan(case, analysis, anomaly_types=("active_session_anomaly",))
    for action in repair.execute(plan, instance, now_s=engine.now):
        print(f"t={engine.now}s  executed {action.kind} "
              f"(cores→{getattr(action, 'new_cores', '?')}, "
              f"read offload {getattr(action, 'read_offload', 0):.0%})")

    engine.run(horizon - engine.now)
    result = instance.finish()
    session = result.metrics.active_session.values
    cpu = result.metrics.cpu_usage.values
    qps = result.metrics["qps"].values
    rows = {
        "baseline": slice(100, onset - 20),
        "spike (before scaling)": slice(onset + 100, act_at - 20),
        "spike (after scaling)": slice(act_at + 100, horizon - 20),
    }
    print(f"\n{'phase':<24}{'session':>9}{'cpu%':>7}{'primary qps':>13}")
    for name, window in rows.items():
        print(f"{name:<24}{session[window].mean():>9.1f}"
              f"{cpu[window].mean():>7.1f}{qps[window].mean():>13.0f}")
    print("\nthe spike traffic keeps flowing (no throttling) while the "
          "primary sheds load to the replicas and the bigger CPU.")


if __name__ == "__main__":
    main()
