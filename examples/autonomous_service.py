"""The always-on diagnosis service: streams in, diagnoses out.

Runs the full DAS-style autonomy loop on a simulated instance: the
collectors publish query logs and metrics to the broker; the service
consumes both topics, its real-time detector recognises the anomaly,
the case is assembled from the log store, PinSQL pinpoints the root
cause, and the repairing module plans actions — with a notification
callback, as in the paper's Fig. 5 configuration.

Run:  python examples/autonomous_service.py
"""

import numpy as np

from repro.collection import Broker, MetricsCollector, QueryLogCollector
from repro.dbsim import DatabaseInstance
from repro.service import PinSqlService, ServiceConfig
from repro.sqltemplate import TemplateCatalog
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)


def main() -> None:
    duration, onset = 1000, 650
    rng = np.random.default_rng(101)
    population = build_population(duration, rng, n_businesses=6)
    truth = inject_anomaly(
        population, rng, AnomalyCategory.MDL_LOCK, onset, duration
    )
    print(f"simulating a schema-migration anomaly from t={onset} "
          f"(root cause job: {truth.r_sql_ids}) ...")
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=12)
    result = instance.run(WorkloadGenerator(population), duration=duration)

    # Collectors ship both topics into the broker.
    broker = Broker()
    QueryLogCollector(broker).collect(result.query_log)
    MetricsCollector(broker).collect(result.metrics)

    # The service, with a DingTalk/SMS-style notification hook.
    notifications = []
    service = PinSqlService(
        broker,
        ServiceConfig(delta_start_s=600, detector_window_s=1000),
        notify=lambda d: notifications.append(d),
    )
    catalog = TemplateCatalog()
    for spec in population.specs.values():
        catalog.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
    service.register_catalog(catalog)

    diagnoses = service.run_until_drained()
    print(f"\nservice completed: {len(diagnoses)} diagnosis(es), "
          f"{len(notifications)} notification(s)\n")
    for diagnosis in diagnoses:
        print(diagnosis.report.text)
        top = diagnosis.result.rsql_ids[0] if diagnosis.result.rsql_ids else None
        verdict = "CORRECT" if top in truth.r_sql_ids else "WRONG"
        print(f"ground truth check: top-1 R-SQL is {verdict}\n")


if __name__ == "__main__":
    main()
