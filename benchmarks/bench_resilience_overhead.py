"""Resilience-layer overhead on the clean diagnosis path.

Every diagnosis now runs under the stage watchdog, assesses its metric
windows for gaps (degraded-mode policy), and routes repair planning
through the circuit breaker.  On a *clean* substrate — dense windows,
no faults, breaker closed — all of that must be invisible: < 5% of the
diagnosis hot path, same budget as telemetry and incident recording.
"""

import time

from repro.core import PinSQL, RepairEngine
from repro.core.report import render_report
from repro.detection.typing import classify_case
from repro.resilience import CircuitBreaker, DegradedModePolicy, StageWatchdog
from repro.telemetry import MetricsRegistry

from benchmarks.conftest import write_json, write_report

#: A clean per-second window shaped like the real assembly input:
#: three performance metrics over delta + anomaly (~25 minutes).
WINDOW_S = 1500
CLEAN_SAMPLES = {
    name: {t: 1.0 + (t % 7) for t in range(WINDOW_S)}
    for name in ("active_session", "cpu_usage", "iops_usage")
}


def _best_of(fn, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _diagnose_bare(pinsql, repair, labeled):
    """The hot path with the resilience layer stripped out."""
    case = labeled.case
    result = pinsql.analyze(case)
    classify_case(case)
    plan = repair.plan(case, result)
    render_report(case, result, plan=plan)
    return result


def _diagnose_resilient(pinsql, repair, labeled, watchdog, policy, breaker):
    """The same work under watchdog + degraded assessment + breaker."""
    case = labeled.case
    deadline = watchdog.deadline()
    with watchdog.stage(deadline, "assemble"):
        assessment = policy.assess(CLEAN_SAMPLES, 0, WINDOW_S)
    with watchdog.stage(deadline, "analyze"):
        result = pinsql.analyze(case)
        classify_case(case)
    with watchdog.stage(deadline, "repair"):
        plan = breaker.call(repair.plan, case, result)
    with watchdog.stage(deadline, "report"):
        render_report(case, result, plan=plan)
    assert not assessment.degraded  # the clean path stays clean
    return result


def test_resilience_overhead(corpus, benchmark):
    pinsql = PinSQL()
    repair = RepairEngine()
    registry = MetricsRegistry()
    watchdog = StageWatchdog(60.0, registry=registry)
    policy = DegradedModePolicy(registry=registry)
    breaker = CircuitBreaker(name="bench-repair", registry=registry)
    cases = corpus[:8]
    for labeled in cases:  # warm both paths
        _diagnose_bare(pinsql, repair, labeled)
        _diagnose_resilient(pinsql, repair, labeled, watchdog, policy, breaker)

    lines = [
        "Resilience overhead — clean diagnosis path with vs without",
        f"(watchdog + degraded-mode assessment over {WINDOW_S}s x "
        f"{len(CLEAN_SAMPLES)} metrics + repair circuit breaker)",
        f"{'case':<8} {'bare':>10} {'resilient':>11} {'overhead':>9}",
    ]
    total_on = total_off = 0.0
    for i, labeled in enumerate(cases):
        t_off = _best_of(lambda lc=labeled: _diagnose_bare(pinsql, repair, lc))
        t_on = _best_of(
            lambda lc=labeled: _diagnose_resilient(
                pinsql, repair, lc, watchdog, policy, breaker
            )
        )
        total_on += t_on
        total_off += t_off
        lines.append(
            f"{i:<8} {t_off * 1e3:9.2f}ms {t_on * 1e3:10.2f}ms "
            f"{(t_on / t_off - 1) * 100:+8.2f}%"
        )
    overall = total_on / total_off - 1
    lines.append(f"overall overhead: {overall * 100:+.2f}% (budget: +5%)")
    write_report("resilience_overhead", "\n".join(lines))
    write_json(
        "resilience_overhead",
        {
            "cases": len(cases),
            "bare_seconds": total_off,
            "resilient_seconds": total_on,
            "overhead_fraction": overall,
            "budget_fraction": 0.05,
        },
    )

    assert overall < 0.05, (
        f"resilience-layer overhead {overall * 100:.2f}% exceeds 5%"
    )

    labeled = cases[0]
    benchmark(
        lambda: _diagnose_resilient(
            pinsql, repair, labeled, watchdog, policy, breaker
        )
    )
