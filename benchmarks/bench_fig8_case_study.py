"""Fig. 8 — the repair case study on a live simulated instance.

Replays the paper's production timeline: a row-lock anomaly develops;
the user manually throttles the Top-1 SQL by response time (an H-SQL),
which relieves the symptoms only partially and hurts that query's
business; the throttle is lifted and the anomaly returns; PinSQL then
pinpoints the R-SQL and the suggested query optimization resolves the
anomaly fundamentally.

Paper reference (Fig. 8 and its three observations): (1) switching the
Top-SQL throttle off brings the anomaly back; (2) even under the
throttle the metrics stay above normal; (3) acting on the R-SQL restores
the metrics to normal.
"""

import numpy as np

from repro.collection import LogStore, aggregate_query_log
from repro.core import AnomalyCase, PinSQL, plan_optimization
from repro.dbsim import DatabaseInstance
from repro.sqltemplate import TemplateCatalog
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)

from benchmarks.conftest import write_report

# Timeline (seconds).
ONSET = 600           # anomaly begins
THROTTLE_ON = 1100    # user throttles Top-RT #1
THROTTLE_OFF = 1600   # user lifts the throttle (business impact)
PINSQL_AT = 2100      # PinSQL analysis + optimization of the R-SQL
HORIZON = 3000


def _build_case(engine, population, anomaly_start):
    metrics, _, _ = engine.monitor.finalize(engine.query_log)
    templates = aggregate_query_log(engine.query_log, 0, engine.now)
    logs = LogStore()
    logs.ingest_query_log(engine.query_log)
    catalog = TemplateCatalog()
    for spec in population.specs.values():
        catalog.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
    return AnomalyCase(
        metrics=metrics,
        templates=templates,
        logs=logs,
        catalog=catalog,
        anomaly_start=anomaly_start,
        anomaly_end=engine.now,
    )


def test_fig8_repair_case_study(benchmark):
    rng = np.random.default_rng(88)
    population = build_population(HORIZON, rng, n_businesses=8)
    truth = inject_anomaly(
        population, rng, AnomalyCategory.ROW_LOCK, ONSET, HORIZON,
        target_rate=(30.0, 40.0), lock_hold_ms=(200.0, 300.0),
    )
    generator = WorkloadGenerator(population)
    instance = DatabaseInstance(schema=population.schema, cpu_cores=16, seed=9)
    engine = instance.start(generator)

    # Phase 1-2: baseline, then the anomaly develops.
    engine.run(THROTTLE_ON)

    # Phase 3: the user manually throttles the top SQL by response time.
    # In the paper's case that Top-1 SQL was an affected H-SQL, not the
    # root; we script the same situation by taking the top *victim* (the
    # root itself may or may not top the RT page, depending on the draw).
    case = _build_case(engine, population, ONSET)
    lo, hi = case.anomaly_indices()
    top_rt_id = max(
        (sid for sid in case.sql_ids if sid not in truth.r_sql_ids),
        key=lambda sid: case.templates.total_response_time(sid).values[lo:hi].sum(),
    )
    instance.throttle(top_rt_id, factor=0.05, start=THROTTLE_ON, end=THROTTLE_OFF)
    engine.run(THROTTLE_OFF - engine.now)

    # Phase 4: throttle lifted — the anomaly reappears.
    engine.run(PINSQL_AT - engine.now)

    # Phase 5: PinSQL pinpoints the R-SQL; query optimization executes.
    case = _build_case(engine, population, ONSET)
    analysis = PinSQL().analyze(case)
    r_sql = analysis.rsql_ids[0]
    action = plan_optimization(case, r_sql)
    spec = population.specs[r_sql]
    instance.apply_optimization(spec, action.rows_gain, max(action.tres_gain, 0.8))
    engine.run(HORIZON - engine.now)
    result = instance.finish()

    session = result.metrics.active_session.values
    phases = {
        "baseline": session[120:ONSET - 20].mean(),
        "anomaly": session[ONSET + 120:THROTTLE_ON - 20].mean(),
        "throttled": session[THROTTLE_ON + 60:THROTTLE_OFF - 20].mean(),
        "throttle off": session[THROTTLE_OFF + 60:PINSQL_AT - 20].mean(),
        "after PinSQL": session[PINSQL_AT + 200:].mean(),
    }
    lines = [
        "Fig. 8 — repair case study (mean active session per phase)",
        f"root cause pinpointed: {r_sql} "
        f"({'correct' if r_sql in truth.r_sql_ids else 'incorrect'}); "
        f"manual throttle target was {top_rt_id} "
        f"({'an H-SQL, not the root' if top_rt_id != r_sql else 'the root itself'})",
        "",
        f"{'phase':<14}{'active session':>16}",
    ]
    for name, value in phases.items():
        lines.append(f"{name:<14}{value:>16.1f}")
    write_report("fig8_case_study", "\n".join(lines))

    # Shape checks: the paper's three observations.
    assert r_sql in truth.r_sql_ids
    assert phases["anomaly"] > 3 * phases["baseline"]
    # (2) throttling the Top-SQL helps but does not restore normality.
    assert phases["throttled"] < phases["anomaly"]
    assert phases["throttled"] > 1.3 * phases["baseline"]
    # (1) switching the throttle off brings the anomaly back.
    assert phases["throttle off"] > 1.5 * phases["throttled"] or (
        phases["throttle off"] > 0.7 * phases["anomaly"]
    )
    # (3) acting on the R-SQL resolves it fundamentally.
    assert phases["after PinSQL"] < 2.0 * phases["baseline"]

    benchmark(lambda: PinSQL().analyze(case))
