"""Telemetry overhead — instrumented vs bare ``PinSQL.analyze``.

The paper's Table IV argues the collection overhead on the observed
database is negligible; this benchmark makes the same argument for our
self-telemetry: the span/histogram instrumentation on the diagnosis
pipeline must cost < 5% of the uninstrumented wall-clock.
"""

import time

from repro.core import PinSQL
from repro.telemetry import MetricsRegistry, Tracer

from benchmarks.conftest import write_json, write_report


def _best_of(fn, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_telemetry_overhead(corpus, benchmark):
    registry = MetricsRegistry()
    enabled = PinSQL(tracer=Tracer(registry=registry))
    disabled = PinSQL(tracer=Tracer(enabled=False))
    cases = [lc.case for lc in corpus[:8]]
    for case in cases:  # warm both paths
        enabled.analyze(case)
        disabled.analyze(case)

    lines = [
        "Telemetry overhead — PinSQL.analyze() instrumented vs bare",
        f"{'case':<8} {'bare':>10} {'instrumented':>13} {'overhead':>9}",
    ]
    total_on = total_off = 0.0
    for i, case in enumerate(cases):
        t_on = _best_of(lambda c=case: enabled.analyze(c))
        t_off = _best_of(lambda c=case: disabled.analyze(c))
        total_on += t_on
        total_off += t_off
        lines.append(
            f"{i:<8} {t_off * 1e3:9.2f}ms {t_on * 1e3:12.2f}ms "
            f"{(t_on / t_off - 1) * 100:+8.2f}%"
        )
    overall = total_on / total_off - 1
    lines.append(f"overall overhead: {overall * 100:+.2f}% (budget: +5%)")
    spans = registry.get("span_duration_seconds", span="pinsql.analyze")
    lines.append(f"spans recorded: {int(spans.count)} pinsql.analyze traces")
    write_report("telemetry_overhead", "\n".join(lines))
    write_json(
        "telemetry_overhead",
        {
            "cases": len(cases),
            "bare_seconds": total_off,
            "instrumented_seconds": total_on,
            "overhead_fraction": overall,
            "budget_fraction": 0.05,
            "spans_recorded": int(spans.count),
        },
    )

    assert overall < 0.05, f"telemetry overhead {overall * 100:.2f}% exceeds 5%"

    benchmark(lambda: enabled.analyze(cases[0]))
