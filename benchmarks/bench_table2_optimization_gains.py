"""Table II — long-term gains of query optimization on R-SQLs vs slow SQLs.

Regenerates the comparison of paper Section VIII-E: optimization
suggestions produced for PinSQL's R-SQLs against suggestions produced by
a classic slow-SQL detector (the template with the worst average
response time).  For every case the targeted template's average
``tres`` and ``#examined_rows`` per query are measured in an
observation window before and after the optimization executes; the gain
is the fractional reduction.

Paper reference (Table II): optimizing R-SQLs gains ~92 % tres / ~91 %
examined rows, about 10 points above slow-SQL-driven optimization
(82.6 % / 81.6 %) — slow SQLs are often only slow because *other* SQLs
slow them down, so fixing them helps less.
"""

import numpy as np

from repro.collection import LogStore, aggregate_query_log
from repro.core import AnomalyCase, PinSQL, plan_optimization
from repro.dbsim import DatabaseInstance
from repro.sqltemplate import TemplateCatalog
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)

from benchmarks.conftest import write_report

ONSET = 500
DIAGNOSE_AT = 900
HORIZON = 1500
MEASURE = 300  # seconds of before/after observation


def _avg_metrics(query_log, sql_id, t0, t1):
    """Average per-query tres and examined rows within [t0, t1)."""
    tq = query_log.queries_of(sql_id)
    mask = (tq.arrive_ms >= t0 * 1000) & (tq.arrive_ms < t1 * 1000)
    if not mask.any():
        return None
    return float(tq.response_ms[mask].mean()), float(tq.examined_rows[mask].mean())


def _run_one(seed: int, category: AnomalyCategory, selector: str):
    """Simulate one case, optimize the selected template, return gains."""
    rng = np.random.default_rng(seed)
    population = build_population(HORIZON, rng, n_businesses=6)
    inject_anomaly(population, rng, category, ONSET, HORIZON)
    generator = WorkloadGenerator(population)
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=seed)
    engine = instance.start(generator)
    engine.run(DIAGNOSE_AT)

    metrics, _, _ = engine.monitor.finalize(engine.query_log)
    templates = aggregate_query_log(engine.query_log, 0, engine.now)
    logs = LogStore()
    logs.ingest_query_log(engine.query_log)
    catalog = TemplateCatalog()
    for spec in population.specs.values():
        catalog.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
    case = AnomalyCase(
        metrics=metrics, templates=templates, logs=logs, catalog=catalog,
        anomaly_start=ONSET, anomaly_end=engine.now,
    )

    if selector == "rsql":
        target = PinSQL().analyze(case).rsql_ids[0]
    else:
        # Slow-SQL detector: worst average response time in the window,
        # among templates with non-trivial traffic.
        lo, hi = case.anomaly_indices()
        def avg_tres(sid):
            execs = case.templates.executions(sid).values[lo:hi].sum()
            if execs < 30:
                return 0.0
            return case.templates.total_response_time(sid).values[lo:hi].sum() / execs
        target = max(case.sql_ids, key=avg_tres)

    before = _avg_metrics(engine.query_log, target, DIAGNOSE_AT - MEASURE, DIAGNOSE_AT)
    action = plan_optimization(case, target)
    instance.apply_optimization(population.specs[target], action.rows_gain, action.tres_gain)
    engine.run(HORIZON - engine.now)
    result = instance.finish()
    after = _avg_metrics(result.query_log, target, HORIZON - MEASURE, HORIZON)
    if before is None or after is None:
        return None
    tres_gain = 100.0 * (1.0 - after[0] / max(before[0], 1e-9))
    rows_gain = 100.0 * (1.0 - after[1] / max(before[1], 1e-9))
    return tres_gain, rows_gain


def test_table2_optimization_gains(corpus, benchmark):
    categories = (AnomalyCategory.POOR_SQL, AnomalyCategory.ROW_LOCK)
    groups = {"R-SQLs": [], "Slow SQLs": []}
    for i in range(6):
        category = categories[i % 2]
        for name, selector in (("R-SQLs", "rsql"), ("Slow SQLs", "slow")):
            gains = _run_one(7000 + 31 * i, category, selector)
            if gains is not None:
                groups[name].append(gains)

    lines = [
        "Table II — averaged optimization gains per metric",
        f"{'Group':<12}{'#Optimized':>11}{'tres gain %':>13}{'rows gain %':>13}",
    ]
    summary = {}
    for name, gains in groups.items():
        tres = float(np.mean([g[0] for g in gains]))
        rows = float(np.mean([g[1] for g in gains]))
        summary[name] = (tres, rows)
        lines.append(f"{name:<12}{len(gains):>11}{tres:>13.2f}{rows:>13.2f}")
    write_report("table2_optimization_gains", "\n".join(lines))

    # Shape check (paper Table II): R-SQL-driven optimization beats the
    # slow-SQL detector.  The decisive metric is the response-time gain —
    # a slow SQL is often slow because *other* SQLs block it, so fixing
    # it helps less; its examined-rows gain can still be large (blocked
    # reporting scans are genuinely optimizable), hence the combined-mean
    # comparison for the second check.
    assert summary["R-SQLs"][0] > summary["Slow SQLs"][0]
    assert np.mean(summary["R-SQLs"]) > np.mean(summary["Slow SQLs"])
    assert summary["R-SQLs"][0] > 60.0
    assert summary["R-SQLs"][1] > 60.0

    case = corpus[0].case
    target = case.sql_ids[0]
    benchmark(lambda: plan_optimization(case, target))
