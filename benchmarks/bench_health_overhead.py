"""Health-sweep overhead on fleet diagnosis throughput.

The sweeper rides along with the fleet service's housekeeping: every
``sweep_interval_s`` of stream time it aggregates each instance's
window, runs the check suite and persists findings.  Like the incident
recorder and the telemetry layer, the "automated DBA" must stay close
to free — draining the same fleet workload with scheduled sweeps
enabled must cost < 5% extra wall clock versus the bare service.

The replay is chunked chronologically (as the lead-time harness does),
so the sweeper actually fires repeatedly mid-run instead of once at
drain time — the measured overhead includes every sweep the production
cadence would run.
"""

from __future__ import annotations

import tempfile
import time

from repro.collection import Broker
from repro.collection.collector import METRIC_TOPIC, QUERY_TOPIC
from repro.collection.stream import instance_topic
from repro.fleet import FleetConfig, FleetDiagnosisService, ServiceConfig
from repro.health import FindingsStore, HealthConfig, HealthSweeper

from benchmarks.conftest import _cached, write_json, write_report
from benchmarks.bench_fleet_throughput import DURATION, N_INSTANCES, _simulate_feeds

CHUNK_S = 60
SWEEP_INTERVAL_S = 120
SERVICE_CONFIG = ServiceConfig(delta_start_s=300, detector_window_s=DURATION)


def _record_time(value: dict) -> int:
    return int(value.get("second", value.get("timestamp", 0)))


def _chunked_drain(feeds, sweeper: HealthSweeper | None) -> tuple[float, int]:
    """Replay chronologically in chunks; (seconds, diagnoses)."""
    broker = Broker()
    service = FleetDiagnosisService(
        broker,
        FleetConfig(service=SERVICE_CONFIG, workers=2, prune_broker=True),
        sweeper=sweeper,
    )
    ordered = {}
    for feed in feeds:
        service.register_instance(feed.instance_id)
        ordered[feed.instance_id] = (
            sorted(feed.query_records, key=lambda kv: _record_time(kv[1])),
            sorted(feed.metric_records, key=lambda kv: _record_time(kv[1])),
        )
    cursors = {iid: [0, 0] for iid in ordered}
    t0 = time.perf_counter()
    try:
        for chunk_end in range(CHUNK_S, DURATION + CHUNK_S, CHUNK_S):
            for instance_id, (queries, metrics) in ordered.items():
                qi, mi = cursors[instance_id]
                while qi < len(queries) and _record_time(queries[qi][1]) < chunk_end:
                    key, value = queries[qi]
                    broker.publish(
                        instance_topic(QUERY_TOPIC, instance_id), key, value
                    )
                    qi += 1
                while mi < len(metrics) and _record_time(metrics[mi][1]) < chunk_end:
                    key, value = metrics[mi]
                    broker.publish(
                        instance_topic(METRIC_TOPIC, instance_id), key, value
                    )
                    mi += 1
                cursors[instance_id] = [qi, mi]
            while service.lag > 0:
                service.step()
        diagnoses = service.run_until_drained()
    finally:
        service.close()
    return time.perf_counter() - t0, len(diagnoses)


def test_health_sweep_overhead():
    feeds = _cached(f"fleet_feeds_v2_{N_INSTANCES}x{DURATION}", _simulate_feeds)[:4]

    def sweeper_for(tmp):
        return HealthSweeper(
            store=FindingsStore(tmp),
            config=HealthConfig(
                sweep_window_s=300, sweep_interval_s=SWEEP_INTERVAL_S
            ),
        )

    # Warm both paths once (imports, JIT-ish numpy warmup, detector state).
    with tempfile.TemporaryDirectory() as tmp:
        _chunked_drain(feeds, None)
        _chunked_drain(feeds, sweeper_for(tmp))

    repeats = 3
    bare = sweeping = float("inf")
    sweeps = findings = 0
    for _ in range(repeats):
        t_off, n_off = _chunked_drain(feeds, None)
        bare = min(bare, t_off)
        with tempfile.TemporaryDirectory() as tmp:
            sweeper = sweeper_for(tmp)
            t_on, n_on = _chunked_drain(feeds, sweeper)
            sweeping = min(sweeping, t_on)
            sweeps = len(sweeper.sweeps)
            findings = sum(len(s.findings) for s in sweeper.sweeps)
            assert n_on == n_off, "sweeping must not change diagnosis output"

    overhead = sweeping / bare - 1
    lines = [
        "Health-sweep overhead — fleet drain with vs without the sweeper",
        f"({len(feeds)} instances, {DURATION}s stream, sweep every "
        f"{SWEEP_INTERVAL_S}s → {sweeps} sweeps, {findings} findings)",
        "",
        f"{'mode':<12} {'seconds':>8}",
        f"{'bare':<12} {bare:>8.2f}",
        f"{'sweeping':<12} {sweeping:>8.2f}",
        "",
        f"overhead: {overhead * 100:+.2f}% (budget: +5%)",
        f"per sweep: {(sweeping - bare) / max(sweeps, 1) * 1e3:.1f} ms",
    ]
    write_report("health_overhead", "\n".join(lines))
    write_json(
        "health_overhead",
        {
            "instances": len(feeds),
            "duration_s": DURATION,
            "sweep_interval_s": SWEEP_INTERVAL_S,
            "sweeps": sweeps,
            "findings": findings,
            "bare_seconds": bare,
            "sweeping_seconds": sweeping,
            "overhead_fraction": overhead,
            "budget_fraction": 0.05,
        },
    )

    assert sweeps >= 3, "scheduled sweeps must fire during the chunked replay"
    assert overhead < 0.05, (
        f"health sweep overhead {overhead * 100:.2f}% exceeds the 5% budget"
    )
