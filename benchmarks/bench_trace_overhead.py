"""Trace-propagation overhead — fleet drain with contexts on vs off.

Distributed tracing adds blake2b id minting on root spans, trace-header
stamping at ``publish_block`` time, and remote-parent adoption on block
ingest.  The span/histogram layer itself is already budgeted by
``bench_telemetry_overhead``; this benchmark isolates the *marginal*
cost of the distributed-identity layer by toggling the process-wide
propagation switch around an otherwise identical worker drain
(:func:`~repro.fleet.execute_work_item` over one columnar feed).  The
budget is < 5% of the propagation-off wall-clock.
"""

import time

import numpy as np

from repro.collection import Broker, MetricsCollector, QueryLogCollector
from repro.dbsim import DatabaseInstance
from repro.fleet import WorkItem, block_feed_from_broker, execute_work_item
from repro.telemetry.tracing import (
    set_trace_propagation,
    trace_propagation_enabled,
)
from repro.workload import WorkloadGenerator, build_population

from benchmarks.conftest import write_json, write_report

#: Long enough that the drain dominates setup, short enough to stay
#: a few seconds per repeat.
DURATION = 240


def _build_feed():
    """One instance's stream, collected as stamped columnar blocks."""
    rng = np.random.default_rng(8)
    population = build_population(DURATION, rng, n_businesses=4)
    db = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=8)
    run = db.run(WorkloadGenerator(population), duration=DURATION)
    broker = Broker()
    QueryLogCollector(broker, instance_id="db-bt").collect_blocks(run.query_log)
    MetricsCollector(broker, instance_id="db-bt").collect_blocks(run.metrics)
    return block_feed_from_broker(broker, "db-bt")


def _best_of(fn, repeats: int = 7, inner: int = 10) -> float:
    """Best-of-``repeats`` timing of ``inner`` back-to-back calls.

    One drain is milliseconds, so single-call timings are too noisy for
    a 5% budget; batching amortises the scheduler jitter.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - t0) / inner)
    return best


def test_trace_propagation_overhead(benchmark):
    assert trace_propagation_enabled(), "benchmark expects the default state"
    # Blocks are stamped at build time (propagation on) so both arms
    # decode identical frames; only the drain-side propagation differs.
    feed = _build_feed()
    drain = lambda: execute_work_item(WorkItem(feed=feed))  # noqa: E731
    try:
        drain()  # warm caches on the default (on) path
        t_on = _best_of(drain)
        set_trace_propagation(False)
        drain()
        t_off = _best_of(drain)
    finally:
        set_trace_propagation(True)
    overhead = t_on / t_off - 1
    lines = [
        "Trace-propagation overhead — execute_work_item drain, contexts on vs off",
        f"{'propagation off':<18} {t_off * 1e3:10.2f}ms",
        f"{'propagation on':<18} {t_on * 1e3:10.2f}ms",
        f"overhead: {overhead * 100:+.2f}% (budget: +5%)",
    ]
    write_report("trace_overhead", "\n".join(lines))
    write_json(
        "trace_overhead",
        {
            "duration_s": DURATION,
            "query_blocks": len(feed.query_payloads),
            "metric_blocks": len(feed.metric_payloads),
            "off_seconds": t_off,
            "on_seconds": t_on,
            "overhead_fraction": overhead,
            "budget_fraction": 0.05,
        },
    )

    assert overhead < 0.05, (
        f"trace propagation overhead {overhead * 100:.2f}% exceeds 5%"
    )

    benchmark(drain)
