"""Table III — individual active-session estimation quality.

Regenerates the case study of paper Section VIII-F: the sum of estimated
per-template active sessions is compared against the instance's real
(SHOW STATUS-sampled) active session, under three methods:

* Estimate by RT       — total response time per second;
* Estimate w/o buckets — expectation over the whole second;
* Estimate (K=10)      — bucketized estimation.

Paper reference (Table III): bucketized estimation reaches Pearson 0.96
(vs 0.92 without buckets and 0.54 by RT) and the lowest MSE, with ~1.7×
correlation improvement over the RT baseline.
"""

import numpy as np

from repro.collection import LogStore
from repro.core import SessionEstimationMode, SessionEstimator
from repro.dbsim import DatabaseInstance
from repro.timeseries import pearson
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)

from benchmarks.conftest import write_report


def _busy_trace(seed: int = 31, duration: int = 900):
    """An anomaly trace — the regime the estimator is actually used in.

    The session estimator runs when an anomaly was detected, so the
    reference evaluation (as in the paper's case study) covers a window
    with real session dynamics, not an idle steady state.
    """
    rng = np.random.default_rng(seed)
    population = build_population(duration, rng, n_businesses=10)
    inject_anomaly(
        population, rng, AnomalyCategory.ROW_LOCK, duration // 2, duration
    )
    instance = DatabaseInstance(schema=population.schema, cpu_cores=16, seed=seed)
    result = instance.run(WorkloadGenerator(population), duration=duration)
    logs = LogStore()
    logs.ingest_query_log(result.query_log)
    sql_ids = result.query_log.sql_ids
    return logs, sql_ids, result


def test_table3_estimation_quality(benchmark):
    logs, sql_ids, result = _busy_trace()
    observed = result.metrics.active_session

    rows = []
    quality = {}
    for label, mode in (
        ("Estimate By RT", SessionEstimationMode.RESPONSE_TIME),
        ("Estimate w/o buckets", SessionEstimationMode.NO_BUCKETS),
        ("Estimate (K=10)", SessionEstimationMode.BUCKETS),
    ):
        estimator = SessionEstimator(mode, buckets=10)
        estimate = estimator.estimate(logs, sql_ids, observed)
        corr = pearson(estimate.total.values, observed.values)
        mse = float(np.mean((estimate.total.values - observed.values) ** 2))
        quality[label] = (corr, mse)
        rows.append(f"{label:<22} {corr:10.2f} {mse:14.2f}")

    report = "\n".join(
        [
            "Table III — estimated active session vs SHOW STATUS ground truth",
            f"{'Method':<22} {'Pearson':>10} {'MSE':>14}",
            *rows,
        ]
    )
    write_report("table3_session_estimation", report)

    # Shape checks against the paper's Table III: buckets > no-buckets >
    # by-RT on correlation, with the bucketized MSE the lowest.
    corr_rt, mse_rt = quality["Estimate By RT"]
    corr_nb, mse_nb = quality["Estimate w/o buckets"]
    corr_k, mse_k = quality["Estimate (K=10)"]
    assert corr_k > corr_nb > corr_rt
    assert corr_nb >= 0.8
    assert corr_k >= 0.9
    assert mse_k < mse_nb < mse_rt
    assert mse_k < 0.2 * mse_rt  # an order-of-magnitude error reduction

    estimator = SessionEstimator(SessionEstimationMode.BUCKETS, buckets=10)
    benchmark(lambda: estimator.estimate(logs, sql_ids, observed))
