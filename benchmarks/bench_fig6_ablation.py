"""Fig. 6 — ablation study on identifying R-SQLs and H-SQLs.

Regenerates the paper's ablations by disabling one PinSQL component at a
time (every variant is a :class:`PinSQLConfig` flag, not a code fork):

R-SQL side: w/o cumulative threshold, w/o direct-cause SQL ranking,
w/o history-trend verification.  H-SQL side: w/o weighted final score,
w/o estimate session, w/o scale-level / trend-level / scale-trend-level
scores.

Paper reference (Fig. 6): the full system is best; removing the session
estimation costs H-SQL H@1 most (−31.5 pts); each level score matters;
H@5 stays comparatively stable.
"""

from repro.core import PinSQL, PinSQLConfig
from repro.evaluation import evaluate_pinsql

from benchmarks.conftest import write_report

R_ABLATIONS = (
    "cumulative_threshold",
    "direct_cause_ranking",
    "history_verification",
)
H_ABLATIONS = (
    "weighted_final_score",
    "estimate_session",
    "scale_score",
    "trend_score",
    "scale_trend_score",
)


def test_fig6_ablation(corpus, benchmark):
    full = evaluate_pinsql(PinSQL(), corpus, name="PinSQL")
    reports = {"PinSQL": full}
    for ablation in (*R_ABLATIONS, *H_ABLATIONS):
        config = PinSQLConfig().without(ablation)
        reports[f"w/o {ablation}"] = evaluate_pinsql(
            PinSQL(config), corpus, name=f"w/o {ablation}"
        )

    lines = ["Fig. 6 — ablation on identifying R-SQLs and H-SQLs", ""]
    lines.append("(a) R-SQLs")
    lines.append(f"{'Variant':<28} {'H@1':>6} {'H@5':>6} {'MRR':>6}")
    for name in ("PinSQL", *(f"w/o {a}" for a in R_ABLATIONS)):
        s = reports[name].r_summary
        lines.append(f"{name:<28} {s.hits_at_1:>6.1f} {s.hits_at_5:>6.1f} {s.mrr:>6.2f}")
    lines.append("")
    lines.append("(b) H-SQLs")
    lines.append(f"{'Variant':<28} {'H@1':>6} {'H@5':>6} {'MRR':>6}")
    for name in ("PinSQL", *(f"w/o {a}" for a in H_ABLATIONS)):
        s = reports[name].h_summary
        lines.append(f"{name:<28} {s.hits_at_1:>6.1f} {s.hits_at_5:>6.1f} {s.mrr:>6.2f}")
    write_report("fig6_ablation", "\n".join(lines))

    # Shape checks against the paper's Fig. 6: the full system is never
    # beaten by an ablation by more than noise, and removing components
    # costs real accuracy overall.  (Which single component dominates
    # differs between corpora: the paper's biggest H-side hit is the
    # session estimation, ours is the scale level — see EXPERIMENTS.md.)
    full_r = reports["PinSQL"].r_summary
    full_h = reports["PinSQL"].h_summary
    for ablation in R_ABLATIONS:
        assert reports[f"w/o {ablation}"].r_summary.hits_at_1 <= full_r.hits_at_1 + 7
    for ablation in H_ABLATIONS:
        assert reports[f"w/o {ablation}"].h_summary.hits_at_1 <= full_h.hits_at_1 + 7
    r_drops = [
        full_r.hits_at_1 - reports[f"w/o {a}"].r_summary.hits_at_1
        for a in R_ABLATIONS
    ]
    h_drops = [
        full_h.hits_at_1 - reports[f"w/o {a}"].h_summary.hits_at_1
        for a in H_ABLATIONS
    ]
    assert max(r_drops) > 0  # at least one R-side component is load-bearing
    assert max(h_drops) > 0  # at least one H-side component is load-bearing
    # Estimated sessions must not be worse than the RT proxy (modulo a
    # single-case wobble on a 32-case corpus).
    wo_est = reports["w/o estimate_session"].h_summary
    assert wo_est.hits_at_1 <= full_h.hits_at_1 + 100.0 / len(corpus) + 1e-9

    case = corpus[0].case
    ablated = PinSQL(PinSQLConfig().without("estimate_session"))
    benchmark(lambda: ablated.analyze(case))
