"""Hyperparameter sensitivity — ablation benches for the design choices.

Not a paper artifact: sweeps the three central hyperparameters the paper
fixes by fiat (Implementation Details, Section VIII-A) and checks the
defaults sit in sane regions:

* ks — the sigmoid smooth factor of the trend-level weighting
  (ks → 0 ≈ window-only correlation; ks → ∞ ≈ plain Pearson);
* τ — the clustering correlation threshold;
* K — the number of session-estimation buckets per second.
"""

from repro.core import PinSQL, PinSQLConfig
from repro.evaluation import evaluate_pinsql

from benchmarks.conftest import write_report


def _r_h1(corpus, config: PinSQLConfig) -> float:
    return evaluate_pinsql(PinSQL(config), corpus).r_summary.hits_at_1


def test_sensitivity_sweeps(corpus, benchmark):
    lines = ["Hyperparameter sensitivity — PinSQL R-SQL H@1 (%)", ""]

    ks_values = (1.0, 10.0, 30.0, 100.0, 1e6)
    ks_scores = {ks: _r_h1(corpus, PinSQLConfig(smooth_factor=ks)) for ks in ks_values}
    lines.append("smooth factor ks (paper default 30):")
    for ks, score in ks_scores.items():
        marker = "  <- default" if ks == 30.0 else ""
        lines.append(f"  ks={ks:<10g} H@1={score:5.1f}{marker}")

    tau_values = (0.5, 0.7, 0.8, 0.9, 0.99)
    tau_scores = {
        tau: _r_h1(corpus, PinSQLConfig(cluster_threshold=tau)) for tau in tau_values
    }
    lines.append("")
    lines.append("clustering threshold τ (paper default 0.8):")
    for tau, score in tau_scores.items():
        marker = "  <- default" if tau == 0.8 else ""
        lines.append(f"  τ={tau:<11g} H@1={score:5.1f}{marker}")

    k_values = (1, 5, 10, 20)
    k_scores = {
        k: _r_h1(corpus, PinSQLConfig(session_buckets=k)) for k in k_values
    }
    lines.append("")
    lines.append("session buckets K (paper default 10):")
    for k, score in k_scores.items():
        marker = "  <- default" if k == 10 else ""
        lines.append(f"  K={k:<11d} H@1={score:5.1f}{marker}")

    write_report("sensitivity", "\n".join(lines))

    # The defaults must be within one case of the best swept value —
    # i.e. the paper's choices are not knife-edge artifacts.
    slack = 100.0 / len(corpus) + 1e-9
    assert ks_scores[30.0] >= max(ks_scores.values()) - 2 * slack
    assert tau_scores[0.8] >= max(tau_scores.values()) - 2 * slack
    assert k_scores[10] >= max(k_scores.values()) - 2 * slack

    case = corpus[0].case
    benchmark(lambda: PinSQL(PinSQLConfig(smooth_factor=30.0)).analyze(case))
