"""Table I — overall R-SQL / H-SQL identification results.

Regenerates the paper's main comparison: Hits@1, Hits@5, MRR and running
time of Top-RT / Top-ER / Top-EN / Top-All and PinSQL, on both the
R-SQL and H-SQL ground truths of the synthetic ADAC corpus.

Paper reference (Table I): PinSQL R-SQL H@1 = 80.4 vs Top-All 33.3;
H-SQL H@1 = 97.6 vs Top-All 66.1; Top-RT is the best single baseline and
Top-EN the worst; PinSQL runs in seconds, baselines in milliseconds.
"""

from repro.core import GrangerRanker, PinSQL
from repro.evaluation import evaluate_competition, evaluate_ranker

from benchmarks.conftest import write_report

HEADER = (
    f"{'Method':<10} {'R-H@1':>6} {'R-H@5':>6} {'R-MRR':>6} {'R-Time':>9}   "
    f"{'H-H@1':>6} {'H-H@5':>6} {'H-MRR':>6} {'H-Time':>9}"
)


def test_table1_overall_results(corpus, benchmark):
    reports = evaluate_competition(corpus)
    lines = ["Table I — identifying R-SQLs and H-SQLs", HEADER]
    lines += [rep.table_row() for rep in reports]
    # Extension row: the linear autoregressive (Granger) method the paper
    # discusses but skips — included to substantiate that it does not
    # pinpoint R-SQLs at template scale (no assertion depends on it).
    granger = evaluate_ranker(GrangerRanker(), corpus)
    lines.append(granger.table_row())
    pinsql_report = next(rep for rep in reports if rep.name == "PinSQL")
    lines.append("")
    lines.append("PinSQL R-SQL accuracy by anomaly category:")
    for category, summary in pinsql_report.r_summary_by_category().items():
        lines.append(f"  {category:<16} {summary}")
    write_report("table1_overall", "\n".join(lines))

    by_name = {rep.name: rep for rep in reports}
    pinsql, top_all = by_name["PinSQL"], by_name["Top-All"]
    # Shape checks against the paper's Table I.
    assert pinsql.r_summary.hits_at_1 > top_all.r_summary.hits_at_1 + 10
    # H-SQLs: PinSQL must match the best *single* baseline (Top-All is a
    # per-case oracle over three rankings and can exceed any one method
    # by a case or two).
    best_single_h = max(
        by_name[n].h_summary.hits_at_1 for n in ("Top-RT", "Top-ER", "Top-EN")
    )
    assert pinsql.h_summary.hits_at_1 >= best_single_h - 3.2
    assert pinsql.h_summary.hits_at_1 >= 90.0
    assert pinsql.r_summary.mrr > top_all.r_summary.mrr
    assert by_name["Top-RT"].h_summary.hits_at_1 > by_name["Top-EN"].h_summary.hits_at_1
    assert by_name["Top-EN"].r_summary.hits_at_1 <= by_name["Top-RT"].r_summary.hits_at_1
    # Baselines answer in milliseconds; PinSQL in (fractions of) seconds,
    # far below the anomaly durations it diagnoses.
    assert by_name["Top-RT"].mean_r_time < 0.05
    assert pinsql.mean_r_time < min(lc.case.anomaly_duration for lc in corpus)

    # Benchmark the full PinSQL analysis on a representative case.
    case = corpus[0].case
    benchmark(lambda: PinSQL().analyze(case))
