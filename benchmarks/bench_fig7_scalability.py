"""Fig. 7 — scalability of PinSQL's computing time.

Regenerates the paper's two scalability sweeps: computing time as a
function of (a) the number of SQL templates and (b) the anomaly-period
length.

Paper reference (Fig. 7): even the slowest cases stay under a minute;
the running time correlates with the anomaly-period length, and shows no
clear relationship with the template count.
"""

import time

import numpy as np

from repro.core import PinSQL
from repro.evaluation import CorpusConfig, generate_case
from repro.timeseries import pearson
from repro.workload import AnomalyCategory

from benchmarks.conftest import write_report


def _measure(cfg: CorpusConfig, seed: int) -> tuple[int, int, float]:
    labeled = generate_case(seed, cfg, category=AnomalyCategory.ROW_LOCK)
    pinsql = PinSQL()
    t0 = time.perf_counter()
    pinsql.analyze(labeled.case)
    elapsed = time.perf_counter() - t0
    # The analysed window is the whole collected period [ts, te); the
    # detected anomaly sub-window wobbles and is not the size driver.
    return len(labeled.case.sql_ids), labeled.case.duration, elapsed


def test_fig7_scalability(benchmark):
    # Sweep (a): template count grows, anomaly length held constant.
    template_points = []
    for i, n_biz in enumerate((4, 8, 16, 28)):
        cfg = CorpusConfig(
            delta_start_s=600,
            anomaly_length_s=(300, 301),
            n_businesses=(n_biz, n_biz),
            cpu_cores_choices=(16,),
        )
        template_points.append(_measure(cfg, seed=900 + i))

    # Sweep (b): anomaly length grows, template count held constant.
    length_points = []
    for i, length in enumerate((300, 600, 1200, 2400)):
        cfg = CorpusConfig(
            delta_start_s=600,
            anomaly_length_s=(length, length + 1),
            n_businesses=(8, 8),
            cpu_cores_choices=(16,),
        )
        length_points.append(_measure(cfg, seed=950 + i))

    lines = ["Fig. 7 — PinSQL computing time", "", "(a) varying number of templates"]
    lines.append(f"{'#templates':>12} {'window_s':>10} {'time_s':>8}")
    for n, dur, t in template_points:
        lines.append(f"{n:>12} {dur:>10} {t:>8.2f}")
    lines += ["", "(b) varying anomaly-period length"]
    lines.append(f"{'#templates':>12} {'window_s':>10} {'time_s':>8}")
    for n, dur, t in length_points:
        lines.append(f"{n:>12} {dur:>10} {t:>8.2f}")
    write_report("fig7_scalability", "\n".join(lines))

    # Shape checks against the paper's Fig. 7.
    times = [t for _, _, t in template_points + length_points]
    assert max(times) < 60.0  # even the slowest case stays under a minute
    lengths = np.array([dur for _, dur, _ in length_points], dtype=float)
    length_times = np.array([t for _, _, t in length_points])
    assert pearson(lengths, length_times) > 0.7  # grows with anomaly length
    assert length_times[-1] > length_times[0]

    cfg = CorpusConfig(delta_start_s=600, anomaly_length_s=(300, 301),
                       n_businesses=(8, 8), cpu_cores_choices=(16,))
    labeled = generate_case(999, cfg, category=AnomalyCategory.ROW_LOCK)
    benchmark(lambda: PinSQL().analyze(labeled.case))
