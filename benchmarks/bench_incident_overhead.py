"""Incident-recorder overhead on the diagnosis hot path.

The flight recorder rides along with every diagnosis; like the
telemetry benchmark it must stay invisible: flattening the evidence
chain and appending the JSONL line must cost < 5% of the diagnosis
itself (analysis + typing + repair planning + report rendering).
"""

import tempfile
import time

from repro.core import PinSQL, RepairEngine
from repro.core.report import render_report
from repro.detection.case_builder import DetectedAnomaly
from repro.detection.typing import classify_case
from repro.fleet.engine import Diagnosis
from repro.incidents import IncidentRecorder, IncidentStore

from benchmarks.conftest import write_json, write_report


def _best_of(fn, repeats: int = 9) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _diagnose(pinsql, repair, labeled) -> Diagnosis:
    """The per-anomaly hot path an engine runs once an event fires."""
    case = labeled.case
    result = pinsql.analyze(case)
    verdict = classify_case(case)
    plan = repair.plan(case, result)
    report = render_report(case, result, plan=plan)
    return Diagnosis(
        anomaly=DetectedAnomaly(
            start=case.anomaly_start, end=case.anomaly_end,
            types=("active_session_anomaly",),
        ),
        case=case,
        result=result,
        report=report,
        plan=plan,
        executed=False,
        verdict=verdict,
        instance_id="bench",
    )


def test_incident_recorder_overhead(corpus, benchmark, tmp_path_factory):
    pinsql = PinSQL()
    repair = RepairEngine()
    cases = corpus[:8]
    with tempfile.TemporaryDirectory() as tmp:
        recorder = IncidentRecorder(IncidentStore(tmp, max_segment_bytes=1 << 22))
        for labeled in cases:  # warm both paths
            recorder.record(_diagnose(pinsql, repair, labeled))

        lines = [
            "Incident recorder overhead — diagnosis hot path with vs without",
            f"{'case':<8} {'bare':>10} {'recording':>11} {'overhead':>9}",
        ]
        total_on = total_off = 0.0
        for i, labeled in enumerate(cases):
            t_off = _best_of(lambda lc=labeled: _diagnose(pinsql, repair, lc))
            t_on = _best_of(
                lambda lc=labeled: recorder.record(_diagnose(pinsql, repair, lc))
            )
            total_on += t_on
            total_off += t_off
            lines.append(
                f"{i:<8} {t_off * 1e3:9.2f}ms {t_on * 1e3:10.2f}ms "
                f"{(t_on / t_off - 1) * 100:+8.2f}%"
            )
        overall = total_on / total_off - 1
        lines.append(f"overall overhead: {overall * 100:+.2f}% (budget: +5%)")
        store = recorder.store
        lines.append(
            f"store after run: {store.record_count} records, "
            f"{store.total_bytes / 1024:.0f} KiB in {store.segment_count} segment(s)"
        )
        write_report("incident_overhead", "\n".join(lines))
        write_json(
            "incident_overhead",
            {
                "cases": len(cases),
                "bare_seconds": total_off,
                "recording_seconds": total_on,
                "overhead_fraction": overall,
                "budget_fraction": 0.05,
                "records": store.record_count,
                "store_bytes": store.total_bytes,
                "segments": store.segment_count,
            },
        )

        assert overall < 0.05, (
            f"incident recording overhead {overall * 100:.2f}% exceeds 5%"
        )

        diagnosis = _diagnose(pinsql, repair, cases[0])
        benchmark(lambda: recorder.record(diagnosis))
