"""Table IV — QPS decline under Performance Schema configurations.

Regenerates the stress test of paper Section VIII-F: a 32-thread
closed-loop workload on a 4-core instance (20 tables × 10 M rows in the
paper) under five Performance Schema configurations × three workload
flavours, reporting QPS and the decline rate versus the ``normal``
configuration.

Paper reference (Table IV): normal QPS ≈ 73 k / 42 k / 37 k for
RO / RW / WO; declines range from ~8 % (pfs) to ~30 % (pfs+con+ins).
"""

from repro.dbsim import (
    PerformanceSchemaConfig,
    StressWorkloadKind,
    run_stress_test,
)

from benchmarks.conftest import write_report

CONFIGS = (
    PerformanceSchemaConfig.normal(),
    PerformanceSchemaConfig.pfs(),
    PerformanceSchemaConfig.pfs_ins(),
    PerformanceSchemaConfig.pfs_con(),
    PerformanceSchemaConfig.pfs_con_ins(),
)

WORKLOADS = (
    StressWorkloadKind.READ_ONLY,
    StressWorkloadKind.READ_WRITE,
    StressWorkloadKind.WRITE_ONLY,
)


def test_table4_pfs_overhead(benchmark):
    results = {}
    seed = 0
    for workload in WORKLOADS:
        for config in CONFIGS:
            seed += 1
            results[(workload, config.label)] = run_stress_test(
                config, workload, threads=32, cpu_cores=4, seed=seed
            )

    lines = [
        "Table IV — QPS and decline rate under Performance Schema configs",
        f"{'Config':<14}" + "".join(f"{w.value:>22}" for w in WORKLOADS),
        f"{'':<14}" + "".join(f"{'QPS':>14}{'↓QPS%':>8}" for _ in WORKLOADS),
    ]
    for config in CONFIGS:
        row = f"{config.label:<14}"
        for workload in WORKLOADS:
            res = results[(workload, config.label)]
            base = results[(workload, "normal")]
            decline = res.decline_vs(base)
            row += f"{res.qps:14,.0f}{decline:8.2f}"
        lines.append(row)
    write_report("table4_pfs_overhead", "\n".join(lines))

    # Shape checks against the paper's Table IV.
    for workload in WORKLOADS:
        base = results[(workload, "normal")]
        pfs = results[(workload, "pfs")].decline_vs(base)
        full = results[(workload, "pfs+con+ins")].decline_vs(base)
        assert 5.0 < pfs < 20.0
        assert 20.0 < full < 40.0
        assert full > pfs
    ro = results[(StressWorkloadKind.READ_ONLY, "normal")]
    assert 65_000 < ro.qps < 80_000  # paper: 72,983

    benchmark(
        lambda: run_stress_test(
            PerformanceSchemaConfig.pfs_con_ins(), StressWorkloadKind.READ_WRITE
        )
    )
