"""Fleet diagnosis throughput: columnar ingest, threads, processes.

Three questions, one gated target:

1. How much faster is columnar (block) ingestion than the legacy
   per-record wire format?  Measured end-to-end through the broker —
   publish, consume, ingest into a fresh LogStore — and asserted to
   sustain at least 10× the per-record queries-ingested/s.
2. How does the thread-pooled fleet service scale as workers grow?
   (Under the GIL: it mostly doesn't — the table documents that.)
3. Does the persistent-process pool (:mod:`repro.fleet.workers`)
   actually beat threads?  Asserted (≥1.5× over the 2-thread drain at
   2 worker processes) only when the machine has cores to scale onto.

Results are written both as a human table
(``results/fleet_throughput.txt``) and machine-readable JSON
(``results/fleet_throughput.json``) for CI artifact upload and
regression diffing.  ``FLEET_BENCH_INSTANCES`` / ``FLEET_BENCH_DURATION``
shrink the corpus for smoke runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.collection import Broker, MetricsCollector, QueryLogCollector
from repro.collection.blocks import decode_block
from repro.collection.collector import QUERY_TOPIC
from repro.collection.logstore import LogStore
from repro.collection.stream import instance_topic
from repro.dbsim import DatabaseInstance
from repro.dbsim.query import SecondBatch
from repro.fleet import (
    FleetConfig,
    FleetDiagnosisService,
    ServiceConfig,
    columnarize_feed,
    feed_from_broker,
    run_sharded,
)
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)

from benchmarks.conftest import _cached, write_json, write_report

N_INSTANCES = int(os.environ.get("FLEET_BENCH_INSTANCES", "8"))
DURATION = int(os.environ.get("FLEET_BENCH_DURATION", "600"))
ONSET = int(DURATION * 2 / 3)
SERVICE_CONFIG = ServiceConfig(delta_start_s=300, detector_window_s=DURATION)


def _simulate_feeds():
    """Simulate the fleet once; returns picklable per-instance feeds."""
    broker = Broker()
    feeds = []
    for i in range(N_INSTANCES):
        instance_id = f"db-{i:02d}"
        rng = np.random.default_rng(9000 + i)
        population = build_population(DURATION, rng, n_businesses=5)
        if i % 2 == 0:
            inject_anomaly(
                population, rng, AnomalyCategory.ROW_LOCK, ONSET, DURATION,
                target_rate=(25.0, 35.0), lock_hold_ms=(300.0, 400.0),
            )
        db = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=77 + i)
        run = db.run(WorkloadGenerator(population), duration=DURATION)
        QueryLogCollector(broker, instance_id=instance_id).collect(run.query_log)
        MetricsCollector(broker, instance_id=instance_id).collect(run.metrics)
        feeds.append(feed_from_broker(broker, instance_id))
    return feeds


def _publish_feeds(feeds, broker: Broker) -> None:
    from repro.collection.collector import METRIC_TOPIC

    for feed in feeds:
        for key, value in feed.query_records:
            broker.publish(instance_topic(QUERY_TOPIC, feed.instance_id), key, value)
        for key, value in feed.metric_records:
            broker.publish(instance_topic(METRIC_TOPIC, feed.instance_id), key, value)


def _ingest_per_record(feed) -> tuple[float, int]:
    """Broker → consumer → LogStore via the legacy wire format."""
    broker = Broker()
    topic = instance_topic(QUERY_TOPIC, feed.instance_id)
    t0 = time.perf_counter()
    for key, value in feed.query_records:
        broker.publish(topic, key, value)
    consumer = broker.consumer(topic)
    store = LogStore()
    queries = 0
    for message in consumer.poll(1 << 31):
        record = message.value
        batch = SecondBatch(
            sql_id=record["sql_id"],
            arrive_ms=np.asarray(record["arrive_ms"], dtype=np.int64),
            response_ms=np.asarray(record["response_ms"], dtype=np.float64),
            examined_rows=np.asarray(record["examined_rows"], dtype=np.float64),
        )
        store.ingest_batch(batch)
        queries += len(batch)
    return time.perf_counter() - t0, queries


def _ingest_blocks(block_feed) -> tuple[float, int]:
    """Broker → consumer → LogStore via columnar block messages."""
    broker = Broker()
    topic = instance_topic(QUERY_TOPIC, block_feed.instance_id)
    t0 = time.perf_counter()
    for payload in block_feed.query_payloads:
        broker.publish_block(topic, decode_block(payload))
    consumer = broker.consumer(topic)
    store = LogStore()
    queries = 0
    for message in consumer.poll(1 << 31):
        queries += store.ingest_block(message.value)
    return time.perf_counter() - t0, queries


def _drain_with_threads(feeds, workers: int) -> tuple[float, int]:
    """Publish the feeds to a fresh broker and drain; (seconds, diagnoses)."""
    broker = Broker()
    _publish_feeds(feeds, broker)
    service = FleetDiagnosisService(
        broker,
        FleetConfig(service=SERVICE_CONFIG, workers=workers, prune_broker=True),
    )
    for feed in feeds:
        service.register_instance(feed.instance_id)
    t0 = time.perf_counter()
    diagnoses = service.run_until_drained()
    elapsed = time.perf_counter() - t0
    service.close()
    return elapsed, len(diagnoses)


def test_fleet_throughput():
    feeds = _cached(f"fleet_feeds_v2_{N_INSTANCES}x{DURATION}", _simulate_feeds)
    cores = os.cpu_count() or 1
    payload: dict = {
        "env": {"cores": cores, "n_instances": N_INSTANCES, "duration_s": DURATION},
    }

    lines = [
        "Fleet diagnosis throughput "
        f"({N_INSTANCES}-instance workload, {DURATION}s simulated, "
        f"{cores} cores available)",
        "",
    ]

    # -- columnar vs per-record ingest ---------------------------------
    record_s = record_q = block_s = block_q = 0.0
    block_feeds = [columnarize_feed(feed) for feed in feeds]
    for feed, block_feed in zip(feeds, block_feeds):
        s, q = _ingest_per_record(feed)
        record_s += s
        record_q += q
        s, q = _ingest_blocks(block_feed)
        block_s += s
        block_q += q
    assert record_q == block_q, "both wire formats must carry every query"
    record_rate = record_q / record_s
    block_rate = block_q / block_s
    ingest_ratio = block_rate / record_rate
    lines += [
        f"{'ingest path':<12} {'queries':>9} {'seconds':>8} {'queries/s':>11}",
        f"{'per-record':<12} {int(record_q):>9} {record_s:>8.3f} {record_rate:>11.0f}",
        f"{'blocks':<12} {int(block_q):>9} {block_s:>8.3f} {block_rate:>11.0f}",
        f"batched-ingest speedup: {ingest_ratio:.1f}x",
        "",
    ]
    payload["ingest"] = {
        "queries": int(record_q),
        "per_record_seconds": record_s,
        "per_record_queries_per_s": record_rate,
        "block_seconds": block_s,
        "block_queries_per_s": block_rate,
        "speedup": ingest_ratio,
    }

    # -- thread pool vs persistent process pool ------------------------
    lines.append(
        f"{'mode':<10} {'fleet':>5} {'workers':>7} {'seconds':>8} "
        f"{'diagnoses':>9} {'diag/s':>7} {'inst/s':>7}"
    )
    results: dict[tuple[str, int], float] = {}
    payload["threads"] = []
    for workers in (1, 2, 4):
        elapsed, n_diag = _drain_with_threads(feeds, workers)
        results[("threads", workers)] = elapsed
        payload["threads"].append(
            {"workers": workers, "seconds": elapsed, "diagnoses": n_diag}
        )
        lines.append(
            f"{'threads':<10} {N_INSTANCES:>5} {workers:>7} {elapsed:>8.2f} "
            f"{n_diag:>9} {n_diag / elapsed:>7.2f} {N_INSTANCES / elapsed:>7.2f}"
        )

    payload["processes"] = []
    for processes in (1, 2, min(4, max(2, cores))):
        if processes in {p["processes"] for p in payload["processes"]}:
            continue
        t0 = time.perf_counter()
        counts = run_sharded(feeds, processes=processes, config=SERVICE_CONFIG)
        elapsed = time.perf_counter() - t0
        n_diag = sum(counts.values())
        results[("procs", processes)] = elapsed
        payload["processes"].append(
            {"processes": processes, "seconds": elapsed, "diagnoses": n_diag}
        )
        lines.append(
            f"{'processes':<10} {N_INSTANCES:>5} {processes:>7} {elapsed:>8.2f} "
            f"{n_diag:>9} {n_diag / elapsed:>7.2f} {N_INSTANCES / elapsed:>7.2f}"
        )

    best_procs = min(4, max(2, cores))
    speedup_vs_thread1 = results[("threads", 1)] / results[("procs", best_procs)]
    speedup_vs_thread2 = results[("threads", 2)] / results[("procs", 2)]
    lines += [
        "",
        f"process pool ({best_procs} workers) speedup over 1 thread worker: "
        f"{speedup_vs_thread1:.2f}x",
        f"process pool (2 workers) speedup over 2 thread workers: "
        f"{speedup_vs_thread2:.2f}x",
    ]
    payload["speedups"] = {
        "procs_best_vs_thread1": speedup_vs_thread1,
        "procs2_vs_threads2": speedup_vs_thread2,
    }
    write_report("fleet_throughput", "\n".join(lines))
    write_json("fleet_throughput", payload)

    # Every configuration must fully diagnose the anomalous instances.
    anomalous = {f"db-{i:02d}" for i in range(0, N_INSTANCES, 2)}
    counts = run_sharded(feeds, processes=1, config=SERVICE_CONFIG)
    assert {iid for iid, n in counts.items() if n > 0} == anomalous

    # Columnar ingest must pay for itself regardless of core count.
    assert ingest_ratio >= 10.0, (
        f"expected >=10x batched-ingest speedup, got {ingest_ratio:.1f}x"
    )

    # Multicore scaling is only measurable when cores exist to scale
    # onto; single-core CI boxes record the table but skip the bars.
    if cores >= 4:
        assert speedup_vs_thread2 >= 1.5, (
            f"expected the persistent pool to beat 2 thread workers by "
            f">=1.5x on {cores} cores, got {speedup_vs_thread2:.2f}x"
        )
        assert speedup_vs_thread1 >= 2.0, (
            f"expected >=2x process-pool scaling on {cores} cores, "
            f"got {speedup_vs_thread1:.2f}x"
        )
