"""Fleet diagnosis throughput vs fleet size and worker count.

Measures how fast the fleet service drains a pre-collected multi-
instance workload (diagnoses/sec and instances/sec) as the thread
worker pool grows, and compares with the process-sharded runner
(:mod:`repro.fleet.sharded`), which sidesteps the GIL.

PinSQL analysis is CPU-bound Python, so *thread* workers mostly
interleave under the GIL — their value is keeping many instances'
streams advancing concurrently, not multicore speedup.  Real scaling
comes from process sharding; the ≥2× scaling assertion is therefore
gated on the machine actually having cores to scale onto.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.collection import Broker, MetricsCollector, QueryLogCollector
from repro.dbsim import DatabaseInstance
from repro.fleet import (
    FleetConfig,
    FleetDiagnosisService,
    ServiceConfig,
    feed_from_broker,
    run_sharded,
)
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)

from benchmarks.conftest import _cached, write_report

N_INSTANCES = 8
DURATION = 600
ONSET = 400
SERVICE_CONFIG = ServiceConfig(delta_start_s=300, detector_window_s=DURATION)


def _simulate_feeds():
    """Simulate the fleet once; returns picklable per-instance feeds."""
    broker = Broker()
    feeds = []
    for i in range(N_INSTANCES):
        instance_id = f"db-{i:02d}"
        rng = np.random.default_rng(9000 + i)
        population = build_population(DURATION, rng, n_businesses=5)
        if i % 2 == 0:
            inject_anomaly(
                population, rng, AnomalyCategory.ROW_LOCK, ONSET, DURATION,
                target_rate=(25.0, 35.0), lock_hold_ms=(300.0, 400.0),
            )
        db = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=77 + i)
        run = db.run(WorkloadGenerator(population), duration=DURATION)
        QueryLogCollector(broker, instance_id=instance_id).collect(run.query_log)
        MetricsCollector(broker, instance_id=instance_id).collect(run.metrics)
        feeds.append(feed_from_broker(broker, instance_id))
    return feeds


def _drain_with_threads(feeds, workers: int) -> tuple[float, int]:
    """Publish the feeds to a fresh broker and drain; (seconds, diagnoses)."""
    from repro.collection.collector import METRIC_TOPIC, QUERY_TOPIC
    from repro.collection.stream import instance_topic

    broker = Broker()
    for feed in feeds:
        for key, value in feed.query_records:
            broker.publish(instance_topic(QUERY_TOPIC, feed.instance_id), key, value)
        for key, value in feed.metric_records:
            broker.publish(instance_topic(METRIC_TOPIC, feed.instance_id), key, value)
    service = FleetDiagnosisService(
        broker,
        FleetConfig(service=SERVICE_CONFIG, workers=workers, prune_broker=True),
    )
    for feed in feeds:
        service.register_instance(feed.instance_id)
    t0 = time.perf_counter()
    diagnoses = service.run_until_drained()
    elapsed = time.perf_counter() - t0
    service.close()
    return elapsed, len(diagnoses)


def test_fleet_throughput():
    feeds = _cached("fleet_feeds_v1", _simulate_feeds)
    cores = os.cpu_count() or 1

    lines = [
        "Fleet diagnosis throughput "
        f"({N_INSTANCES}-instance workload, {DURATION}s simulated, "
        f"{cores} cores available)",
        "",
        f"{'mode':<10} {'fleet':>5} {'workers':>7} {'seconds':>8} "
        f"{'diagnoses':>9} {'diag/s':>7} {'inst/s':>7}",
    ]
    results: dict[tuple[str, int, int], float] = {}
    for fleet_size in (4, N_INSTANCES):
        subset = feeds[:fleet_size]
        for workers in (1, 2, 4):
            elapsed, n_diag = _drain_with_threads(subset, workers)
            results[("threads", fleet_size, workers)] = elapsed
            lines.append(
                f"{'threads':<10} {fleet_size:>5} {workers:>7} {elapsed:>8.2f} "
                f"{n_diag:>9} {n_diag / elapsed:>7.2f} {fleet_size / elapsed:>7.2f}"
            )

    for processes in (1, min(4, max(2, cores))):
        t0 = time.perf_counter()
        counts = run_sharded(feeds, processes=processes, config=SERVICE_CONFIG)
        elapsed = time.perf_counter() - t0
        n_diag = sum(counts.values())
        results[("procs", N_INSTANCES, processes)] = elapsed
        lines.append(
            f"{'processes':<10} {N_INSTANCES:>5} {processes:>7} {elapsed:>8.2f} "
            f"{n_diag:>9} {n_diag / elapsed:>7.2f} {N_INSTANCES / elapsed:>7.2f}"
        )

    scaling = (
        results[("threads", N_INSTANCES, 1)]
        / results[("procs", N_INSTANCES, min(4, max(2, cores)))]
    )
    lines.append("")
    lines.append(
        f"process-sharded speedup over 1 thread worker: {scaling:.2f}x"
    )
    write_report("fleet_throughput", "\n".join(lines))

    # Every configuration must fully diagnose the anomalous instances.
    anomalous = {f"db-{i:02d}" for i in range(0, N_INSTANCES, 2)}
    counts = run_sharded(feeds, processes=1, config=SERVICE_CONFIG)
    assert {iid for iid, n in counts.items() if n > 0} == anomalous

    # Multicore scaling is only measurable when cores exist to scale
    # onto; single-core CI boxes record the table but skip the bar.
    if cores >= 4:
        assert scaling >= 2.0, (
            f"expected >=2x process-sharded scaling on {cores} cores, "
            f"got {scaling:.2f}x"
        )
