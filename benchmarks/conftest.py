"""Shared benchmark fixtures.

The evaluation corpus is expensive to simulate, so it is generated once
and cached on disk (``benchmarks/.cache``); delete the directory to
force regeneration.  Every benchmark also appends its report to
``results/`` so the regenerated tables survive pytest's output capture.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import pytest

from repro.evaluation import CorpusConfig, generate_corpus

CACHE_DIR = Path(__file__).parent / ".cache"
RESULTS_DIR = Path(__file__).parent.parent / "results"

#: The benchmark corpus: paper-like δs and anomaly lengths, scaled so a
#: full regeneration stays within minutes.
BENCH_CORPUS = CorpusConfig(
    n_cases=32,
    seed=2022,
    delta_start_s=900,
    anomaly_length_s=(300, 600),
    n_businesses=(6, 12),
)


def _cached(name: str, factory):
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{name}.pkl"
    if path.exists():
        with open(path, "rb") as f:
            return pickle.load(f)
    value = factory()
    with open(path, "wb") as f:
        pickle.dump(value, f)
    return value


@pytest.fixture(scope="session")
def corpus():
    """The shared labelled anomaly-case corpus (disk-cached)."""
    return _cached("corpus_v1", lambda: generate_corpus(BENCH_CORPUS))


def write_report(name: str, text: str) -> Path:
    """Persist a regenerated table under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    print(text)
    return path


def write_json(name: str, payload: dict) -> Path:
    """Persist a machine-readable result under ``results/<name>.json``.

    The human table from :func:`write_report` is for eyeballs; this is
    the shape CI jobs upload and regression tooling diffs.  Keys should
    be stable across runs — put environment facts (cores, corpus size)
    in the payload rather than the name.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[{name}] JSON written to {path}")
    return path
